#!/bin/sh
# Zero-overhead gate for the telemetry layer: the ON build's throughput
# must be within `tolerance` (default 2%) of the OFF build's on the two
# paths where instrumentation would hurt most -- the rv32 fast engine's
# ALU-bound loop (per-instruction counters) and the enclave service's
# request loop (spans, per-tenant families, flight-recorder events).
# Run as:
#   scripts/check_telemetry_overhead.sh <on-build-dir> <off-build-dir> [tol]
#
# Both builds must already contain bench/bench_rv32 and
# bench/bench_enclave_service.
#
# Measurement discipline: shared/virtualized hosts swing individual
# wall-clock samples by 2x (host steal hits CPU time just as hard, so
# getrusage is no refuge), and a single A/B run -- or a best-of-N, which
# only measures who drew the luckier quiet window -- is meaningless.
# Instead the script runs ON and OFF strictly back-to-back N times, so
# each pair shares whatever load burst is in progress, and takes the
# MEDIAN of the per-pair throughput ratios. On a quiet host this
# converges well inside 1%; on a busy shared host the noise floor of the
# median is ~3-5%, so callers there should pass a tolerance of 0.05 and
# rely on the ON-vs-OFF disassembly of the hot loop staying identical
# for the last few percent.
set -u

if [ $# -lt 2 ]; then
    echo "usage: $0 <on-build-dir> <off-build-dir> [tolerance]" >&2
    exit 2
fi
on_dir=$1
off_dir=$2
tol=${3:-0.02}

for bin in "$on_dir/bench/bench_rv32" "$off_dir/bench/bench_rv32" \
           "$on_dir/bench/bench_enclave_service" \
           "$off_dir/bench/bench_enclave_service"; do
    if [ ! -x "$bin" ]; then
        echo "check_telemetry_overhead: missing $bin" >&2
        exit 2
    fi
done

# rv32_ips <build-dir>: insns_per_second of one ALU-only rv32_alu/fast run.
rv32_ips() {
    "$1/bench/bench_rv32" --json --steps=10000000 --min-speedup=0 \
            --threads=1 --only=alu |
        awk '/"name": "rv32_alu\/fast"/ {f=1} f && /"insns_per_second"/ {
                 gsub(/[^0-9.]/, ""); print; exit }'
}

# service_rps <build-dir>: requests_per_second of a single-thread sweep
# point of the enclave service's request loop (events + spans + families
# all live on this path in the ON build).
service_rps() {
    "$1/bench/bench_enclave_service" --json --requests=128 --spawn-reps=2 \
            --sweep=1 --min-fork-speedup=0 |
        awk '/"name": "enclave_service\/requests\/threads:1"/ {f=1}
             f && /"requests_per_second"/ {
                 gsub(/[^0-9.]/, ""); print; exit }'
}

# gate <label> <sampler> <pairs>: paired-median ON/OFF ratio vs $tol.
gate() {
    label=$1
    sampler=$2
    pairs=$3
    ratios=""
    i=0
    while [ $i -lt $pairs ]; do
        i=$((i + 1))
        on=$($sampler "$on_dir")
        off=$($sampler "$off_dir")
        if [ -z "$on" ] || [ -z "$off" ]; then
            echo "check_telemetry_overhead: $label produced no sample" >&2
            exit 2
        fi
        ratios="$ratios $(awk -v a="$on" -v b="$off" \
            'BEGIN { printf "%.6f", a / b }')"
    done
    median_ratio=$(printf '%s\n' $ratios | sort -n |
        sed -n "$((($pairs + 1) / 2))p")
    echo "$label: per-pair ON/OFF throughput ratios ($pairs pairs):"
    printf '  %s\n' $ratios
    awk -v r="$median_ratio" -v tol="$tol" -v l="$label" 'BEGIN {
        printf "%s median ON/OFF ratio: %.4f (tolerance: >= %.4f)\n",
               l, r, 1 - tol
        exit (r >= 1 - tol) ? 0 : 1
    }' || return 1
}

fail=0
gate "rv32_alu/fast" rv32_ips 25 || fail=1
gate "enclave_service/requests" service_rps 9 || fail=1

if [ $fail -eq 0 ]; then
    echo "check_telemetry_overhead: PASS"
else
    echo "check_telemetry_overhead: FAIL (telemetry costs more than tolerance)" >&2
fi
exit $fail
