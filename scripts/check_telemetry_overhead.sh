#!/bin/sh
# Zero-overhead gate for the telemetry layer: the ON build's rv32 fast-
# engine throughput must be within `tolerance` (default 2%) of the OFF
# build's, on the ALU-bound scenario where per-instruction instrumentation
# would hurt most. Run as:
#   scripts/check_telemetry_overhead.sh <on-build-dir> <off-build-dir> [tol]
#
# Both builds must already contain bench/bench_rv32.
#
# Measurement discipline: shared/virtualized hosts swing individual
# wall-clock samples by 2x (host steal hits CPU time just as hard, so
# getrusage is no refuge), and a single A/B run -- or a best-of-N, which
# only measures who drew the luckier quiet window -- is meaningless.
# Instead the script runs ON and OFF strictly back-to-back 25 times, so
# each pair shares whatever load burst is in progress, and takes the
# MEDIAN of the per-pair throughput ratios. On a quiet host this
# converges well inside 1%; on a busy shared host the noise floor of the
# median is ~3-5%, so callers there should pass a tolerance of 0.05 and
# rely on the ON-vs-OFF disassembly of the hot loop staying identical
# for the last few percent.
set -u

if [ $# -lt 2 ]; then
    echo "usage: $0 <on-build-dir> <off-build-dir> [tolerance]" >&2
    exit 2
fi
on_bin=$1/bench/bench_rv32
off_bin=$2/bench/bench_rv32
tol=${3:-0.02}
pairs=25

for bin in "$on_bin" "$off_bin"; do
    if [ ! -x "$bin" ]; then
        echo "check_telemetry_overhead: missing $bin" >&2
        exit 2
    fi
done

# one_ips <binary>: insns_per_second of one ALU-only rv32_alu/fast run.
one_ips() {
    "$1" --json --steps=10000000 --min-speedup=0 --threads=1 --only=alu |
        awk '/"name": "rv32_alu\/fast"/ {f=1} f && /"insns_per_second"/ {
                 gsub(/[^0-9.]/, ""); print; exit }'
}

ratios=""
i=0
while [ $i -lt $pairs ]; do
    i=$((i + 1))
    on=$(one_ips "$on_bin")
    off=$(one_ips "$off_bin")
    if [ -z "$on" ] || [ -z "$off" ]; then
        echo "check_telemetry_overhead: no rv32_alu/fast entry" >&2
        exit 2
    fi
    ratios="$ratios $(awk -v a="$on" -v b="$off" 'BEGIN { printf "%.6f", a / b }')"
done

median_ratio=$(printf '%s\n' $ratios | sort -n | sed -n "$((($pairs + 1) / 2))p")

echo "per-pair ON/OFF throughput ratios ($pairs back-to-back pairs):"
printf '  %s\n' $ratios
awk -v r="$median_ratio" -v tol="$tol" 'BEGIN {
    printf "median ON/OFF ratio: %.4f (tolerance: >= %.4f)\n", r, 1 - tol
    exit (r >= 1 - tol) ? 0 : 1
}'
rc=$?
if [ $rc -eq 0 ]; then
    echo "check_telemetry_overhead: PASS"
else
    echo "check_telemetry_overhead: FAIL (telemetry costs more than tolerance)" >&2
fi
exit $rc
