#!/bin/sh
# Runs clang-tidy over the static-analyzer and TEE sources using the build
# tree's compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the
# top-level CMakeLists). Checks and the WarningsAsErrors promotion set come
# from the repo-root .clang-tidy, so the check_tidy target / ctest lane
# fails on the checks that indicate real bugs while plain warnings print
# without breaking the lane.
#
# Exits 77 -- the ctest SKIP_RETURN_CODE -- when clang-tidy is not
# installed, so hosts without LLVM tooling report the lane as SKIPPED
# instead of failing (the container this repo grows in ships only the GNU
# toolchain).
set -eu

BUILD_DIR=${1:?usage: run_clang_tidy.sh BUILD_DIR}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (exit 77)" >&2
  exit 77
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" \
       "configure the build tree first" >&2
  exit 1
fi

SRC_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

# shellcheck disable=SC2046 -- file list is intentionally word-split; the
# repo has no paths with whitespace.
exec clang-tidy -p "$BUILD_DIR" --quiet \
  $(find "$SRC_ROOT/src/analysis" "$SRC_ROOT/src/tee" -name '*.cpp' | sort)
