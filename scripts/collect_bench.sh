#!/bin/sh
# Collect one JSON report per bench into an output directory:
#   scripts/collect_bench.sh <build-dir> [out-dir]
#
# Writes BENCH_<name>.json for every bench with --json support (the
# hand-rolled benches via the shared bench_report.hpp schema, plus
# bench_crypto_micro via google-benchmark's native emitter) and
# TRACE_<name>.json chrome://tracing span files for the telemetry-
# instrumented ones. A bench whose acceptance gate fails still has its
# report collected; the combined gate status is the script's exit code.
set -u

if [ $# -lt 1 ]; then
    echo "usage: $0 <build-dir> [out-dir]" >&2
    exit 2
fi
build_dir=$1
out_dir=${2:-"$build_dir/bench-reports"}

if [ ! -d "$build_dir/bench" ]; then
    echo "collect_bench: no bench/ under '$build_dir' (not a build dir?)" >&2
    exit 2
fi
mkdir -p "$out_dir" || exit 2

status=0

# run <name> <args...>: BENCH_<name>.json + TRACE_<name>.json
run() {
    name=$1
    shift
    bin="$build_dir/bench/$name"
    if [ ! -x "$bin" ]; then
        echo "collect_bench: SKIP $name (not built)" >&2
        return
    fi
    if "$bin" "$@" --json --trace-out="$out_dir/TRACE_$name.json" \
        > "$out_dir/BENCH_$name.json"; then
        echo "collect_bench: $name ok"
    else
        echo "collect_bench: $name gate FAILED (report still written)" >&2
        status=1
    fi
}

run bench_rv32 --steps=200000 --min-speedup=0
run bench_sca --unmasked-traces=1024 --min-masked-ratio=4 --sigma=0.5
run bench_leakage_verify
run bench_rv32static
run bench_table1_dse

# google-benchmark bench: native JSON emitter, no telemetry flags.
# (bare double for --benchmark_min_time: the "0.01s" suffix form only
# exists in google-benchmark >= 1.8)
micro="$build_dir/bench/bench_crypto_micro"
if [ -x "$micro" ]; then
    if "$micro" --benchmark_format=json --benchmark_min_time=0.01 \
        > "$out_dir/BENCH_bench_crypto_micro.json"; then
        echo "collect_bench: bench_crypto_micro ok"
    else
        echo "collect_bench: bench_crypto_micro FAILED" >&2
        status=1
    fi
else
    echo "collect_bench: SKIP bench_crypto_micro (not built)" >&2
fi

echo "collect_bench: reports in $out_dir"
exit $status
