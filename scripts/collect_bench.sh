#!/bin/sh
# Collect one JSON report per bench into an output directory:
#   scripts/collect_bench.sh <build-dir> [out-dir]
#
# Writes BENCH_<name>.json for every bench with --json support (the
# hand-rolled benches via the shared bench_report.hpp schema, plus
# bench_crypto_micro via google-benchmark's native emitter),
# TRACE_<name>.json chrome://tracing span files and EVENTS_<name>.jsonl
# flight-recorder logs for the telemetry-instrumented ones (empty stubs
# in CONVOLVE_TELEMETRY=OFF builds). A bench whose acceptance gate fails
# still has its report collected; the combined gate status is the
# script's exit code.
#
# Diff a collected run against the committed snapshot with:
#   build/tools/bench_diff bench/baseline/BENCH_enclave_service.json \
#       <out-dir>/BENCH_bench_enclave_service.json \
#       --counter=requests_per_second:higher
# and join the service run's artifacts with:
#   build/tools/obs_report --events=<out-dir>/EVENTS_bench_enclave_service.jsonl \
#       --metrics=<out-dir>/METRICS_bench_enclave_service.json \
#       --trace=<out-dir>/TRACE_bench_enclave_service.json
set -u

if [ $# -lt 1 ]; then
    echo "usage: $0 <build-dir> [out-dir]" >&2
    exit 2
fi
build_dir=$1
out_dir=${2:-"$build_dir/bench-reports"}

if [ ! -d "$build_dir/bench" ]; then
    echo "collect_bench: no bench/ under '$build_dir' (not a build dir?)" >&2
    exit 2
fi
mkdir -p "$out_dir" || exit 2

status=0

# validate <report-file>: schema-check through tools/check_bench_json
# (skipped with a note when the validator is not built).
validate() {
    checker="$build_dir/tools/check_bench_json"
    if [ ! -x "$checker" ]; then
        echo "collect_bench: NOTE $1 not schema-checked (check_bench_json not built)" >&2
        return
    fi
    if ! "$checker" < "$1"; then
        echo "collect_bench: $1 failed schema validation" >&2
        status=1
    fi
}

# run_as <report-name> <bench-binary> <args...>: BENCH_<report-name>.json +
# TRACE_<report-name>.json, schema-validated. The two names differ when one
# binary is collected under several configurations (bench_sca lanes below).
run_as() {
    name=$1
    binname=$2
    shift 2
    bin="$build_dir/bench/$binname"
    if [ ! -x "$bin" ]; then
        echo "collect_bench: SKIP $name (not built)" >&2
        return
    fi
    if "$bin" "$@" --json --trace-out="$out_dir/TRACE_$name.json" \
        --metrics-out="$out_dir/METRICS_$name.json" \
        --events-out="$out_dir/EVENTS_$name.jsonl" \
        > "$out_dir/BENCH_$name.json"; then
        echo "collect_bench: $name ok"
    else
        echo "collect_bench: $name gate FAILED (report still written)" >&2
        status=1
    fi
    validate "$out_dir/BENCH_$name.json"
}

# run <name> <args...>: shorthand when report name == binary name.
run() {
    name=$1
    shift
    run_as "$name" "$name" "$@"
}

run bench_rv32 --steps=200000 --min-speedup=0 --min-bytecode-speedup=0
run bench_sca --unmasked-traces=1024 --min-masked-ratio=4 --sigma=0.5
# The same sca campaign on both evaluation engines: BENCH_bench_sca.json
# (bitsliced, lanes=64 default) vs BENCH_bench_sca_scalar.json (the scalar
# differential oracle) -- diffing the two reports is the recorded
# lane-speedup evidence, and both must pass the same schema gate.
run_as bench_sca_scalar bench_sca --lanes=1 \
    --unmasked-traces=1024 --min-masked-ratio=4 --sigma=0.5
# Scaling gate auto-skips on hosts with fewer than 8 hardware threads;
# the fork-speedup gate always applies.
run bench_enclave_service --requests=128 --spawn-reps=32
run bench_leakage_verify
run bench_rv32static
run bench_table1_dse

# google-benchmark bench: native JSON emitter, no telemetry flags.
# (bare double for --benchmark_min_time: the "0.01s" suffix form only
# exists in google-benchmark >= 1.8)
micro="$build_dir/bench/bench_crypto_micro"
if [ -x "$micro" ]; then
    if "$micro" --benchmark_format=json --benchmark_min_time=0.01 \
        > "$out_dir/BENCH_bench_crypto_micro.json"; then
        echo "collect_bench: bench_crypto_micro ok"
    else
        echo "collect_bench: bench_crypto_micro FAILED" >&2
        status=1
    fi
else
    echo "collect_bench: SKIP bench_crypto_micro (not built)" >&2
fi

echo "collect_bench: reports in $out_dir"
exit $status
