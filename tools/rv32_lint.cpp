// Static lint driver for RV32 enclave images: linear sweep + CFG
// recovery + abstract interpretation (src/analysis/rv32static), printing
// ISA-level constant-time and PMP-policy findings.
//
// Usage: rv32_lint --image=FILE [options]
//        rv32_lint --demo [options]
//   --image=FILE         raw little-endian RV32 code bytes (4-byte multiple)
//   --base=ADDR          load address of the image (default 0x0)
//   --entry=ADDR         entry pc (default: base)
//   --mode=u|s|m         privilege the image executes at (default u)
//   --secret-range=LO:HI mark [LO, HI) as secret (taint seed); repeatable
//   --pmp-policy=FILE    check accesses against a PMP policy file: lines
//                        "region LO HI PERMS" (PERMS subset of rwx, or -),
//                        '#' comments; regions become OFF+TOR entry pairs
//   --memory=BYTES       physical memory size (default 1 MiB)
//   --json               emit the shared bench-report JSON schema
//   --demo               analyze a built-in secret-branch demo image
//   --trace-out=FILE / --metrics-out=FILE  telemetry artifacts
//
// Exit status: 0 when the image is clean (unreachable-code findings are
// informational), 1 when any other finding fires, 2 on usage/IO errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_report.hpp"
#include "convolve/analysis/rv32static/analyze.hpp"
#include "convolve/tee/rv32.hpp"

namespace {

using namespace convolve;
using namespace convolve::analysis::rv32static;

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 0);
  return end != nullptr && *end == '\0';
}

bool parse_range(const std::string& text, AddrRange& out) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) return false;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  if (!parse_u64(text.substr(0, colon), lo) ||
      !parse_u64(text.substr(colon + 1), hi) || hi <= lo ||
      hi > 0xffffffffull) {
    return false;
  }
  out = {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
  return true;
}

/// "region LO HI PERMS" lines -> OFF+TOR entry pairs (8 regions max).
bool load_pmp_policy(const std::string& path, tee::PmpUnit& pmp) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "rv32_lint: cannot open policy '%s'\n", path.c_str());
    return false;
  }
  int next_entry = 0;
  std::string line;
  int lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    char keyword[16] = {0};
    char lo_text[32] = {0};
    char hi_text[32] = {0};
    char perms[8] = {0};
    const int n = std::sscanf(line.c_str(), "%15s %31s %31s %7s", keyword,
                              lo_text, hi_text, perms);
    if (n <= 0) continue;  // blank / comment-only line
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    if (n != 4 || std::strcmp(keyword, "region") != 0 ||
        !parse_u64(lo_text, lo) || !parse_u64(hi_text, hi) || hi <= lo) {
      std::fprintf(stderr, "rv32_lint: %s:%d: bad policy line\n", path.c_str(),
                   lineno);
      return false;
    }
    if (next_entry + 2 > tee::PmpUnit::kEntries) {
      std::fprintf(stderr, "rv32_lint: %s:%d: too many regions (max %d)\n",
                   path.c_str(), lineno, tee::PmpUnit::kEntries / 2);
      return false;
    }
    tee::PmpEntry base;
    base.mode = tee::PmpAddressMode::kOff;
    base.address = lo >> 2;
    tee::PmpEntry top;
    top.mode = tee::PmpAddressMode::kTor;
    top.address = hi >> 2;
    top.read = std::strchr(perms, 'r') != nullptr;
    top.write = std::strchr(perms, 'w') != nullptr;
    top.execute = std::strchr(perms, 'x') != nullptr;
    pmp.set_entry(next_entry, base);
    pmp.set_entry(next_entry + 1, top);
    next_entry += 2;
  }
  return true;
}

/// Built-in demo: a table lookup indexed by a secret byte followed by a
/// branch on it -- the two classic ISA-level constant-time hazards.
ImageSpec demo_image() {
  namespace rv = tee::rv32asm;
  ImageSpec image;
  image.base = 0;
  image.entry = 0;
  image.secret.push_back({0x800, 0x810});
  image.code = rv::assemble({
      rv::addi(5, 0, 0x400),   // x5 = public table base
      rv::lui(6, 1),           // x6 = 0x1000
      rv::addi(6, 6, -0x800),  // x6 = 0x800 (secret base)
      rv::lbu(7, 6, 0),        // x7 = secret byte        (tainted)
      rv::add(8, 5, 7),        // x8 = table + secret
      rv::lbu(9, 8, 0),        // SECRET-INDEXED LOAD
      rv::beq(7, 0, 8),        // SECRET-DEPENDENT BRANCH
      rv::addi(10, 0, 1),      //   taken-path work
      rv::addi(11, 0, 64),     // x11 = loop bound
      rv::addi(12, 0, 0),      // x12 = i
      rv::addi(12, 12, 1),     // loop: i++
      rv::bltu(12, 11, -4),    // public loop (clean)
      rv::ecall(),             // yield to the monitor
  });
  return image;
}

const char* mode_name(tee::PrivMode mode) {
  switch (mode) {
    case tee::PrivMode::kUser: return "U";
    case tee::PrivMode::kSupervisor: return "S";
    case tee::PrivMode::kMachine: return "M";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string image_path;
  std::string policy_path;
  ImageSpec image;
  bool demo = false;
  bool have_entry = false;
  bench::ReportOptions report_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t value = 0;
    if (bench::consume_report_flag(arg, report_opts)) {
      continue;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg.rfind("--image=", 0) == 0) {
      image_path = arg.substr(8);
    } else if (arg.rfind("--pmp-policy=", 0) == 0) {
      policy_path = arg.substr(13);
    } else if (arg.rfind("--base=", 0) == 0 && parse_u64(arg.substr(7), value)) {
      image.base = static_cast<std::uint32_t>(value);
    } else if (arg.rfind("--entry=", 0) == 0 &&
               parse_u64(arg.substr(8), value)) {
      image.entry = static_cast<std::uint32_t>(value);
      have_entry = true;
    } else if (arg.rfind("--memory=", 0) == 0 &&
               parse_u64(arg.substr(9), value)) {
      image.memory_size = value;
    } else if (arg.rfind("--secret-range=", 0) == 0) {
      AddrRange range;
      if (!parse_range(arg.substr(15), range)) {
        std::fprintf(stderr, "rv32_lint: bad --secret-range '%s'\n",
                     arg.c_str());
        return 2;
      }
      image.secret.push_back(range);
    } else if (arg.rfind("--mode=", 0) == 0) {
      const std::string m = arg.substr(7);
      if (m == "u") image.mode = tee::PrivMode::kUser;
      else if (m == "s") image.mode = tee::PrivMode::kSupervisor;
      else if (m == "m") image.mode = tee::PrivMode::kMachine;
      else {
        std::fprintf(stderr, "rv32_lint: bad --mode '%s'\n", m.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "rv32_lint: unknown option '%s'\n", argv[i]);
      std::fprintf(
          stderr,
          "usage: rv32_lint (--image=FILE | --demo) [--base=ADDR] "
          "[--entry=ADDR]\n"
          "    [--mode=u|s|m] [--secret-range=LO:HI ...] "
          "[--pmp-policy=FILE]\n"
          "    [--memory=BYTES] %s\n",
          bench::report_flags_usage());
      return 2;
    }
  }

  if (demo != image_path.empty()) {  // exactly one source required
    std::fprintf(stderr, "rv32_lint: need exactly one of --image / --demo\n");
    return 2;
  }
  if (demo) {
    const std::uint32_t base = image.base;
    const std::uint64_t memory = image.memory_size;
    auto secrets = image.secret;
    const ImageSpec d = demo_image();
    image.code = d.code;
    image.base = base;
    if (!have_entry) image.entry = base;
    image.memory_size = memory;
    for (const auto& r : d.secret) secrets.push_back(r);
    image.secret = std::move(secrets);
  } else {
    std::ifstream f(image_path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "rv32_lint: cannot open '%s'\n",
                   image_path.c_str());
      return 2;
    }
    image.code.assign(std::istreambuf_iterator<char>(f),
                      std::istreambuf_iterator<char>());
    if (image.code.empty() || image.code.size() % 4 != 0) {
      std::fprintf(stderr,
                   "rv32_lint: image size %zu is not a non-zero multiple "
                   "of 4\n",
                   image.code.size());
      return 2;
    }
    if (!have_entry) image.entry = image.base;
  }

  tee::PmpUnit policy;
  AnalyzeOptions options;
  if (!policy_path.empty()) {
    if (!load_pmp_policy(policy_path, policy)) return 2;
    options.pmp_policy = &policy;
  }

  const AnalysisResult result = analyze(image, options);
  const StaticReport& report = result.report;

  std::size_t enforced = 0;
  for (const auto& f : report.findings) {
    if (f.kind != FindingKind::kUnreachableCode) ++enforced;
  }

  if (!report_opts.json) {
    std::printf("rv32_lint: image %zu bytes at 0x%08x, entry 0x%08x, mode %s\n",
                image.code.size(), image.base, image.entry,
                mode_name(image.mode));
    std::printf(
        "  cfg: %zu blocks (%zu reachable), %zu edges, %zu indirect "
        "site(s)\n",
        report.cfg.blocks, report.cfg.reachable_blocks, report.cfg.edges,
        report.cfg.indirect_sites);
    std::printf("  fixpoint: %llu iterations, %s\n",
                static_cast<unsigned long long>(report.fixpoint_iterations),
                report.converged ? "converged" : "ITERATION CAP HIT");
    for (const auto& f : report.findings) {
      std::printf("  0x%08x %-20s %s", f.pc, finding_name(f.kind),
                  f.detail.c_str());
      if (f.addr_hi != 0 || f.addr_lo != 0) {
        std::printf("  [0x%08x, 0x%08x]", f.addr_lo, f.addr_hi);
      }
      std::printf("\n");
    }
    if (enforced == 0) {
      std::printf("rv32_lint: clean (%zu informational finding(s))\n",
                  report.findings.size() - enforced);
    } else {
      std::printf("rv32_lint: FAIL (%zu finding(s))\n", enforced);
    }
  }

  bench::Report bench_report;
  bench_report.executable = "rv32_lint";
  auto& entry = bench_report.add("rv32static/analyze");
  entry.counter("blocks", static_cast<double>(report.cfg.blocks))
      .counter("reachable_blocks",
               static_cast<double>(report.cfg.reachable_blocks))
      .counter("edges", static_cast<double>(report.cfg.edges))
      .counter("indirect_sites",
               static_cast<double>(report.cfg.indirect_sites))
      .counter("fixpoint_iterations",
               static_cast<double>(report.fixpoint_iterations))
      .counter("converged", report.converged ? 1.0 : 0.0)
      .counter("findings", static_cast<double>(report.findings.size()))
      .counter("secret_branches",
               static_cast<double>(report.count(FindingKind::kSecretBranch)))
      .counter("secret_loads",
               static_cast<double>(report.count(FindingKind::kSecretLoad)))
      .counter("secret_stores",
               static_cast<double>(report.count(FindingKind::kSecretStore)))
      .counter("pmp_violations",
               static_cast<double>(report.count(FindingKind::kPmpLoad) +
                                   report.count(FindingKind::kPmpStore) +
                                   report.count(FindingKind::kPmpFetch)))
      .counter("unresolved_jumps",
               static_cast<double>(
                   report.count(FindingKind::kUnresolvedJump)));
  if (!bench::finish_report(bench_report, report_opts)) {
    std::fprintf(stderr, "rv32_lint: cannot write report artifacts\n");
    return 2;
  }

  return enforced == 0 ? 0 : 1;
}
