// Constant-time lint driver: runs every taint-tracking suite over the
// production crypto templates and prints a verdict per algorithm.
//
// Usage: ct_lint [--strict] [--suppressions=FILE] [suite...]
//   --strict   exit nonzero if any suite records an output mismatch or an
//              unsuppressed hazard. Every suite is enforced; known hazards
//              in reference implementations (the NTT suites) must be
//              acknowledged explicitly through the suppression file.
//   --suppressions=FILE  load suppression rules. One rule per line:
//                  suite:hazard-name:context-substring
//              '*' matches any value in that field; the context field
//              matches as a substring; '#' starts a comment. A hazard
//              matching any rule is printed as suppressed and does not
//              fail the run. Rules that never match are reported (stale
//              suppressions hide regressions).
//   suite...   restrict to the named suites (default: all).
//   --threads N  worker threads for the parallel suites (also settable via
//              CONVOLVE_THREADS; default: hardware concurrency).
//   --trace-out=FILE    write a chrome://tracing span file for the run.
//   --metrics-out=FILE  write the telemetry metric snapshot as JSON.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "convolve/analysis/ct_taint.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/common/telemetry.hpp"

namespace {

using convolve::analysis::LintResult;

struct Suppression {
  std::string suite;    // exact suite name, or "*"
  std::string hazard;   // exact hazard_name() string, or "*"
  std::string context;  // substring of the finding context, or "*"
  int line = 0;
  bool used = false;
};

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Parses FILE into rules; returns false (with a message) on I/O or syntax
// errors so a mistyped path can't silently enforce nothing.
bool load_suppressions(const std::string& path,
                       std::vector<Suppression>& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "ct_lint: cannot read suppressions '%s'\n",
                 path.c_str());
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto c1 = line.find(':');
    const auto c2 = c1 == std::string::npos ? c1 : line.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      std::fprintf(stderr,
                   "ct_lint: %s:%d: expected 'suite:hazard:context'\n",
                   path.c_str(), lineno);
      return false;
    }
    Suppression s;
    s.suite = trim(line.substr(0, c1));
    s.hazard = trim(line.substr(c1 + 1, c2 - c1 - 1));
    s.context = trim(line.substr(c2 + 1));
    s.line = lineno;
    if (s.suite.empty() || s.hazard.empty() || s.context.empty()) {
      std::fprintf(stderr, "ct_lint: %s:%d: empty field in rule\n",
                   path.c_str(), lineno);
      return false;
    }
    out.push_back(std::move(s));
  }
  return true;
}

bool suppressed(std::vector<Suppression>& rules, const std::string& suite,
                const char* hazard, const std::string& context) {
  bool hit = false;
  for (auto& r : rules) {
    const bool m = (r.suite == "*" || r.suite == suite) &&
                   (r.hazard == "*" || r.hazard == hazard) &&
                   (r.context == "*" ||
                    context.find(r.context) != std::string::npos);
    if (m) {
      r.used = true;
      hit = true;
    }
  }
  return hit;
}

// In CONVOLVE_TELEMETRY=OFF builds the flags stay accepted and write empty
// stub files, so scripts don't have to fork on build configuration.
bool write_telemetry_file(const std::string& path, bool trace) {
#if CONVOLVE_TELEMETRY_ENABLED
  return trace ? convolve::telemetry::write_chrome_trace(path)
               : convolve::telemetry::write_metrics_json(path);
#else
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << (trace ? "{\"traceEvents\": []}\n"
              : "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}\n");
  return f.good();
#endif
}

// Prints the suite verdict and returns the count of unsuppressed hazards.
std::uint64_t print_result(const LintResult& r,
                           std::vector<Suppression>& rules) {
  std::uint64_t unsuppressed = 0;
  std::uint64_t acknowledged = 0;
  struct Row {
    const convolve::analysis::TaintFinding* f;
    bool suppressed;
  };
  std::vector<Row> rows;
  for (const auto& f : r.findings) {
    const bool sup = suppressed(rules, r.suite,
                                convolve::analysis::hazard_name(f.kind),
                                f.context);
    (sup ? acknowledged : unsuppressed) += f.count;
    rows.push_back({&f, sup});
  }
  const char* verdict = unsuppressed == 0
                            ? (acknowledged == 0 ? "CLEAN " : "SUPPR ")
                            : "HAZARD";
  std::printf("%-14s %s  output=%s  hazards=%llu", r.suite.c_str(), verdict,
              r.output_matches ? "match" : "MISMATCH",
              static_cast<unsigned long long>(r.hazard_count));
  if (acknowledged != 0) {
    std::printf("  (%llu suppressed)",
                static_cast<unsigned long long>(acknowledged));
  }
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("    %-28s x%-8llu at %s%s\n",
                convolve::analysis::hazard_name(row.f->kind),
                static_cast<unsigned long long>(row.f->count),
                row.f->context.c_str(), row.suppressed ? "  [suppressed]" : "");
  }
  return unsuppressed;
}

}  // namespace

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  bool strict = false;
  std::string trace_out;
  std::string metrics_out;
  std::vector<Suppression> rules;
  std::set<std::string> only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg.rfind("--suppressions=", 0) == 0) {
      if (!load_suppressions(arg.substr(15), rules)) return 2;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "ct_lint: unknown option '%s'\n", argv[i]);
      std::fprintf(stderr,
                   "usage: ct_lint [--strict] [--suppressions=FILE] "
                   "[--threads N] "
                   "[--trace-out=FILE] [--metrics-out=FILE] [suite...]\n");
      return 2;
    } else {
      only.insert(argv[i]);
    }
  }

  const auto results = convolve::analysis::lint_all();
  // A filter naming no real suite must not silently pass the gate.
  for (const auto& name : only) {
    bool known = false;
    for (const auto& r : results) known = known || r.suite == name;
    if (!known) {
      std::fprintf(stderr, "ct_lint: unknown suite '%s'\n", name.c_str());
      return 2;
    }
  }
  int failures = 0;
  for (const auto& r : results) {
    if (!only.empty() && only.count(r.suite) == 0) continue;
    const std::uint64_t unsuppressed = print_result(r, rules);
    if (!r.output_matches) ++failures;
    if (unsuppressed != 0) ++failures;
  }

  // Stale rules matched nothing: either the hazard was fixed (delete the
  // rule) or the context string drifted (the rule no longer guards what
  // it claims to). Only meaningful when every suite ran.
  int stale = 0;
  if (only.empty()) {
    for (const auto& rule : rules) {
      if (!rule.used) {
        std::fprintf(stderr, "ct_lint: stale suppression at line %d: %s:%s:%s\n",
                     rule.line, rule.suite.c_str(), rule.hazard.c_str(),
                     rule.context.c_str());
        ++stale;
      }
    }
  }

  if (!trace_out.empty() && !write_telemetry_file(trace_out, true)) {
    std::fprintf(stderr, "ct_lint: cannot write '%s'\n", trace_out.c_str());
    return 2;
  }
  if (!metrics_out.empty() && !write_telemetry_file(metrics_out, false)) {
    std::fprintf(stderr, "ct_lint: cannot write '%s'\n", metrics_out.c_str());
    return 2;
  }

  if (failures != 0 || stale != 0) {
    std::printf("ct_lint: %d suite(s) failed, %d stale suppression(s)\n",
                failures, stale);
    return strict ? 1 : 0;
  }
  std::printf("ct_lint: all suites constant-time (or suppressed)\n");
  return 0;
}
