// Constant-time lint driver: runs every taint-tracking suite over the
// production crypto templates and prints a verdict per algorithm.
//
// Usage: ct_lint [--strict] [suite...]
//   --strict   exit nonzero if any *required-clean* suite (aes256,
//              chacha20, keccak, hmac) records a hazard or an output
//              mismatch. The NTT suites are reference implementations with
//              documented hazards and never fail the run; they are printed
//              for visibility.
//   suite...   restrict to the named suites (default: all).
//   --threads N  worker threads for the parallel suites (also settable via
//              CONVOLVE_THREADS; default: hardware concurrency).
//   --trace-out=FILE    write a chrome://tracing span file for the run.
//   --metrics-out=FILE  write the telemetry metric snapshot as JSON.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "convolve/analysis/ct_taint.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/common/telemetry.hpp"

namespace {

using convolve::analysis::LintResult;

bool required_clean(const std::string& suite) {
  return suite == "aes256" || suite == "chacha20" || suite == "keccak" ||
         suite == "hmac";
}

// In CONVOLVE_TELEMETRY=OFF builds the flags stay accepted and write empty
// stub files, so scripts don't have to fork on build configuration.
bool write_telemetry_file(const std::string& path, bool trace) {
#if CONVOLVE_TELEMETRY_ENABLED
  return trace ? convolve::telemetry::write_chrome_trace(path)
               : convolve::telemetry::write_metrics_json(path);
#else
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << (trace ? "{\"traceEvents\": []}\n"
              : "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}\n");
  return f.good();
#endif
}

void print_result(const LintResult& r) {
  const bool clean = r.hazard_count == 0;
  std::printf("%-14s %s  output=%s  hazards=%llu%s\n", r.suite.c_str(),
              clean ? "CLEAN " : "HAZARD",
              r.output_matches ? "match" : "MISMATCH",
              static_cast<unsigned long long>(r.hazard_count),
              required_clean(r.suite) ? "" : "  (reference impl, informational)");
  for (const auto& f : r.findings) {
    std::printf("    %-28s x%-8llu at %s\n",
                convolve::analysis::hazard_name(f.kind),
                static_cast<unsigned long long>(f.count), f.context.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  bool strict = false;
  std::string trace_out;
  std::string metrics_out;
  std::set<std::string> only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "ct_lint: unknown option '%s'\n", argv[i]);
      std::fprintf(stderr,
                   "usage: ct_lint [--strict] [--threads N] "
                   "[--trace-out=FILE] [--metrics-out=FILE] [suite...]\n");
      return 2;
    } else {
      only.insert(argv[i]);
    }
  }

  const auto results = convolve::analysis::lint_all();
  // A filter naming no real suite must not silently pass the gate.
  for (const auto& name : only) {
    bool known = false;
    for (const auto& r : results) known = known || r.suite == name;
    if (!known) {
      std::fprintf(stderr, "ct_lint: unknown suite '%s'\n", name.c_str());
      return 2;
    }
  }
  int failures = 0;
  for (const auto& r : results) {
    if (!only.empty() && only.count(r.suite) == 0) continue;
    print_result(r);
    if (!r.output_matches) ++failures;
    if (required_clean(r.suite) && r.hazard_count != 0) ++failures;
  }

  if (!trace_out.empty() && !write_telemetry_file(trace_out, true)) {
    std::fprintf(stderr, "ct_lint: cannot write '%s'\n", trace_out.c_str());
    return 2;
  }
  if (!metrics_out.empty() && !write_telemetry_file(metrics_out, false)) {
    std::fprintf(stderr, "ct_lint: cannot write '%s'\n", metrics_out.c_str());
    return 2;
  }

  if (failures != 0) {
    std::printf("ct_lint: %d suite(s) failed\n", failures);
    return strict ? 1 : 0;
  }
  std::printf("ct_lint: all required suites constant-time\n");
  return 0;
}
