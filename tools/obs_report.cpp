// Per-tenant observability report for the enclave service: joins the
// flight-recorder event log (--events, JSONL), the metrics snapshot
// (--metrics) and optionally the chrome trace (--trace) produced by a
// service run (bench_enclave_service --events-out/--metrics-out/
// --trace-out) into one report. See common/obs_report.hpp for the join
// semantics; this file is only flag parsing and I/O.
//
// Exit codes: 0 report printed (even when empty), 1 an outlier tenant
// was flagged AND --fail-on-outlier was given, 2 usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "convolve/common/obs_report.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --events=FILE --metrics=FILE [--trace=FILE]\n"
      "          [--z-threshold=Z] [--json] [--fail-on-outlier]\n"
      "\n"
      "Joins a service run's event log, metrics snapshot and trace into\n"
      "a per-tenant report (op mix, p50/p99, shed rate, fault taxonomy)\n"
      "and flags tenants whose shed or fault rate sits more than Z\n"
      "standard deviations above the population mean (default Z=3).\n",
      argv0);
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string events_path, metrics_path, trace_path;
  double z_threshold = 3.0;
  bool json = false;
  bool fail_on_outlier = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--events=", 0) == 0) {
      events_path = arg.substr(9);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--z-threshold=", 0) == 0) {
      char* end = nullptr;
      z_threshold = std::strtod(arg.c_str() + 14, &end);
      if (end == nullptr || *end != '\0' || z_threshold <= 0.0) {
        std::fprintf(stderr, "obs_report: bad --z-threshold value '%s'\n",
                     arg.c_str() + 14);
        return 2;
      }
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fail-on-outlier") {
      fail_on_outlier = true;
    } else {
      std::fprintf(stderr, "obs_report: unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (events_path.empty() || metrics_path.empty()) return usage(argv[0]);

  std::string events, metrics, trace;
  if (!read_file(events_path, events)) {
    std::fprintf(stderr, "obs_report: cannot read %s\n", events_path.c_str());
    return 2;
  }
  if (!read_file(metrics_path, metrics)) {
    std::fprintf(stderr, "obs_report: cannot read %s\n",
                 metrics_path.c_str());
    return 2;
  }
  if (!trace_path.empty() && !read_file(trace_path, trace)) {
    std::fprintf(stderr, "obs_report: cannot read %s\n", trace_path.c_str());
    return 2;
  }

  const convolve::obs::Report report =
      convolve::obs::build_report(events, metrics, trace, z_threshold);
  std::fputs(
      (json ? convolve::obs::to_json(report) : convolve::obs::to_text(report))
          .c_str(),
      stdout);
  return (fail_on_outlier && report.has_outliers) ? 1 : 0;
}
