// Regression gate over two bench reports in the shared schema
// (bench/bench_report.hpp, validated by check_bench_json): compares a
// baseline JSON against a current JSON per benchmark entry and exits
// nonzero when any tracked metric regressed beyond its tolerance.
//
//   bench_diff BASELINE.json CURRENT.json [--tolerance=T]
//              [--counter=NAME:higher|lower[:TOL]] ...
//
// Rules:
//  * Entries are matched by "name". A baseline entry missing from the
//    current report is a regression (a silently dropped benchmark must
//    not pass the gate); new entries in current are informational.
//  * "real_time" is always compared, lower-is-better, at the global
//    tolerance (default 0.10 = 10%, benchmarks are noisy).
//  * --counter adds a user-counter comparison with its own direction
//    and optional per-counter tolerance. A counter named in a spec but
//    absent from an entry that has it in the baseline is a regression.
//  * A baseline value of 0 cannot anchor a ratio; such comparisons are
//    skipped with a note.
//
// Exit codes: 0 no regression, 1 regression(s), 2 usage or I/O error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "convolve/common/json.hpp"

namespace {

using convolve::json::JsonValue;

struct CounterSpec {
  std::string name;
  bool higher_is_better = true;
  double tolerance = -1.0;  // <0 means "use the global tolerance"
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s BASELINE.json CURRENT.json [--tolerance=T]\n"
      "          [--counter=NAME:higher|lower[:TOL]] ...\n"
      "\n"
      "Compares two bench reports (bench_report.hpp schema) and exits 1\n"
      "when real_time (lower-better) or any named counter regressed by\n"
      "more than the tolerance (fraction, default 0.10).\n",
      argv0);
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  out = buf.str();
  return true;
}

bool parse_counter_spec(const std::string& body, CounterSpec& spec) {
  const std::size_t colon = body.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  spec.name = body.substr(0, colon);
  std::string rest = body.substr(colon + 1);
  const std::size_t colon2 = rest.find(':');
  std::string dir = rest.substr(0, colon2);
  if (dir == "higher") {
    spec.higher_is_better = true;
  } else if (dir == "lower") {
    spec.higher_is_better = false;
  } else {
    return false;
  }
  if (colon2 != std::string::npos) {
    char* end = nullptr;
    spec.tolerance = std::strtod(rest.c_str() + colon2 + 1, &end);
    if (end == nullptr || *end != '\0' || spec.tolerance < 0.0) return false;
  }
  return true;
}

/// name -> benchmark entry object, keyed for the baseline/current join.
std::map<std::string, const JsonValue*> index_benchmarks(
    const JsonValue& root) {
  std::map<std::string, const JsonValue*> out;
  const JsonValue* arr = root.find("benchmarks");
  if (arr == nullptr || !arr->is_array()) return out;
  for (const JsonValue& entry : arr->arr) {
    if (!entry.is_object()) continue;
    const JsonValue* name = entry.find("name");
    if (name != nullptr && name->is_string()) out[name->str] = &entry;
  }
  return out;
}

struct DiffState {
  int regressions = 0;
  int compared = 0;
  int skipped = 0;
};

/// One metric comparison; prints a verdict line and tallies the result.
void compare_metric(const std::string& entry_name, const std::string& metric,
                    double base, double cur, bool higher_is_better,
                    double tolerance, DiffState& state) {
  if (base == 0.0) {
    std::printf("  skip  %-18s %s (baseline is 0)\n", metric.c_str(),
                entry_name.c_str());
    ++state.skipped;
    return;
  }
  // Signed change in the "better" direction: positive = improved.
  const double delta = higher_is_better ? (cur - base) / std::fabs(base)
                                        : (base - cur) / std::fabs(base);
  ++state.compared;
  const bool regressed = delta < -tolerance;
  if (regressed) ++state.regressions;
  std::printf("  %s %-18s %s: %.4g -> %.4g (%+.1f%%, tol %.0f%%)\n",
              regressed ? "FAIL " : "ok   ", metric.c_str(),
              entry_name.c_str(), base, cur, delta * 100.0,
              tolerance * 100.0);
}

double number_or(const JsonValue& entry, const std::string& key,
                 double fallback) {
  const JsonValue* v = entry.find(key.c_str());
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path;
  double tolerance = 0.10;
  std::vector<CounterSpec> specs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tolerance=", 0) == 0) {
      char* end = nullptr;
      tolerance = std::strtod(arg.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || tolerance < 0.0) {
        std::fprintf(stderr, "bench_diff: bad --tolerance value\n");
        return 2;
      }
    } else if (arg.rfind("--counter=", 0) == 0) {
      CounterSpec spec;
      if (!parse_counter_spec(arg.substr(10), spec)) {
        std::fprintf(stderr,
                     "bench_diff: bad --counter spec '%s' "
                     "(want NAME:higher|lower[:TOL])\n",
                     arg.c_str() + 10);
        return 2;
      }
      specs.push_back(spec);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path.empty() || current_path.empty()) return usage(argv[0]);

  std::string baseline_text, current_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!read_file(current_path, current_text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n",
                 current_path.c_str());
    return 2;
  }

  JsonValue baseline, current;
  try {
    baseline = convolve::json::parse(baseline_text);
    current = convolve::json::parse(current_text);
  } catch (const convolve::json::JsonParseError& e) {
    std::fprintf(stderr, "bench_diff: JSON parse error: %s\n", e.what());
    return 2;
  }

  const auto base_entries = index_benchmarks(baseline);
  const auto cur_entries = index_benchmarks(current);
  if (base_entries.empty()) {
    std::fprintf(stderr, "bench_diff: baseline has no benchmark entries\n");
    return 2;
  }

  DiffState state;
  std::printf("bench_diff: %s vs %s (%zu baseline entries)\n",
              baseline_path.c_str(), current_path.c_str(),
              base_entries.size());
  for (const auto& [name, base_entry] : base_entries) {
    const auto it = cur_entries.find(name);
    if (it == cur_entries.end()) {
      std::printf("  FAIL  %-18s %s (missing from current report)\n",
                  "presence", name.c_str());
      ++state.regressions;
      continue;
    }
    const JsonValue& cur_entry = *it->second;
    compare_metric(name, "real_time", number_or(*base_entry, "real_time", 0),
                   number_or(cur_entry, "real_time", 0),
                   /*higher_is_better=*/false, tolerance, state);
    for (const CounterSpec& spec : specs) {
      const JsonValue* base_v = base_entry->find(spec.name.c_str());
      if (base_v == nullptr || !base_v->is_number()) continue;
      const JsonValue* cur_v = cur_entry.find(spec.name.c_str());
      const double tol = spec.tolerance < 0.0 ? tolerance : spec.tolerance;
      if (cur_v == nullptr || !cur_v->is_number()) {
        std::printf("  FAIL  %-18s %s (counter missing from current)\n",
                    spec.name.c_str(), name.c_str());
        ++state.regressions;
        continue;
      }
      compare_metric(name, spec.name, base_v->number, cur_v->number,
                     spec.higher_is_better, tol, state);
    }
  }
  for (const auto& [name, entry] : cur_entries) {
    (void)entry;
    if (base_entries.find(name) == base_entries.end()) {
      std::printf("  note  new entry %s (not in baseline)\n", name.c_str());
    }
  }

  std::printf("bench_diff: %d compared, %d skipped, %d regression(s)\n",
              state.compared, state.skipped, state.regressions);
  return state.regressions > 0 ? 1 : 0;
}
