// Schema gate for the shared bench report format (bench/bench_report.hpp).
// Reads a report from stdin, parses it with the in-tree JSON parser, and
// checks the google-benchmark-compatible shape:
//
//   context.executable / num_cpus / threads        (string, number, number)
//   benchmarks[] with name, run_name, run_type, repetitions,
//                repetition_index, threads, iterations, real_time,
//                cpu_time, time_unit per entry
//   telemetry.counters / gauges / histograms       (objects)
//   events.recorded / dropped / by_kind            (numbers, object)
//
// Exit 0 when the shape holds, 1 with a diagnostic otherwise. Wired into
// ctest as bench_*_json_schema so a bench refactor that silently changes
// the schema fails the suite rather than downstream dashboards.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "convolve/common/json.hpp"

namespace {

using convolve::json::JsonValue;

int fail(const std::string& what) {
  std::fprintf(stderr, "check_bench_json: %s\n", what.c_str());
  return 1;
}

bool has_number(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number();
}

bool has_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string();
}

}  // namespace

int main() {
  std::ostringstream buf;
  buf << std::cin.rdbuf();
  const std::string input = buf.str();
  if (input.empty()) return fail("empty input");

  JsonValue root;
  try {
    root = convolve::json::parse(input);
  } catch (const convolve::json::JsonParseError& e) {
    return fail(std::string("parse error: ") + e.what());
  }
  if (!root.is_object()) return fail("root is not an object");

  const JsonValue* context = root.find("context");
  if (context == nullptr || !context->is_object()) {
    return fail("missing context object");
  }
  if (!has_string(*context, "executable")) {
    return fail("context.executable missing or not a string");
  }
  if (!has_number(*context, "num_cpus") || !has_number(*context, "threads")) {
    return fail("context.num_cpus/threads missing or not numbers");
  }

  const JsonValue* benchmarks = root.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return fail("missing benchmarks array");
  }
  if (benchmarks->arr.empty()) return fail("benchmarks array is empty");
  static const char* kNumberFields[] = {
      "repetitions", "repetition_index", "threads",
      "iterations",  "real_time",        "cpu_time"};
  for (std::size_t i = 0; i < benchmarks->arr.size(); ++i) {
    const JsonValue& b = benchmarks->arr[i];
    const std::string at = "benchmarks[" + std::to_string(i) + "]";
    if (!b.is_object()) return fail(at + " is not an object");
    for (const char* key : {"name", "run_name", "run_type", "time_unit"}) {
      if (!has_string(b, key)) {
        return fail(at + "." + key + " missing or not a string");
      }
    }
    for (const char* key : kNumberFields) {
      if (!has_number(b, key)) {
        return fail(at + "." + key + " missing or not a number");
      }
    }
  }

  const JsonValue* telemetry = root.find("telemetry");
  if (telemetry == nullptr || !telemetry->is_object()) {
    return fail("missing telemetry object");
  }
  for (const char* key : {"counters", "gauges", "histograms"}) {
    const JsonValue* section = telemetry->find(key);
    if (section == nullptr || !section->is_object()) {
      return fail(std::string("telemetry.") + key +
                  " missing or not an object");
    }
  }

  const JsonValue* events = root.find("events");
  if (events == nullptr || !events->is_object()) {
    return fail("missing events object");
  }
  for (const char* key : {"recorded", "dropped"}) {
    if (!has_number(*events, key)) {
      return fail(std::string("events.") + key + " missing or not a number");
    }
  }
  const JsonValue* by_kind = events->find("by_kind");
  if (by_kind == nullptr || !by_kind->is_object()) {
    return fail("events.by_kind missing or not an object");
  }
  for (std::size_t i = 0; i < by_kind->keys.size(); ++i) {
    if (!by_kind->arr[i].is_number()) {
      return fail("events.by_kind." + by_kind->keys[i] + " not a number");
    }
  }

  std::printf("check_bench_json: ok (%zu benchmark entries)\n",
              benchmarks->arr.size());
  return 0;
}
