// Mixed-criticality edge stack: a PMP-isolated RTOS for the control plane
// and a composable CompSOC platform for the shared accelerator fabric.
//
// Section III-D + III-E of the paper in one scenario: a safety-critical
// sensor loop and an untrusted third-party app share one SoC. The RTOS
// contains the third-party task's memory-snooping attempt; the VEP keeps
// the sensor loop's accelerator timing byte-identical no matter what the
// co-runner does.
//
//   ./build/examples/realtime_mixed_criticality
#include <cstdio>
#include <memory>

#include "convolve/compsoc/platform.hpp"
#include "convolve/rtos/kernel.hpp"

using namespace convolve;
using namespace convolve::rtos;
using namespace convolve::compsoc;

int main() {
  // ---------------- RTOS side: isolation under attack -------------------
  Machine machine(1 << 20);
  KernelConfig kcfg;
  kcfg.use_pmp = true;
  kcfg.restart_killed_tasks = true;  // recuperate, don't just endure
  Kernel kernel(machine, kcfg);

  auto sensor_readings = std::make_shared<int>(0);
  auto sensor_base = std::make_shared<std::uint64_t>(0);
  kernel.add_task("sensor-loop", /*priority=*/3, 8192, [=](TaskApi& api) {
    *sensor_base = api.region_base();
    api.write(api.region_base() + 64, Bytes{0x42});  // calibration secret
    ++*sensor_readings;
    return (*sensor_readings >= 10) ? StepResult::done()
                                    : StepResult::delay(2);
  });

  auto snoop_attempts = std::make_shared<int>(0);
  kernel.add_task("third-party-app", /*priority=*/1, 8192, [=](TaskApi& api) {
    if (*sensor_base != 0 && *snoop_attempts < 3) {
      ++*snoop_attempts;
      api.read(*sensor_base + 64, 1);  // traps under PMP
    }
    return StepResult::yield();
  });

  kernel.run(64);
  std::printf("=== RTOS (PMP isolation + restart policy) ===\n");
  std::printf("sensor loop completed %d/10 iterations\n", *sensor_readings);
  std::printf("snoop attempts: %d -> faults trapped: %d, restarts: %d, "
              "kernel intact: %s\n\n",
              *snoop_attempts, kernel.count_events(EventType::kFault),
              kernel.count_events(EventType::kTaskRestarted),
              kernel.kernel_integrity_ok() ? "yes" : "NO");

  // ------------- CompSOC side: composable accelerator sharing ----------
  PlatformConfig pcfg;
  pcfg.policy = ArbitrationPolicy::kTdm;
  pcfg.tdm_period = 8;

  auto run_platform = [&](bool with_third_party) {
    Platform platform(pcfg);
    const int vep_rt =
        platform.create_vep("sensor-dsp", {0, 1, 2}, {0, 1}, {0, 1});
    platform.load_application(vep_rt, make_realtime_app("sensor-dsp", 10));
    if (with_third_party) {
      const int vep_be =
          platform.create_vep("vision-app", {3, 4, 5, 6}, {2, 3, 4, 5},
                              {2, 3, 4, 5});
      platform.load_application(vep_be, make_besteffort_app("vision-app", 80));
    }
    return platform.run(1000000);
  };

  const auto solo = run_platform(false);
  const auto shared = run_platform(true);
  std::printf("=== CompSOC (VEP-composable accelerator fabric) ===\n");
  std::printf("sensor DSP alone:            finishes at cycle %llu\n",
              static_cast<unsigned long long>(solo[0].finish_cycle));
  std::printf("sensor DSP + vision app:     finishes at cycle %llu\n",
              static_cast<unsigned long long>(shared[0].finish_cycle));
  std::printf("grant traces bit-identical:  %s\n",
              (solo[0].grant_trace == shared[0].grant_trace) ? "yes" : "NO");
  std::printf("\nThe third-party app can neither read the control task's "
              "memory (PMP)\nnor perturb its accelerator timing (VEP) -- "
              "the composable security\nframework the CONVOLVE paper "
              "argues for.\n");
  return 0;
}
