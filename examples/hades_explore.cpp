// hades_explore: command-line design-space exploration.
//
//   ./build/examples/hades_explore                      # list algorithms
//   ./build/examples/hades_explore aes 1                # per-goal optima
//   ./build/examples/hades_explore keccak 2 --frontier  # Pareto frontier
//   ./build/examples/hades_explore aes 1 --budget-area 50000
//
// The usage HADES is built for: pick the algorithm, state the masking
// order your adversary model requires, add the budgets your SoC imposes,
// and get evidence instead of intuition.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "convolve/hades/library.hpp"
#include "convolve/hades/report.hpp"
#include "convolve/hades/search.hpp"

using namespace convolve::hades;

namespace {

ComponentPtr find_algorithm(const std::string& name) {
  for (const auto& entry : library::table1_suite()) {
    std::string lowered = entry.name;
    for (auto& c : lowered) c = static_cast<char>(std::tolower(c));
    if (lowered.find(name) != std::string::npos) return entry.factory();
  }
  if (name == "aes" || name == "aes256") return library::aes256();
  return nullptr;
}

void list_algorithms() {
  std::printf("algorithms (Table I suite):\n");
  for (const auto& entry : library::table1_suite()) {
    std::printf("  %-36s %10llu configurations\n", entry.name,
                static_cast<unsigned long long>(entry.expected_configs));
  }
  std::printf("\nusage: hades_explore <algorithm> <masking-order> "
              "[--frontier] [--budget-area GE] [--budget-latency CC] "
              "[--budget-rand BITS]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    list_algorithms();
    return argc == 1 ? 0 : 1;
  }
  std::string name = argv[1];
  for (auto& c : name) c = static_cast<char>(std::tolower(c));
  const ComponentPtr component = find_algorithm(name);
  if (!component) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", argv[1]);
    list_algorithms();
    return 1;
  }
  const unsigned order = static_cast<unsigned>(std::atoi(argv[2]));

  bool frontier = false;
  Constraints budget;
  bool constrained = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frontier") == 0) {
      frontier = true;
    } else if (std::strcmp(argv[i], "--budget-area") == 0 && i + 1 < argc) {
      budget.max_area_ge = std::atof(argv[++i]);
      constrained = true;
    } else if (std::strcmp(argv[i], "--budget-latency") == 0 && i + 1 < argc) {
      budget.max_latency_cc = std::atof(argv[++i]);
      constrained = true;
    } else if (std::strcmp(argv[i], "--budget-rand") == 0 && i + 1 < argc) {
      budget.max_rand_bits = std::atof(argv[++i]);
      constrained = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 1;
    }
  }

  std::printf("%s: %llu configurations, masking order %u\n\n",
              component->name().c_str(),
              static_cast<unsigned long long>(component->config_count()),
              order);

  if (frontier) {
    std::fputs(markdown_frontier(*component, order).c_str(), stdout);
    return 0;
  }

  if (constrained) {
    for (Goal goal : {Goal::kArea, Goal::kLatency, Goal::kRandomness}) {
      const auto result = constrained_search(*component, order, goal, budget);
      if (!feasible(result)) {
        std::printf("%-4s: no design satisfies the budget\n",
                    goal_name(goal));
        continue;
      }
      std::printf("%-4s: %.1f GE, %.0f cc, %.0f rand bits\n      %s\n",
                  goal_name(goal), result.metrics.area_ge,
                  result.metrics.latency_cc, result.metrics.rand_bits,
                  describe(*component, result.choice).c_str());
    }
    return 0;
  }

  const unsigned orders[] = {order};
  const Goal goals[] = {Goal::kArea, Goal::kLatency, Goal::kRandomness,
                        Goal::kAreaLatencyProduct};
  std::fputs(markdown_goal_summary(*component, orders, goals).c_str(),
             stdout);
  return 0;
}
