// Model-IP theft from a CIM accelerator -- and stopping it.
//
// A "deployed edge model" (one 64-weight layer, 4-bit quantized) runs on
// the digital CIM macro. An attacker with physical access mounts the
// paper's two-phase power side-channel attack and walks away with every
// weight. The same attack is then run against the shuffling + dummy-row
// hardened macro.
//
//   ./build/examples/model_ip_theft
#include <cstdio>

#include "convolve/cim/attack.hpp"
#include "convolve/cim/layer.hpp"
#include "convolve/common/bytes.hpp"

using namespace convolve;
using namespace convolve::cim;

namespace {

// The victim's "model": a quantized detection filter.
std::vector<int> make_model_layer() {
  std::vector<int> weights(64);
  Xoshiro256 rng(0xED6E);  // pretend training produced these
  for (auto& w : weights) w = static_cast<int>(rng.uniform(16));
  return weights;
}

// Legitimate inference: one MAC pass over an activation vector.
std::int64_t run_inference(CimMacro& macro,
                           const std::vector<std::uint8_t>& activations) {
  macro.reset();
  return macro.mac_cycle(activations);
}

void report(const char* label, CimMacro& macro) {
  AttackConfig attack;
  attack.traces_per_measurement = 4;
  auto result = run_attack(macro, attack);
  evaluate_against_ground_truth(result, macro.secret_weights());
  std::printf("%-28s recovered %2d/64 weights (%.0f%%), %d measurements\n",
              label, result.correct, 100.0 * result.accuracy,
              result.measurements);
}

}  // namespace

int main() {
  const std::vector<int> model = make_model_layer();

  // --- Deploy the model unprotected ------------------------------------
  MacroConfig plain_config;
  plain_config.n_rows = 64;
  CimMacro plain(plain_config, model);

  std::vector<std::uint8_t> activations(64, 0);
  for (int i = 0; i < 64; i += 3) activations[static_cast<std::size_t>(i)] = 1;
  std::printf("inference result (unprotected macro): %lld\n",
              static_cast<long long>(run_inference(plain, activations)));

  std::printf("\n--- attacker with physical access ---\n");
  report("unprotected macro:", plain);

  // --- Deploy with countermeasures --------------------------------------
  MacroConfig hardened_config = plain_config;
  hardened_config.shuffle_rows = true;
  hardened_config.dummy_rows = 32;
  CimMacro hardened(hardened_config, model);
  std::printf("\ninference result (hardened macro):   %lld  (functionally "
              "identical)\n",
              static_cast<long long>(run_inference(hardened, activations)));
  report("hardened macro:", hardened);

  std::printf("\nThe hardened macro computes the same MACs but decorrelates "
              "the power\ntrace from the weights (shuffled rows + random "
              "dummy activations), so\nthe IP survives physical access.\n");

  // --- The same story at layer granularity -------------------------------
  LayerConfig layer_config;
  layer_config.inputs = 64;
  layer_config.outputs = 4;
  DenseLayer layer = random_layer(layer_config, 0xED6F);
  std::vector<int> acts(64);
  for (int i = 0; i < 64; ++i) acts[static_cast<std::size_t>(i)] = (i * 5) % 16;
  const auto y = layer.forward(acts);
  std::printf("\ndense layer forward: [%lld, %lld, %lld, %lld]\n",
              static_cast<long long>(y[0]), static_cast<long long>(y[1]),
              static_cast<long long>(y[2]), static_cast<long long>(y[3]));
  int stolen = 0;
  AttackConfig attack2;
  for (int o = 0; o < layer_config.outputs; ++o) {
    auto r = run_attack(layer.column(o), attack2);
    evaluate_against_ground_truth(
        r, layer.secret_weights()[static_cast<std::size_t>(o)]);
    stolen += r.correct;
  }
  std::printf("attacker extracts the full layer column by column: %d/%d "
              "weights\n",
              stolen, layer_config.inputs * layer_config.outputs);
  return 0;
}
