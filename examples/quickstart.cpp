// Quickstart: explore a masked hardware design space with HADES.
//
// Builds a small custom template (a masked accumulator: an explored adder
// core plus a register file choice), runs the three exploration strategies
// and prints the optimum per goal at masking orders 0 and 2.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "convolve/hades/library.hpp"
#include "convolve/hades/search.hpp"

using namespace convolve::hades;

int main() {
  // --- 1. Describe the design space as a template -----------------------
  // A component = named variants; a variant = children (nested explored
  // components) + a combine function predicting metrics from the children.
  const ComponentPtr regfile = make_component(
      "regfile",
      {
          leaf("flops",
               [](unsigned d) {
                 return Metrics{/*area*/ 256.0 * 6 * (d + 1), /*lat*/ 0,
                                /*rand*/ 0};
               }),
          leaf("latch-array",
               [](unsigned d) {
                 return Metrics{256.0 * 3.5 * (d + 1), 1, 0};
               }),
      });

  Variant accumulator;
  accumulator.name = "masked-accumulator";
  accumulator.children = {library::adder_core(), regfile};
  accumulator.combine = [](const std::vector<ChildEval>& ch, unsigned) {
    Metrics m = ch[0].metrics + ch[1].metrics;
    m.area_ge += 800;  // control FSM
    return m;
  };
  const ComponentPtr design = make_component("accumulator", {accumulator});

  std::printf("design space: %llu configurations\n",
              static_cast<unsigned long long>(design->config_count()));

  // --- 2. Explore -------------------------------------------------------
  for (unsigned d : {0u, 2u}) {
    std::printf("\nmasking order d = %u\n", d);
    for (Goal goal : {Goal::kArea, Goal::kLatency, Goal::kRandomness}) {
      const SearchResult best = exhaustive_search(*design, d, goal);
      std::printf("  %-4s -> %-55s area %7.0f GE, %3.0f cc, %4.0f rand "
                  "bits\n",
                  goal_name(goal), describe(*design, best.choice).c_str(),
                  best.metrics.area_ge, best.metrics.latency_cc,
                  best.metrics.rand_bits);
    }
  }

  // --- 3. The heuristic and the folding strategies agree ---------------
  convolve::Xoshiro256 rng(1);
  const auto heur = local_search(*design, 2, Goal::kArea, 5, rng);
  const double folded = pareto_optimal_cost(*design, 2, Goal::kArea);
  std::printf("\nlocal search found %.0f GE; Pareto folding proves the "
              "optimum is %.0f GE\n",
              heur.metrics.area_ge, folded);
  return 0;
}
