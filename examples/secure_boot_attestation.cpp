// End-to-end secure boot + remote attestation + data sealing, in both the
// classical and the PQ-enabled (hybrid Ed25519 + ML-DSA-44) configuration.
//
// Walks the full Keystone-style chain the paper describes in Section III-B:
//   manufacturing -> measured boot -> enclave creation -> attestation ->
//   remote verification -> sealing model weights to the enclave identity,
// and shows that a tampered security monitor is caught by the verifier.
//
//   ./build/examples/secure_boot_attestation
#include <cstdio>

#include "convolve/crypto/keccak.hpp"
#include "convolve/tee/security_monitor.hpp"

using namespace convolve;
using namespace convolve::tee;

int main() {
  for (bool pq : {false, true}) {
    std::printf("=== %s configuration ===\n",
                pq ? "PQ-enabled (Ed25519 & ML-DSA-44)" : "classical (Ed25519)");

    // --- Manufacturing: fuse per-device secrets -----------------------
    const DeviceKeys device_keys =
        DeviceKeys::from_entropy(Bytes(32, 0x77));
    const Bootrom bootrom({pq}, device_keys);
    std::printf("bootrom footprint: %.1f KB\n",
                bootrom.size_bytes() / 1000.0);

    // --- Power-on: measured boot --------------------------------------
    const Bytes sm_image(8192, 0x5C);  // the SM binary in DRAM
    const BootRecord boot = bootrom.boot(sm_image);
    std::printf("SM measured and signed; boot chain verifies: %s\n",
                Bootrom::verify_boot_record(boot) ? "yes" : "NO");

    // --- Runtime: SM walls itself off, hosts an enclave ----------------
    Machine machine(1 << 20);
    SmConfig sm_config;
    sm_config.stack_bytes = pq ? 128 * 1024 : 8 * 1024;
    SecurityMonitor sm(machine, boot, sm_config);

    const Bytes enclave_binary(1024, 0xE1);  // "ML inference runtime"
    const int enclave = sm.create_enclave(enclave_binary, 64 * 1024);

    // The enclave does some work in its isolated memory.
    sm.run_enclave(enclave, [&] {
      const auto base = sm.enclave(enclave).base;
      machine.store(base + 2048, as_bytes("inference scratch"),
                    PrivMode::kUser);
    });

    // And executes real RV32 machine code under its PMP view: compute
    // 21 * 2 in-enclave, then request exit via ecall.
    namespace rv = rv32asm;
    const Bytes payload = rv::assemble({
        rv::addi(10, 0, 21),
        rv::add(10, 10, 10),
        rv::auipc(1, 0),
        rv::sw(10, 1, 0x400),
        rv::ecall(),
    });
    const int code_enclave = sm.create_enclave(payload, 16 * 1024);
    const auto run = sm.run_enclave_program(code_enclave, 1000);
    const auto answer = machine.load(
        sm.enclave(code_enclave).base + 8 + 0x400, 4, PrivMode::kMachine);
    std::printf("enclave payload executed %llu instructions, exit=%s, "
                "answer=%u\n",
                static_cast<unsigned long long>(run.steps),
                (run.trap && run.trap->cause == TrapCause::kEcall) ? "ecall"
                                                                   : "?",
                load_le32(answer.data()));

    // --- Remote attestation -------------------------------------------
    const auto report = sm.attest(enclave, as_bytes("tls-exporter-binding"));
    const Bytes wire = report.serialize();
    std::printf("attestation report: %zu bytes\n", wire.size());

    // The remote verifier holds the device public keys and the expected
    // measurements.
    const auto parsed = AttestationReport::deserialize(wire);
    const Bytes expected_enclave = crypto::sha3_512(enclave_binary);
    const bool ok = parsed && verify_report(*parsed, sm.trust_anchor(),
                                            &boot.sm_measurement,
                                            &expected_enclave);
    std::printf("remote verification: %s\n", ok ? "ACCEPTED" : "REJECTED");

    // A device that booted a patched SM produces reports the verifier
    // rejects, because SM keys are derived from the measurement.
    Bytes evil_image = sm_image;
    evil_image[42] ^= 0x01;
    const BootRecord evil_boot = bootrom.boot(evil_image);
    Machine evil_machine(1 << 20);
    SecurityMonitor evil_sm(evil_machine, evil_boot, sm_config);
    const int evil_enclave = evil_sm.create_enclave(enclave_binary, 64 * 1024);
    const auto evil_report = evil_sm.attest(evil_enclave, {});
    const bool evil_ok = verify_report(evil_report, sm.trust_anchor(),
                                       &boot.sm_measurement, nullptr);
    std::printf("tampered-SM report: %s\n",
                evil_ok ? "ACCEPTED (bad!)" : "rejected (good)");

    // --- Sealing: model weights survive only in the same enclave -------
    const auto weights_view = as_bytes("quantized-weights-v2:deadbeef...");
    const Bytes sealed = sm.seal(enclave, weights_view);
    const auto unsealed = sm.unseal(enclave, sealed);
    std::printf("sealed %zu bytes; unsealed by the same enclave: %s\n\n",
                sealed.size(),
                (unsealed && ct_equal(*unsealed, weights_view)) ? "yes" : "NO");
  }
  return 0;
}
