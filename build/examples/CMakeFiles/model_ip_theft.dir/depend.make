# Empty dependencies file for model_ip_theft.
# This may be replaced when dependencies are built.
