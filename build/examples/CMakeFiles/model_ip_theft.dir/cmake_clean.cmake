file(REMOVE_RECURSE
  "CMakeFiles/model_ip_theft.dir/model_ip_theft.cpp.o"
  "CMakeFiles/model_ip_theft.dir/model_ip_theft.cpp.o.d"
  "model_ip_theft"
  "model_ip_theft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_ip_theft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
