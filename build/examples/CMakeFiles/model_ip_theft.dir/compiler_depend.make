# Empty compiler generated dependencies file for model_ip_theft.
# This may be replaced when dependencies are built.
