file(REMOVE_RECURSE
  "CMakeFiles/hades_explore.dir/hades_explore.cpp.o"
  "CMakeFiles/hades_explore.dir/hades_explore.cpp.o.d"
  "hades_explore"
  "hades_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hades_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
