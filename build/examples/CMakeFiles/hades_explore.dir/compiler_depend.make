# Empty compiler generated dependencies file for hades_explore.
# This may be replaced when dependencies are built.
