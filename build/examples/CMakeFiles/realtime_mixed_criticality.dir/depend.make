# Empty dependencies file for realtime_mixed_criticality.
# This may be replaced when dependencies are built.
