file(REMOVE_RECURSE
  "CMakeFiles/realtime_mixed_criticality.dir/realtime_mixed_criticality.cpp.o"
  "CMakeFiles/realtime_mixed_criticality.dir/realtime_mixed_criticality.cpp.o.d"
  "realtime_mixed_criticality"
  "realtime_mixed_criticality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_mixed_criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
