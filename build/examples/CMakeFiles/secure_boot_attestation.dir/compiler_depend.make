# Empty compiler generated dependencies file for secure_boot_attestation.
# This may be replaced when dependencies are built.
