file(REMOVE_RECURSE
  "CMakeFiles/secure_boot_attestation.dir/secure_boot_attestation.cpp.o"
  "CMakeFiles/secure_boot_attestation.dir/secure_boot_attestation.cpp.o.d"
  "secure_boot_attestation"
  "secure_boot_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_boot_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
