# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_hash[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_cipher[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_ed25519[1]_include.cmake")
include("/root/repo/build/tests/test_masking[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_pqc[1]_include.cmake")
include("/root/repo/build/tests/test_hades[1]_include.cmake")
include("/root/repo/build/tests/test_cim[1]_include.cmake")
include("/root/repo/build/tests/test_tee[1]_include.cmake")
include("/root/repo/build/tests/test_rtos[1]_include.cmake")
include("/root/repo/build/tests/test_compsoc[1]_include.cmake")
include("/root/repo/build/tests/test_framework[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
