
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hades/test_component.cpp" "tests/CMakeFiles/test_hades.dir/hades/test_component.cpp.o" "gcc" "tests/CMakeFiles/test_hades.dir/hades/test_component.cpp.o.d"
  "/root/repo/tests/hades/test_constrained.cpp" "tests/CMakeFiles/test_hades.dir/hades/test_constrained.cpp.o" "gcc" "tests/CMakeFiles/test_hades.dir/hades/test_constrained.cpp.o.d"
  "/root/repo/tests/hades/test_report.cpp" "tests/CMakeFiles/test_hades.dir/hades/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_hades.dir/hades/test_report.cpp.o.d"
  "/root/repo/tests/hades/test_search.cpp" "tests/CMakeFiles/test_hades.dir/hades/test_search.cpp.o" "gcc" "tests/CMakeFiles/test_hades.dir/hades/test_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/convolve_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/hades/CMakeFiles/convolve_hades.dir/DependInfo.cmake"
  "/root/repo/build/src/masking/CMakeFiles/convolve_masking.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
