file(REMOVE_RECURSE
  "CMakeFiles/test_hades.dir/hades/test_component.cpp.o"
  "CMakeFiles/test_hades.dir/hades/test_component.cpp.o.d"
  "CMakeFiles/test_hades.dir/hades/test_constrained.cpp.o"
  "CMakeFiles/test_hades.dir/hades/test_constrained.cpp.o.d"
  "CMakeFiles/test_hades.dir/hades/test_report.cpp.o"
  "CMakeFiles/test_hades.dir/hades/test_report.cpp.o.d"
  "CMakeFiles/test_hades.dir/hades/test_search.cpp.o"
  "CMakeFiles/test_hades.dir/hades/test_search.cpp.o.d"
  "test_hades"
  "test_hades.pdb"
  "test_hades[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
