# Empty dependencies file for test_hades.
# This may be replaced when dependencies are built.
