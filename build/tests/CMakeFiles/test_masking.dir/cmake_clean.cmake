file(REMOVE_RECURSE
  "CMakeFiles/test_masking.dir/masking/test_circuit.cpp.o"
  "CMakeFiles/test_masking.dir/masking/test_circuit.cpp.o.d"
  "CMakeFiles/test_masking.dir/masking/test_gf256.cpp.o"
  "CMakeFiles/test_masking.dir/masking/test_gf256.cpp.o.d"
  "CMakeFiles/test_masking.dir/masking/test_masked_aes.cpp.o"
  "CMakeFiles/test_masking.dir/masking/test_masked_aes.cpp.o.d"
  "CMakeFiles/test_masking.dir/masking/test_masked_keccak.cpp.o"
  "CMakeFiles/test_masking.dir/masking/test_masked_keccak.cpp.o.d"
  "CMakeFiles/test_masking.dir/masking/test_probing.cpp.o"
  "CMakeFiles/test_masking.dir/masking/test_probing.cpp.o.d"
  "CMakeFiles/test_masking.dir/masking/test_shares.cpp.o"
  "CMakeFiles/test_masking.dir/masking/test_shares.cpp.o.d"
  "test_masking"
  "test_masking.pdb"
  "test_masking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
