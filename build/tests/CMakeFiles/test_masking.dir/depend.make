# Empty dependencies file for test_masking.
# This may be replaced when dependencies are built.
