
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/masking/test_circuit.cpp" "tests/CMakeFiles/test_masking.dir/masking/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/test_masking.dir/masking/test_circuit.cpp.o.d"
  "/root/repo/tests/masking/test_gf256.cpp" "tests/CMakeFiles/test_masking.dir/masking/test_gf256.cpp.o" "gcc" "tests/CMakeFiles/test_masking.dir/masking/test_gf256.cpp.o.d"
  "/root/repo/tests/masking/test_masked_aes.cpp" "tests/CMakeFiles/test_masking.dir/masking/test_masked_aes.cpp.o" "gcc" "tests/CMakeFiles/test_masking.dir/masking/test_masked_aes.cpp.o.d"
  "/root/repo/tests/masking/test_masked_keccak.cpp" "tests/CMakeFiles/test_masking.dir/masking/test_masked_keccak.cpp.o" "gcc" "tests/CMakeFiles/test_masking.dir/masking/test_masked_keccak.cpp.o.d"
  "/root/repo/tests/masking/test_probing.cpp" "tests/CMakeFiles/test_masking.dir/masking/test_probing.cpp.o" "gcc" "tests/CMakeFiles/test_masking.dir/masking/test_probing.cpp.o.d"
  "/root/repo/tests/masking/test_shares.cpp" "tests/CMakeFiles/test_masking.dir/masking/test_shares.cpp.o" "gcc" "tests/CMakeFiles/test_masking.dir/masking/test_shares.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/convolve_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/masking/CMakeFiles/convolve_masking.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
