
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tee/test_boot_attest.cpp" "tests/CMakeFiles/test_tee.dir/tee/test_boot_attest.cpp.o" "gcc" "tests/CMakeFiles/test_tee.dir/tee/test_boot_attest.cpp.o.d"
  "/root/repo/tests/tee/test_machine.cpp" "tests/CMakeFiles/test_tee.dir/tee/test_machine.cpp.o" "gcc" "tests/CMakeFiles/test_tee.dir/tee/test_machine.cpp.o.d"
  "/root/repo/tests/tee/test_pmp.cpp" "tests/CMakeFiles/test_tee.dir/tee/test_pmp.cpp.o" "gcc" "tests/CMakeFiles/test_tee.dir/tee/test_pmp.cpp.o.d"
  "/root/repo/tests/tee/test_pmp_fuzz.cpp" "tests/CMakeFiles/test_tee.dir/tee/test_pmp_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_tee.dir/tee/test_pmp_fuzz.cpp.o.d"
  "/root/repo/tests/tee/test_rv32.cpp" "tests/CMakeFiles/test_tee.dir/tee/test_rv32.cpp.o" "gcc" "tests/CMakeFiles/test_tee.dir/tee/test_rv32.cpp.o.d"
  "/root/repo/tests/tee/test_security_monitor.cpp" "tests/CMakeFiles/test_tee.dir/tee/test_security_monitor.cpp.o" "gcc" "tests/CMakeFiles/test_tee.dir/tee/test_security_monitor.cpp.o.d"
  "/root/repo/tests/tee/test_vendor.cpp" "tests/CMakeFiles/test_tee.dir/tee/test_vendor.cpp.o" "gcc" "tests/CMakeFiles/test_tee.dir/tee/test_vendor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/convolve_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/convolve_tee.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
