file(REMOVE_RECURSE
  "CMakeFiles/test_tee.dir/tee/test_boot_attest.cpp.o"
  "CMakeFiles/test_tee.dir/tee/test_boot_attest.cpp.o.d"
  "CMakeFiles/test_tee.dir/tee/test_machine.cpp.o"
  "CMakeFiles/test_tee.dir/tee/test_machine.cpp.o.d"
  "CMakeFiles/test_tee.dir/tee/test_pmp.cpp.o"
  "CMakeFiles/test_tee.dir/tee/test_pmp.cpp.o.d"
  "CMakeFiles/test_tee.dir/tee/test_pmp_fuzz.cpp.o"
  "CMakeFiles/test_tee.dir/tee/test_pmp_fuzz.cpp.o.d"
  "CMakeFiles/test_tee.dir/tee/test_rv32.cpp.o"
  "CMakeFiles/test_tee.dir/tee/test_rv32.cpp.o.d"
  "CMakeFiles/test_tee.dir/tee/test_security_monitor.cpp.o"
  "CMakeFiles/test_tee.dir/tee/test_security_monitor.cpp.o.d"
  "CMakeFiles/test_tee.dir/tee/test_vendor.cpp.o"
  "CMakeFiles/test_tee.dir/tee/test_vendor.cpp.o.d"
  "test_tee"
  "test_tee.pdb"
  "test_tee[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
