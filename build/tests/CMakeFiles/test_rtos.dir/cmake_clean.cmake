file(REMOVE_RECURSE
  "CMakeFiles/test_rtos.dir/rtos/test_attacks.cpp.o"
  "CMakeFiles/test_rtos.dir/rtos/test_attacks.cpp.o.d"
  "CMakeFiles/test_rtos.dir/rtos/test_kernel.cpp.o"
  "CMakeFiles/test_rtos.dir/rtos/test_kernel.cpp.o.d"
  "CMakeFiles/test_rtos.dir/rtos/test_mutex.cpp.o"
  "CMakeFiles/test_rtos.dir/rtos/test_mutex.cpp.o.d"
  "test_rtos"
  "test_rtos.pdb"
  "test_rtos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
