# Empty compiler generated dependencies file for test_crypto_pqc.
# This may be replaced when dependencies are built.
