
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/test_dilithium.cpp" "tests/CMakeFiles/test_crypto_pqc.dir/crypto/test_dilithium.cpp.o" "gcc" "tests/CMakeFiles/test_crypto_pqc.dir/crypto/test_dilithium.cpp.o.d"
  "/root/repo/tests/crypto/test_golden.cpp" "tests/CMakeFiles/test_crypto_pqc.dir/crypto/test_golden.cpp.o" "gcc" "tests/CMakeFiles/test_crypto_pqc.dir/crypto/test_golden.cpp.o.d"
  "/root/repo/tests/crypto/test_kyber.cpp" "tests/CMakeFiles/test_crypto_pqc.dir/crypto/test_kyber.cpp.o" "gcc" "tests/CMakeFiles/test_crypto_pqc.dir/crypto/test_kyber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/convolve_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
