file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_pqc.dir/crypto/test_dilithium.cpp.o"
  "CMakeFiles/test_crypto_pqc.dir/crypto/test_dilithium.cpp.o.d"
  "CMakeFiles/test_crypto_pqc.dir/crypto/test_golden.cpp.o"
  "CMakeFiles/test_crypto_pqc.dir/crypto/test_golden.cpp.o.d"
  "CMakeFiles/test_crypto_pqc.dir/crypto/test_kyber.cpp.o"
  "CMakeFiles/test_crypto_pqc.dir/crypto/test_kyber.cpp.o.d"
  "test_crypto_pqc"
  "test_crypto_pqc.pdb"
  "test_crypto_pqc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_pqc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
