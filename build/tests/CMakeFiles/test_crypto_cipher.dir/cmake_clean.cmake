file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_cipher.dir/crypto/test_aead.cpp.o"
  "CMakeFiles/test_crypto_cipher.dir/crypto/test_aead.cpp.o.d"
  "CMakeFiles/test_crypto_cipher.dir/crypto/test_aes.cpp.o"
  "CMakeFiles/test_crypto_cipher.dir/crypto/test_aes.cpp.o.d"
  "CMakeFiles/test_crypto_cipher.dir/crypto/test_chacha20.cpp.o"
  "CMakeFiles/test_crypto_cipher.dir/crypto/test_chacha20.cpp.o.d"
  "test_crypto_cipher"
  "test_crypto_cipher.pdb"
  "test_crypto_cipher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_cipher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
