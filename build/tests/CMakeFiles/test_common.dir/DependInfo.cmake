
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_bytes.cpp" "tests/CMakeFiles/test_common.dir/common/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_bytes.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/convolve_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
