file(REMOVE_RECURSE
  "CMakeFiles/test_compsoc.dir/compsoc/test_noc.cpp.o"
  "CMakeFiles/test_compsoc.dir/compsoc/test_noc.cpp.o.d"
  "CMakeFiles/test_compsoc.dir/compsoc/test_platform.cpp.o"
  "CMakeFiles/test_compsoc.dir/compsoc/test_platform.cpp.o.d"
  "test_compsoc"
  "test_compsoc.pdb"
  "test_compsoc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compsoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
