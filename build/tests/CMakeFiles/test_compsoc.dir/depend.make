# Empty dependencies file for test_compsoc.
# This may be replaced when dependencies are built.
