file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_ed25519.dir/crypto/test_ed25519.cpp.o"
  "CMakeFiles/test_crypto_ed25519.dir/crypto/test_ed25519.cpp.o.d"
  "test_crypto_ed25519"
  "test_crypto_ed25519.pdb"
  "test_crypto_ed25519[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_ed25519.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
