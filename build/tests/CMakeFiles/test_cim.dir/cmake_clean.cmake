file(REMOVE_RECURSE
  "CMakeFiles/test_cim.dir/cim/test_adder_tree.cpp.o"
  "CMakeFiles/test_cim.dir/cim/test_adder_tree.cpp.o.d"
  "CMakeFiles/test_cim.dir/cim/test_attack.cpp.o"
  "CMakeFiles/test_cim.dir/cim/test_attack.cpp.o.d"
  "CMakeFiles/test_cim.dir/cim/test_kmeans.cpp.o"
  "CMakeFiles/test_cim.dir/cim/test_kmeans.cpp.o.d"
  "CMakeFiles/test_cim.dir/cim/test_layer.cpp.o"
  "CMakeFiles/test_cim.dir/cim/test_layer.cpp.o.d"
  "CMakeFiles/test_cim.dir/cim/test_leakage.cpp.o"
  "CMakeFiles/test_cim.dir/cim/test_leakage.cpp.o.d"
  "test_cim"
  "test_cim.pdb"
  "test_cim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
