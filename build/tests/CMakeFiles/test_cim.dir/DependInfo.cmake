
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cim/test_adder_tree.cpp" "tests/CMakeFiles/test_cim.dir/cim/test_adder_tree.cpp.o" "gcc" "tests/CMakeFiles/test_cim.dir/cim/test_adder_tree.cpp.o.d"
  "/root/repo/tests/cim/test_attack.cpp" "tests/CMakeFiles/test_cim.dir/cim/test_attack.cpp.o" "gcc" "tests/CMakeFiles/test_cim.dir/cim/test_attack.cpp.o.d"
  "/root/repo/tests/cim/test_kmeans.cpp" "tests/CMakeFiles/test_cim.dir/cim/test_kmeans.cpp.o" "gcc" "tests/CMakeFiles/test_cim.dir/cim/test_kmeans.cpp.o.d"
  "/root/repo/tests/cim/test_layer.cpp" "tests/CMakeFiles/test_cim.dir/cim/test_layer.cpp.o" "gcc" "tests/CMakeFiles/test_cim.dir/cim/test_layer.cpp.o.d"
  "/root/repo/tests/cim/test_leakage.cpp" "tests/CMakeFiles/test_cim.dir/cim/test_leakage.cpp.o" "gcc" "tests/CMakeFiles/test_cim.dir/cim/test_leakage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/convolve_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cim/CMakeFiles/convolve_cim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
