file(REMOVE_RECURSE
  "CMakeFiles/convolve_common.dir/bytes.cpp.o"
  "CMakeFiles/convolve_common.dir/bytes.cpp.o.d"
  "CMakeFiles/convolve_common.dir/rng.cpp.o"
  "CMakeFiles/convolve_common.dir/rng.cpp.o.d"
  "CMakeFiles/convolve_common.dir/stats.cpp.o"
  "CMakeFiles/convolve_common.dir/stats.cpp.o.d"
  "libconvolve_common.a"
  "libconvolve_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolve_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
