file(REMOVE_RECURSE
  "libconvolve_common.a"
)
