# Empty dependencies file for convolve_common.
# This may be replaced when dependencies are built.
