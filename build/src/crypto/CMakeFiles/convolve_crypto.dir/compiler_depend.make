# Empty compiler generated dependencies file for convolve_crypto.
# This may be replaced when dependencies are built.
