file(REMOVE_RECURSE
  "CMakeFiles/convolve_crypto.dir/aead.cpp.o"
  "CMakeFiles/convolve_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/convolve_crypto.dir/aes.cpp.o"
  "CMakeFiles/convolve_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/convolve_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/convolve_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/convolve_crypto.dir/dilithium.cpp.o"
  "CMakeFiles/convolve_crypto.dir/dilithium.cpp.o.d"
  "CMakeFiles/convolve_crypto.dir/drbg.cpp.o"
  "CMakeFiles/convolve_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/convolve_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/convolve_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/convolve_crypto.dir/hmac.cpp.o"
  "CMakeFiles/convolve_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/convolve_crypto.dir/keccak.cpp.o"
  "CMakeFiles/convolve_crypto.dir/keccak.cpp.o.d"
  "CMakeFiles/convolve_crypto.dir/kyber.cpp.o"
  "CMakeFiles/convolve_crypto.dir/kyber.cpp.o.d"
  "CMakeFiles/convolve_crypto.dir/sha512.cpp.o"
  "CMakeFiles/convolve_crypto.dir/sha512.cpp.o.d"
  "libconvolve_crypto.a"
  "libconvolve_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolve_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
