file(REMOVE_RECURSE
  "libconvolve_crypto.a"
)
