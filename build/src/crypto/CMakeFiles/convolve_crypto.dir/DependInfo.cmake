
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cpp" "src/crypto/CMakeFiles/convolve_crypto.dir/aead.cpp.o" "gcc" "src/crypto/CMakeFiles/convolve_crypto.dir/aead.cpp.o.d"
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/convolve_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/convolve_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/convolve_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/convolve_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/dilithium.cpp" "src/crypto/CMakeFiles/convolve_crypto.dir/dilithium.cpp.o" "gcc" "src/crypto/CMakeFiles/convolve_crypto.dir/dilithium.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/crypto/CMakeFiles/convolve_crypto.dir/drbg.cpp.o" "gcc" "src/crypto/CMakeFiles/convolve_crypto.dir/drbg.cpp.o.d"
  "/root/repo/src/crypto/ed25519.cpp" "src/crypto/CMakeFiles/convolve_crypto.dir/ed25519.cpp.o" "gcc" "src/crypto/CMakeFiles/convolve_crypto.dir/ed25519.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/convolve_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/convolve_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/keccak.cpp" "src/crypto/CMakeFiles/convolve_crypto.dir/keccak.cpp.o" "gcc" "src/crypto/CMakeFiles/convolve_crypto.dir/keccak.cpp.o.d"
  "/root/repo/src/crypto/kyber.cpp" "src/crypto/CMakeFiles/convolve_crypto.dir/kyber.cpp.o" "gcc" "src/crypto/CMakeFiles/convolve_crypto.dir/kyber.cpp.o.d"
  "/root/repo/src/crypto/sha512.cpp" "src/crypto/CMakeFiles/convolve_crypto.dir/sha512.cpp.o" "gcc" "src/crypto/CMakeFiles/convolve_crypto.dir/sha512.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
