file(REMOVE_RECURSE
  "CMakeFiles/convolve_cim.dir/adder_tree.cpp.o"
  "CMakeFiles/convolve_cim.dir/adder_tree.cpp.o.d"
  "CMakeFiles/convolve_cim.dir/attack.cpp.o"
  "CMakeFiles/convolve_cim.dir/attack.cpp.o.d"
  "CMakeFiles/convolve_cim.dir/kmeans.cpp.o"
  "CMakeFiles/convolve_cim.dir/kmeans.cpp.o.d"
  "CMakeFiles/convolve_cim.dir/layer.cpp.o"
  "CMakeFiles/convolve_cim.dir/layer.cpp.o.d"
  "CMakeFiles/convolve_cim.dir/leakage.cpp.o"
  "CMakeFiles/convolve_cim.dir/leakage.cpp.o.d"
  "CMakeFiles/convolve_cim.dir/macro.cpp.o"
  "CMakeFiles/convolve_cim.dir/macro.cpp.o.d"
  "libconvolve_cim.a"
  "libconvolve_cim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolve_cim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
