# Empty dependencies file for convolve_cim.
# This may be replaced when dependencies are built.
