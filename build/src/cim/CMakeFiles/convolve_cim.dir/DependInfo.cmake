
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cim/adder_tree.cpp" "src/cim/CMakeFiles/convolve_cim.dir/adder_tree.cpp.o" "gcc" "src/cim/CMakeFiles/convolve_cim.dir/adder_tree.cpp.o.d"
  "/root/repo/src/cim/attack.cpp" "src/cim/CMakeFiles/convolve_cim.dir/attack.cpp.o" "gcc" "src/cim/CMakeFiles/convolve_cim.dir/attack.cpp.o.d"
  "/root/repo/src/cim/kmeans.cpp" "src/cim/CMakeFiles/convolve_cim.dir/kmeans.cpp.o" "gcc" "src/cim/CMakeFiles/convolve_cim.dir/kmeans.cpp.o.d"
  "/root/repo/src/cim/layer.cpp" "src/cim/CMakeFiles/convolve_cim.dir/layer.cpp.o" "gcc" "src/cim/CMakeFiles/convolve_cim.dir/layer.cpp.o.d"
  "/root/repo/src/cim/leakage.cpp" "src/cim/CMakeFiles/convolve_cim.dir/leakage.cpp.o" "gcc" "src/cim/CMakeFiles/convolve_cim.dir/leakage.cpp.o.d"
  "/root/repo/src/cim/macro.cpp" "src/cim/CMakeFiles/convolve_cim.dir/macro.cpp.o" "gcc" "src/cim/CMakeFiles/convolve_cim.dir/macro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
