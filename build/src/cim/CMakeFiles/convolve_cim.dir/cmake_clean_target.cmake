file(REMOVE_RECURSE
  "libconvolve_cim.a"
)
