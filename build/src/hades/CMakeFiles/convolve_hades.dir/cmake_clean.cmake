file(REMOVE_RECURSE
  "CMakeFiles/convolve_hades.dir/component.cpp.o"
  "CMakeFiles/convolve_hades.dir/component.cpp.o.d"
  "CMakeFiles/convolve_hades.dir/library_arith.cpp.o"
  "CMakeFiles/convolve_hades.dir/library_arith.cpp.o.d"
  "CMakeFiles/convolve_hades.dir/library_kyber.cpp.o"
  "CMakeFiles/convolve_hades.dir/library_kyber.cpp.o.d"
  "CMakeFiles/convolve_hades.dir/library_symmetric.cpp.o"
  "CMakeFiles/convolve_hades.dir/library_symmetric.cpp.o.d"
  "CMakeFiles/convolve_hades.dir/report.cpp.o"
  "CMakeFiles/convolve_hades.dir/report.cpp.o.d"
  "CMakeFiles/convolve_hades.dir/search.cpp.o"
  "CMakeFiles/convolve_hades.dir/search.cpp.o.d"
  "libconvolve_hades.a"
  "libconvolve_hades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolve_hades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
