# Empty dependencies file for convolve_hades.
# This may be replaced when dependencies are built.
