
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hades/component.cpp" "src/hades/CMakeFiles/convolve_hades.dir/component.cpp.o" "gcc" "src/hades/CMakeFiles/convolve_hades.dir/component.cpp.o.d"
  "/root/repo/src/hades/library_arith.cpp" "src/hades/CMakeFiles/convolve_hades.dir/library_arith.cpp.o" "gcc" "src/hades/CMakeFiles/convolve_hades.dir/library_arith.cpp.o.d"
  "/root/repo/src/hades/library_kyber.cpp" "src/hades/CMakeFiles/convolve_hades.dir/library_kyber.cpp.o" "gcc" "src/hades/CMakeFiles/convolve_hades.dir/library_kyber.cpp.o.d"
  "/root/repo/src/hades/library_symmetric.cpp" "src/hades/CMakeFiles/convolve_hades.dir/library_symmetric.cpp.o" "gcc" "src/hades/CMakeFiles/convolve_hades.dir/library_symmetric.cpp.o.d"
  "/root/repo/src/hades/report.cpp" "src/hades/CMakeFiles/convolve_hades.dir/report.cpp.o" "gcc" "src/hades/CMakeFiles/convolve_hades.dir/report.cpp.o.d"
  "/root/repo/src/hades/search.cpp" "src/hades/CMakeFiles/convolve_hades.dir/search.cpp.o" "gcc" "src/hades/CMakeFiles/convolve_hades.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/masking/CMakeFiles/convolve_masking.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
