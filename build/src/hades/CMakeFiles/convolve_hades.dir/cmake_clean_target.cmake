file(REMOVE_RECURSE
  "libconvolve_hades.a"
)
