
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/attestation.cpp" "src/tee/CMakeFiles/convolve_tee.dir/attestation.cpp.o" "gcc" "src/tee/CMakeFiles/convolve_tee.dir/attestation.cpp.o.d"
  "/root/repo/src/tee/bootrom.cpp" "src/tee/CMakeFiles/convolve_tee.dir/bootrom.cpp.o" "gcc" "src/tee/CMakeFiles/convolve_tee.dir/bootrom.cpp.o.d"
  "/root/repo/src/tee/machine.cpp" "src/tee/CMakeFiles/convolve_tee.dir/machine.cpp.o" "gcc" "src/tee/CMakeFiles/convolve_tee.dir/machine.cpp.o.d"
  "/root/repo/src/tee/pmp.cpp" "src/tee/CMakeFiles/convolve_tee.dir/pmp.cpp.o" "gcc" "src/tee/CMakeFiles/convolve_tee.dir/pmp.cpp.o.d"
  "/root/repo/src/tee/rv32.cpp" "src/tee/CMakeFiles/convolve_tee.dir/rv32.cpp.o" "gcc" "src/tee/CMakeFiles/convolve_tee.dir/rv32.cpp.o.d"
  "/root/repo/src/tee/security_monitor.cpp" "src/tee/CMakeFiles/convolve_tee.dir/security_monitor.cpp.o" "gcc" "src/tee/CMakeFiles/convolve_tee.dir/security_monitor.cpp.o.d"
  "/root/repo/src/tee/vendor.cpp" "src/tee/CMakeFiles/convolve_tee.dir/vendor.cpp.o" "gcc" "src/tee/CMakeFiles/convolve_tee.dir/vendor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/convolve_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
