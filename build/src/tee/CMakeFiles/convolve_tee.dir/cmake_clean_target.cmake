file(REMOVE_RECURSE
  "libconvolve_tee.a"
)
