# Empty compiler generated dependencies file for convolve_tee.
# This may be replaced when dependencies are built.
