file(REMOVE_RECURSE
  "CMakeFiles/convolve_tee.dir/attestation.cpp.o"
  "CMakeFiles/convolve_tee.dir/attestation.cpp.o.d"
  "CMakeFiles/convolve_tee.dir/bootrom.cpp.o"
  "CMakeFiles/convolve_tee.dir/bootrom.cpp.o.d"
  "CMakeFiles/convolve_tee.dir/machine.cpp.o"
  "CMakeFiles/convolve_tee.dir/machine.cpp.o.d"
  "CMakeFiles/convolve_tee.dir/pmp.cpp.o"
  "CMakeFiles/convolve_tee.dir/pmp.cpp.o.d"
  "CMakeFiles/convolve_tee.dir/rv32.cpp.o"
  "CMakeFiles/convolve_tee.dir/rv32.cpp.o.d"
  "CMakeFiles/convolve_tee.dir/security_monitor.cpp.o"
  "CMakeFiles/convolve_tee.dir/security_monitor.cpp.o.d"
  "CMakeFiles/convolve_tee.dir/vendor.cpp.o"
  "CMakeFiles/convolve_tee.dir/vendor.cpp.o.d"
  "libconvolve_tee.a"
  "libconvolve_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolve_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
