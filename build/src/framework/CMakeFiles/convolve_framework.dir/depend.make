# Empty dependencies file for convolve_framework.
# This may be replaced when dependencies are built.
