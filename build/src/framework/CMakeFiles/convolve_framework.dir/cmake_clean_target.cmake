file(REMOVE_RECURSE
  "libconvolve_framework.a"
)
