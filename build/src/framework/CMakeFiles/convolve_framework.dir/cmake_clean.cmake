file(REMOVE_RECURSE
  "CMakeFiles/convolve_framework.dir/device.cpp.o"
  "CMakeFiles/convolve_framework.dir/device.cpp.o.d"
  "CMakeFiles/convolve_framework.dir/profile.cpp.o"
  "CMakeFiles/convolve_framework.dir/profile.cpp.o.d"
  "libconvolve_framework.a"
  "libconvolve_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolve_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
