file(REMOVE_RECURSE
  "libconvolve_rtos.a"
)
