# Empty compiler generated dependencies file for convolve_rtos.
# This may be replaced when dependencies are built.
