file(REMOVE_RECURSE
  "CMakeFiles/convolve_rtos.dir/attacks.cpp.o"
  "CMakeFiles/convolve_rtos.dir/attacks.cpp.o.d"
  "CMakeFiles/convolve_rtos.dir/kernel.cpp.o"
  "CMakeFiles/convolve_rtos.dir/kernel.cpp.o.d"
  "libconvolve_rtos.a"
  "libconvolve_rtos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolve_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
