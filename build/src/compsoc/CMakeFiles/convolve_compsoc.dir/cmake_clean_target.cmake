file(REMOVE_RECURSE
  "libconvolve_compsoc.a"
)
