# Empty dependencies file for convolve_compsoc.
# This may be replaced when dependencies are built.
