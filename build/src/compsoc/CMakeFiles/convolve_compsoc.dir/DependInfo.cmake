
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compsoc/noc.cpp" "src/compsoc/CMakeFiles/convolve_compsoc.dir/noc.cpp.o" "gcc" "src/compsoc/CMakeFiles/convolve_compsoc.dir/noc.cpp.o.d"
  "/root/repo/src/compsoc/platform.cpp" "src/compsoc/CMakeFiles/convolve_compsoc.dir/platform.cpp.o" "gcc" "src/compsoc/CMakeFiles/convolve_compsoc.dir/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
