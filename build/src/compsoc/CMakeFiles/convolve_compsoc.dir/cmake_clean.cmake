file(REMOVE_RECURSE
  "CMakeFiles/convolve_compsoc.dir/noc.cpp.o"
  "CMakeFiles/convolve_compsoc.dir/noc.cpp.o.d"
  "CMakeFiles/convolve_compsoc.dir/platform.cpp.o"
  "CMakeFiles/convolve_compsoc.dir/platform.cpp.o.d"
  "libconvolve_compsoc.a"
  "libconvolve_compsoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolve_compsoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
