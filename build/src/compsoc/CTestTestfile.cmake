# CMake generated Testfile for 
# Source directory: /root/repo/src/compsoc
# Build directory: /root/repo/build/src/compsoc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
