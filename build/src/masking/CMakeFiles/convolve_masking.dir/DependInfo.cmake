
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/masking/circuit.cpp" "src/masking/CMakeFiles/convolve_masking.dir/circuit.cpp.o" "gcc" "src/masking/CMakeFiles/convolve_masking.dir/circuit.cpp.o.d"
  "/root/repo/src/masking/gf256.cpp" "src/masking/CMakeFiles/convolve_masking.dir/gf256.cpp.o" "gcc" "src/masking/CMakeFiles/convolve_masking.dir/gf256.cpp.o.d"
  "/root/repo/src/masking/masked_aes.cpp" "src/masking/CMakeFiles/convolve_masking.dir/masked_aes.cpp.o" "gcc" "src/masking/CMakeFiles/convolve_masking.dir/masked_aes.cpp.o.d"
  "/root/repo/src/masking/masked_keccak.cpp" "src/masking/CMakeFiles/convolve_masking.dir/masked_keccak.cpp.o" "gcc" "src/masking/CMakeFiles/convolve_masking.dir/masked_keccak.cpp.o.d"
  "/root/repo/src/masking/probing.cpp" "src/masking/CMakeFiles/convolve_masking.dir/probing.cpp.o" "gcc" "src/masking/CMakeFiles/convolve_masking.dir/probing.cpp.o.d"
  "/root/repo/src/masking/shares.cpp" "src/masking/CMakeFiles/convolve_masking.dir/shares.cpp.o" "gcc" "src/masking/CMakeFiles/convolve_masking.dir/shares.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
