file(REMOVE_RECURSE
  "libconvolve_masking.a"
)
