# Empty compiler generated dependencies file for convolve_masking.
# This may be replaced when dependencies are built.
