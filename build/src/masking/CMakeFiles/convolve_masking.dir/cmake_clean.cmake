file(REMOVE_RECURSE
  "CMakeFiles/convolve_masking.dir/circuit.cpp.o"
  "CMakeFiles/convolve_masking.dir/circuit.cpp.o.d"
  "CMakeFiles/convolve_masking.dir/gf256.cpp.o"
  "CMakeFiles/convolve_masking.dir/gf256.cpp.o.d"
  "CMakeFiles/convolve_masking.dir/masked_aes.cpp.o"
  "CMakeFiles/convolve_masking.dir/masked_aes.cpp.o.d"
  "CMakeFiles/convolve_masking.dir/masked_keccak.cpp.o"
  "CMakeFiles/convolve_masking.dir/masked_keccak.cpp.o.d"
  "CMakeFiles/convolve_masking.dir/probing.cpp.o"
  "CMakeFiles/convolve_masking.dir/probing.cpp.o.d"
  "CMakeFiles/convolve_masking.dir/shares.cpp.o"
  "CMakeFiles/convolve_masking.dir/shares.cpp.o.d"
  "libconvolve_masking.a"
  "libconvolve_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolve_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
