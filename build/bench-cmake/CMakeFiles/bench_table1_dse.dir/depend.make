# Empty dependencies file for bench_table1_dse.
# This may be replaced when dependencies are built.
