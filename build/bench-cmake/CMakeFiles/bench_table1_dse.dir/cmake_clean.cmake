file(REMOVE_RECURSE
  "../bench/bench_table1_dse"
  "../bench/bench_table1_dse.pdb"
  "CMakeFiles/bench_table1_dse.dir/bench_table1_dse.cpp.o"
  "CMakeFiles/bench_table1_dse.dir/bench_table1_dse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
