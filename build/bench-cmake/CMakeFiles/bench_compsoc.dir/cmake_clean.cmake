file(REMOVE_RECURSE
  "../bench/bench_compsoc"
  "../bench/bench_compsoc.pdb"
  "CMakeFiles/bench_compsoc.dir/bench_compsoc.cpp.o"
  "CMakeFiles/bench_compsoc.dir/bench_compsoc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compsoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
