# Empty compiler generated dependencies file for bench_compsoc.
# This may be replaced when dependencies are built.
