
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_phase2.cpp" "bench-cmake/CMakeFiles/bench_fig2_phase2.dir/bench_fig2_phase2.cpp.o" "gcc" "bench-cmake/CMakeFiles/bench_fig2_phase2.dir/bench_fig2_phase2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/convolve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/convolve_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/masking/CMakeFiles/convolve_masking.dir/DependInfo.cmake"
  "/root/repo/build/src/hades/CMakeFiles/convolve_hades.dir/DependInfo.cmake"
  "/root/repo/build/src/cim/CMakeFiles/convolve_cim.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/convolve_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/convolve_rtos.dir/DependInfo.cmake"
  "/root/repo/build/src/compsoc/CMakeFiles/convolve_compsoc.dir/DependInfo.cmake"
  "/root/repo/build/src/framework/CMakeFiles/convolve_framework.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
