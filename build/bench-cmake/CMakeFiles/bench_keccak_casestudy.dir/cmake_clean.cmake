file(REMOVE_RECURSE
  "../bench/bench_keccak_casestudy"
  "../bench/bench_keccak_casestudy.pdb"
  "CMakeFiles/bench_keccak_casestudy.dir/bench_keccak_casestudy.cpp.o"
  "CMakeFiles/bench_keccak_casestudy.dir/bench_keccak_casestudy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keccak_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
