# Empty dependencies file for bench_keccak_casestudy.
# This may be replaced when dependencies are built.
