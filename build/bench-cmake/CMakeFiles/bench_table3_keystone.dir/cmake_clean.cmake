file(REMOVE_RECURSE
  "../bench/bench_table3_keystone"
  "../bench/bench_table3_keystone.pdb"
  "CMakeFiles/bench_table3_keystone.dir/bench_table3_keystone.cpp.o"
  "CMakeFiles/bench_table3_keystone.dir/bench_table3_keystone.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_keystone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
