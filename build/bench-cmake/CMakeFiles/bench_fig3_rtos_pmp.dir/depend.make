# Empty dependencies file for bench_fig3_rtos_pmp.
# This may be replaced when dependencies are built.
