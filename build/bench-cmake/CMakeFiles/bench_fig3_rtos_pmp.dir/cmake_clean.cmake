file(REMOVE_RECURSE
  "../bench/bench_fig3_rtos_pmp"
  "../bench/bench_fig3_rtos_pmp.pdb"
  "CMakeFiles/bench_fig3_rtos_pmp.dir/bench_fig3_rtos_pmp.cpp.o"
  "CMakeFiles/bench_fig3_rtos_pmp.dir/bench_fig3_rtos_pmp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rtos_pmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
