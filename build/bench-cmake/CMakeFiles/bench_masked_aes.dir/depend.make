# Empty dependencies file for bench_masked_aes.
# This may be replaced when dependencies are built.
