file(REMOVE_RECURSE
  "../bench/bench_masked_aes"
  "../bench/bench_masked_aes.pdb"
  "CMakeFiles/bench_masked_aes.dir/bench_masked_aes.cpp.o"
  "CMakeFiles/bench_masked_aes.dir/bench_masked_aes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_masked_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
