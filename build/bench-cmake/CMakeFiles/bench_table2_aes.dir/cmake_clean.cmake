file(REMOVE_RECURSE
  "../bench/bench_table2_aes"
  "../bench/bench_table2_aes.pdb"
  "CMakeFiles/bench_table2_aes.dir/bench_table2_aes.cpp.o"
  "CMakeFiles/bench_table2_aes.dir/bench_table2_aes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
