file(REMOVE_RECURSE
  "../bench/bench_ablation_localsearch"
  "../bench/bench_ablation_localsearch.pdb"
  "CMakeFiles/bench_ablation_localsearch.dir/bench_ablation_localsearch.cpp.o"
  "CMakeFiles/bench_ablation_localsearch.dir/bench_ablation_localsearch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_localsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
