# Empty dependencies file for bench_ablation_localsearch.
# This may be replaced when dependencies are built.
