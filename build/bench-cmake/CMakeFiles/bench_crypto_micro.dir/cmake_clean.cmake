file(REMOVE_RECURSE
  "../bench/bench_crypto_micro"
  "../bench/bench_crypto_micro.pdb"
  "CMakeFiles/bench_crypto_micro.dir/bench_crypto_micro.cpp.o"
  "CMakeFiles/bench_crypto_micro.dir/bench_crypto_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crypto_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
