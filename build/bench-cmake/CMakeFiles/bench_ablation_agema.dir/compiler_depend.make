# Empty compiler generated dependencies file for bench_ablation_agema.
# This may be replaced when dependencies are built.
