file(REMOVE_RECURSE
  "../bench/bench_ablation_agema"
  "../bench/bench_ablation_agema.pdb"
  "CMakeFiles/bench_ablation_agema.dir/bench_ablation_agema.cpp.o"
  "CMakeFiles/bench_ablation_agema.dir/bench_ablation_agema.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_agema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
