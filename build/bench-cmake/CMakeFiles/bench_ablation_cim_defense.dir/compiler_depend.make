# Empty compiler generated dependencies file for bench_ablation_cim_defense.
# This may be replaced when dependencies are built.
