file(REMOVE_RECURSE
  "../bench/bench_ablation_cim_defense"
  "../bench/bench_ablation_cim_defense.pdb"
  "CMakeFiles/bench_ablation_cim_defense.dir/bench_ablation_cim_defense.cpp.o"
  "CMakeFiles/bench_ablation_cim_defense.dir/bench_ablation_cim_defense.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cim_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
