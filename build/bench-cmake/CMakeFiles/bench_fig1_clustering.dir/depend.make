# Empty dependencies file for bench_fig1_clustering.
# This may be replaced when dependencies are built.
