file(REMOVE_RECURSE
  "../bench/bench_framework_profiles"
  "../bench/bench_framework_profiles.pdb"
  "CMakeFiles/bench_framework_profiles.dir/bench_framework_profiles.cpp.o"
  "CMakeFiles/bench_framework_profiles.dir/bench_framework_profiles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_framework_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
