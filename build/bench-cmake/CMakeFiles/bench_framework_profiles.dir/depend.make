# Empty dependencies file for bench_framework_profiles.
# This may be replaced when dependencies are built.
