// Fork-isolation differential suite.
//
// The CoW forking contract under adversarial conditions: N machines forked
// from one snapshot run DIVERGENT SELF-MODIFYING programs (each fork
// patches its own code page with a per-fork instruction before executing
// it), and we assert (1) every fork computes its own expected result --
// the patched code really ran, so CoW materialization and decode-cache
// invalidation interact correctly; (2) forks are bit-exact independent:
// memories and page versions match a per-fork serial re-execution
// regardless of what other forks did, serial vs pool-concurrent; (3) the
// snapshot's bytes and page versions never change, no matter how many
// forks wrote "through" it; (4) a forked machine is engine-agnostic:
// interpreter / decode-cache / bytecode lock-step on the same fork input.
//
// The fuzz loop is sized >= 500 cycles (the tsan acceptance gate): each
// cycle is one fork + patch + run + verify.
#include <gtest/gtest.h>

#include "convolve/common/parallel.hpp"
#include "convolve/common/rng.hpp"
#include "convolve/tee/service/snapshot.hpp"

namespace convolve::tee::service {
namespace {

namespace rv = rv32asm;

// Self-modifying program: load a patch word from region offset 0x100,
// store it over the placeholder instruction at offset 0x20, fall through
// into it, then publish x7 at offset 0x200 and exit.
//   0x00 auipc x6, 0      -- x6 = region base
//   0x04 lw    x5, 0x100(x6)
//   0x08 sw    x5, 0x20(x6)   <- the self-modification
//   0x0c..0x1c nop x5
//   0x20 nop               <- patched to addi x7, x0, K before execution
//   0x24 sw    x7, 0x200(x6)
//   0x28 ecall
Bytes smc_program() {
  return rv::assemble({
      rv::auipc(6, 0),
      rv::lw(5, 6, 0x100),
      rv::sw(5, 6, 0x20),
      rv::nop(),
      rv::nop(),
      rv::nop(),
      rv::nop(),
      rv::nop(),
      rv::nop(),  // offset 0x20: patch target
      rv::sw(7, 6, 0x200),
      rv::ecall(),
  });
}

struct ForkLab {
  Machine machine{512 * 1024};
  BootRecord boot;
  std::unique_ptr<SecurityMonitor> sm;
  int enclave = -1;
  std::unique_ptr<MachineSnapshot> snapshot;

  ForkLab() {
    const Bootrom rom({false}, DeviceKeys::from_entropy(Bytes(32, 0x2F)));
    boot = rom.boot(Bytes(2048, 0xEC));
    sm = std::make_unique<SecurityMonitor>(machine, boot, SmConfig{});
    enclave = sm->create_enclave(smc_program(), 8192);
    snapshot = std::make_unique<MachineSnapshot>(
        MachineSnapshot::freeze(machine, *sm));
  }
};

struct ForkOutcome {
  std::uint32_t result = 0;       // word at 0x200
  std::uint64_t steps = 0;
  bool ecall = false;
  std::uint64_t cow_pages = 0;
  std::uint32_t code_page_version = 0;
  Bytes region;                   // full enclave region bytes after the run
};

// Fork, patch offset 0x100 with addi(x7, x0, k), run, collect outcome.
ForkOutcome run_fork(const ForkLab& lab, std::uint32_t fork_id,
                     std::int32_t k) {
  EnclaveWorld world = lab.snapshot->fork(fork_id);
  const auto& e = world.sm->enclave(lab.enclave);
  Bytes patch(4);
  store_le32(patch.data(), rv::addi(7, 0, k));
  world.machine->store(e.base + 0x100, patch, PrivMode::kMachine);
  const auto run = world.sm->run_enclave_program(lab.enclave, 1000);
  ForkOutcome out;
  out.steps = run.steps;
  out.ecall = run.trap && run.trap->cause == TrapCause::kEcall;
  const Bytes word = world.machine->load(e.base + 0x200, 4, PrivMode::kMachine);
  out.result = load_le32(word.data());
  out.cow_pages = world.machine->cow_pages_materialized();
  out.code_page_version = world.machine->page_version(e.base);
  out.region = world.machine->load(e.base, e.size, PrivMode::kMachine);
  return out;
}

TEST(ForkIsolation, FuzzedForkRunCycles) {
  ForkLab lab;
  const Bytes image_before(lab.snapshot->image().bytes);
  const std::vector<std::uint32_t> versions_before(
      lab.snapshot->image().page_versions);
  Xoshiro256 rng(0xF0DE5EED);

  constexpr int kCycles = 500;
  for (int i = 0; i < kCycles; ++i) {
    const auto k = static_cast<std::int32_t>(rng.uniform(2048));
    const ForkOutcome out =
        run_fork(lab, static_cast<std::uint32_t>(i + 1), k);
    ASSERT_TRUE(out.ecall) << "cycle " << i;
    ASSERT_EQ(out.result, static_cast<std::uint32_t>(k)) << "cycle " << i;
    // The patch touched exactly the code page (0x20 and 0x100 and 0x200
    // share page 0 of the region): one CoW materialization.
    ASSERT_EQ(out.cow_pages, 1u) << "cycle " << i;
  }
  // However many forks wrote, the frozen image never moved.
  EXPECT_EQ(lab.snapshot->image().bytes, image_before);
  EXPECT_EQ(lab.snapshot->image().page_versions, versions_before);
}

TEST(ForkIsolation, ConcurrentForksMatchSerialBitExactly) {
  ForkLab lab;
  Xoshiro256 rng(0xCAFE0);
  constexpr int kForks = 128;
  std::vector<std::int32_t> ks(kForks);
  for (auto& k : ks) k = static_cast<std::int32_t>(rng.uniform(2048));

  std::vector<ForkOutcome> serial(kForks);
  for (int i = 0; i < kForks; ++i) {
    serial[i] = run_fork(lab, static_cast<std::uint32_t>(i + 1), ks[i]);
  }
  for (int threads : {2, 7}) {
    par::ScopedThreadCount guard(threads);
    std::vector<ForkOutcome> concurrent(kForks);
    par::parallel_for(kForks, [&](std::uint64_t i) {
      concurrent[i] = run_fork(lab, static_cast<std::uint32_t>(i + 1),
                               ks[i]);
    });
    for (int i = 0; i < kForks; ++i) {
      EXPECT_EQ(concurrent[i].result, serial[i].result) << i;
      EXPECT_EQ(concurrent[i].steps, serial[i].steps) << i;
      EXPECT_EQ(concurrent[i].code_page_version,
                serial[i].code_page_version)
          << i;
      // Full-region bit-exactness: nothing any co-running fork did shows
      // through -- memories diverge only by each fork's own writes.
      EXPECT_EQ(concurrent[i].region, serial[i].region) << i;
    }
  }
}

TEST(ForkIsolation, DivergentForksShareNothingButTheImage) {
  ForkLab lab;
  const ForkOutcome a = run_fork(lab, 1, 111);
  const ForkOutcome b = run_fork(lab, 2, 999);
  EXPECT_EQ(a.result, 111u);
  EXPECT_EQ(b.result, 999u);
  // Same starting version (inherited), same bump count, different bytes.
  EXPECT_EQ(a.code_page_version, b.code_page_version);
  EXPECT_NE(a.region, b.region);
  // The regions differ exactly at the patch word, the patched insn and
  // the result word -- byte-wise, everywhere else is identical.
  ASSERT_EQ(a.region.size(), b.region.size());
  for (std::size_t off = 0; off < a.region.size(); ++off) {
    const bool may_differ = (off >= 0x20 && off < 0x24) ||
                            (off >= 0x100 && off < 0x104) ||
                            (off >= 0x200 && off < 0x204);
    if (!may_differ) {
      ASSERT_EQ(a.region[off], b.region[off]) << "offset " << off;
    }
  }
}

TEST(ForkIsolation, TriEngineLockStepOnForkedMachines) {
  ForkLab lab;
  Xoshiro256 rng(0x7E57E61);
  const Rv32Engine engines[] = {Rv32Engine::kInterpreted,
                                Rv32Engine::kDecodeCache,
                                Rv32Engine::kBytecode};
  for (int i = 0; i < 50; ++i) {
    const auto k = static_cast<std::int32_t>(rng.uniform(2048));
    ForkOutcome outs[3];
    for (int e = 0; e < 3; ++e) {
      EnclaveWorld world =
          lab.snapshot->fork(static_cast<std::uint32_t>(i * 3 + e + 1));
      world.sm->set_enclave_engine(lab.enclave, engines[e]);
      const auto& enc = world.sm->enclave(lab.enclave);
      Bytes patch(4);
      store_le32(patch.data(), rv::addi(7, 0, k));
      world.machine->store(enc.base + 0x100, patch, PrivMode::kMachine);
      const auto run = world.sm->run_enclave_program(lab.enclave, 1000);
      outs[e].steps = run.steps;
      outs[e].ecall = run.trap && run.trap->cause == TrapCause::kEcall;
      outs[e].region =
          world.machine->load(enc.base, enc.size, PrivMode::kMachine);
    }
    for (int e = 1; e < 3; ++e) {
      ASSERT_EQ(outs[e].ecall, outs[0].ecall) << "cycle " << i;
      ASSERT_EQ(outs[e].steps, outs[0].steps) << "cycle " << i;
      ASSERT_EQ(outs[e].region, outs[0].region) << "cycle " << i;
    }
  }
}

TEST(ForkIsolation, MasterKeepsRunningAfterSnapshot) {
  // Freezing is non-destructive: the master world executes after the
  // snapshot, and its divergence never leaks into (or from) the image.
  ForkLab lab;
  const auto& e = lab.sm->enclave(lab.enclave);
  Bytes patch(4);
  store_le32(patch.data(), rv::addi(7, 0, 777));
  lab.machine.store(e.base + 0x100, patch, PrivMode::kMachine);
  const auto run = lab.sm->run_enclave_program(lab.enclave, 1000);
  ASSERT_TRUE(run.trap && run.trap->cause == TrapCause::kEcall);
  const Bytes word = lab.machine.load(e.base + 0x200, 4, PrivMode::kMachine);
  EXPECT_EQ(load_le32(word.data()), 777u);
  // A fork taken from the (pre-divergence) snapshot still sees the
  // original placeholder, not the master's patch.
  const ForkOutcome fresh = run_fork(lab, 9000, 5);
  EXPECT_EQ(fresh.result, 5u);
}

}  // namespace
}  // namespace convolve::tee::service
