// Tri-engine validation: the decode-cache engine and the threaded
// bytecode engine (Rv32Cpu::run) must both be bit-identical in
// architectural state to the reference interpreter (Rv32Cpu::step /
// run_interpreted) — registers, pc, retired count, trap cause/pc/tval and
// memory — under random instruction streams (valid, mutated, and
// fusion-pattern-seeded), PMP-restricted U-mode execution, self-modifying
// code (including patches that land on the second half of a fused pair),
// PMP reprogramming between runs, step budgets that end between fused-pair
// halves, and code images that end on a non-4-byte-aligned tail.
#include "convolve/tee/rv32.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "convolve/common/rng.hpp"
#include "convolve/common/telemetry.hpp"

namespace convolve::tee {
namespace {

namespace rv = rv32asm;

constexpr std::size_t kMemBytes = 1 << 16;

// A reference machine/cpu plus one machine/cpu per fast tier, kept in
// lock-step: identical memory images, PMP programs and register files.
struct TriCpu {
  Machine ref_machine;
  Machine dc_machine;
  Machine bc_machine;
  std::unique_ptr<Rv32Cpu> ref;
  std::unique_ptr<Rv32Cpu> dc;
  std::unique_ptr<Rv32Cpu> bc;

  TriCpu(const Bytes& program, std::uint32_t load_addr, std::uint32_t entry,
         PrivMode mode, std::size_t mem_bytes = kMemBytes)
      : ref_machine(mem_bytes), dc_machine(mem_bytes), bc_machine(mem_bytes) {
    ref_machine.store(load_addr, program, PrivMode::kMachine);
    dc_machine.store(load_addr, program, PrivMode::kMachine);
    bc_machine.store(load_addr, program, PrivMode::kMachine);
    ref = std::make_unique<Rv32Cpu>(ref_machine, entry, mode);
    dc = std::make_unique<Rv32Cpu>(dc_machine, entry, mode);
    bc = std::make_unique<Rv32Cpu>(bc_machine, entry, mode);
    dc->set_engine(Rv32Engine::kDecodeCache);
    bc->set_engine(Rv32Engine::kBytecode);
  }

  void set_pmp(int index, const PmpEntry& e) {
    ref_machine.pmp().set_entry(index, e);
    dc_machine.pmp().set_entry(index, e);
    bc_machine.pmp().set_entry(index, e);
  }

  void set_reg(int index, std::uint32_t value) {
    ref->set_reg(index, value);
    dc->set_reg(index, value);
    bc->set_reg(index, value);
  }

  void store_all(std::uint32_t addr, const Bytes& data) {
    ref_machine.store(addr, data, PrivMode::kMachine);
    dc_machine.store(addr, data, PrivMode::kMachine);
    bc_machine.store(addr, data, PrivMode::kMachine);
  }

  // Run all three engines with the same step budget and assert identical
  // architectural state. Returns the (common) trap, if any.
  std::optional<Trap> run_all(std::uint64_t max_steps) {
    const auto r_ref = ref->run_interpreted(max_steps);
    const auto r_dc = dc->run(max_steps);
    const auto r_bc = bc->run(max_steps);
    compare("decode-cache", r_ref, r_dc, *dc, dc_machine);
    compare("bytecode", r_ref, r_bc, *bc, bc_machine);
    return r_ref.trap;
  }

 private:
  void compare(const char* tier, const Rv32Cpu::RunResult& r_ref,
               const Rv32Cpu::RunResult& r_fast, const Rv32Cpu& fast,
               Machine& fast_machine) {
    SCOPED_TRACE(tier);
    EXPECT_EQ(r_ref.steps, r_fast.steps);
    EXPECT_EQ(r_ref.trap.has_value(), r_fast.trap.has_value());
    if (r_ref.trap && r_fast.trap) {
      EXPECT_EQ(static_cast<int>(r_ref.trap->cause),
                static_cast<int>(r_fast.trap->cause));
      EXPECT_EQ(r_ref.trap->pc, r_fast.trap->pc);
      EXPECT_EQ(r_ref.trap->tval, r_fast.trap->tval);
    }
    EXPECT_EQ(ref->pc(), fast.pc());
    EXPECT_EQ(ref->instructions_retired(), fast.instructions_retired());
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(ref->reg(i), fast.reg(i)) << "x" << i;
    }
    const auto mem_ref = ref_machine.raw_memory();
    const auto mem_fast = fast_machine.raw_memory();
    EXPECT_TRUE(std::equal(mem_ref.begin(), mem_ref.end(), mem_fast.begin(),
                           mem_fast.end()))
        << "memory images diverged";
  }
};

// Random RV32IM instruction word generator: mostly-valid encodings with
// random fields, a slice of fully random words, a slice of fusible-pair
// idioms (so the fuzz actually drives the fused handlers and their split
// paths), and a bit-flip mutator, so legal execution, macro-op fusion and
// illegal-encoding trap paths are all exercised.
class InsnFuzzer {
 public:
  explicit InsnFuzzer(std::uint64_t seed) : rng_(seed) {}

  std::uint32_t next() {
    if (pending_) {
      const std::uint32_t second = *pending_;
      pending_.reset();
      return second;
    }
    std::uint32_t word = 0;
    switch (rng_.uniform(12)) {
      case 0: case 1: case 2: {  // R-type ALU / M (funct7 incl. reserved)
        const std::uint32_t funct7s[] = {0, 0, 0x20, 0x01, 0x05, 0x40};
        word = r_type(funct7s[rng_.uniform(6)], reg(), reg(),
                      static_cast<std::uint32_t>(rng_.uniform(8)), reg(),
                      0x33);
        break;
      }
      case 3: case 4:  // OP-IMM
        word = i_type(imm12(), reg(),
                      static_cast<std::uint32_t>(rng_.uniform(8)), reg(),
                      0x13);
        break;
      case 5:  // loads through the data pointers x1/x2
        word = i_type(static_cast<std::int32_t>(rng_.uniform(256)), base_reg(),
                      static_cast<std::uint32_t>(rng_.uniform(8)), reg(),
                      0x03);
        break;
      case 6: {  // stores through the data pointers
        const std::int32_t off = static_cast<std::int32_t>(rng_.uniform(256));
        const std::uint32_t f3 = static_cast<std::uint32_t>(rng_.uniform(4));
        const std::uint32_t u = static_cast<std::uint32_t>(off) & 0xfff;
        word = ((u >> 5) << 25) | (static_cast<std::uint32_t>(reg()) << 20) |
               (static_cast<std::uint32_t>(base_reg()) << 15) | (f3 << 12) |
               ((u & 0x1f) << 7) | 0x23;
        break;
      }
      case 7: {  // short forward/backward branches (stay within stream)
        const std::int32_t off =
            4 * (static_cast<std::int32_t>(rng_.uniform(8)) - 3);
        const std::uint32_t f3s[] = {0, 1, 4, 5, 6, 7, 2, 3};  // 2,3 illegal
        word = b_type(off == 0 ? 4 : off, reg(), reg(),
                      f3s[rng_.uniform(8)]);
        break;
      }
      case 8:  // LUI/AUIPC
        word = (static_cast<std::uint32_t>(rng_.uniform(1 << 20)) << 12) |
               (static_cast<std::uint32_t>(reg()) << 7) |
               (rng_.next_bit() ? 0x37u : 0x17u);
        break;
      case 9: case 10:  // fusible-pair idioms (second word queued)
        word = fusion_pair();
        break;
      default:  // raw random word (usually illegal)
        word = static_cast<std::uint32_t>(rng_.next_u64());
        break;
    }
    if (rng_.uniform(5) == 0) word ^= 1u << rng_.uniform(32);  // mutate
    return word;
  }

 private:
  // Emit the first word of a fused-pair idiom and queue the second. The
  // register fields are random, so a slice of these pairs deliberately
  // violates the fusion preconditions (rd == x0, rd aliasing rs1, second
  // addi not a self-update, ...) and must be rejected by the recognizer
  // yet still execute identically.
  std::uint32_t fusion_pair() {
    namespace rv = rv32asm;
    const int a = reg(), b = reg(), c = reg(), d = reg();
    const int sh1 = static_cast<int>(rng_.uniform(32));
    const int sh2 = static_cast<int>(rng_.uniform(32));
    const std::int32_t k1 = imm12(), k2 = imm12();
    switch (rng_.uniform(8)) {
      case 0:
        pending_ = rv::addi(b, a, k2);
        return rv::lui(a, static_cast<std::uint32_t>(rng_.uniform(1 << 20)));
      case 1:  // pc-relative load via the data window
        pending_ = rv::lw(b, a, static_cast<std::int32_t>(rng_.uniform(64)));
        return rv::auipc(a, rng_.next_bit() ? 2u : 1u);
      case 2:
        pending_ = rv::srli(c, b, sh2);
        return rv::slli(a, b, sh1);
      case 3:
        pending_ = rv::slli(c, b, sh2);
        return rv::srli(a, b, sh1);
      case 4:
        pending_ = rv::addi(b, b, k2);
        return rv::addi(a, c, k1);
      case 5:
        pending_ = rv::xor_(d, a, c);
        return rv::or_(a, b, c);
      case 6:
        pending_ = rv::xori(d, a, k2);
        return rv::or_(a, b, c);
      default: {
        const std::uint32_t cmp =
            rng_.next_bit() ? rv::slti(a, b, k1) : rv::sltu(a, b, c);
        pending_ = rng_.next_bit() ? rv::bne(a, 0, 8) : rv::beq(0, a, -4);
        return cmp;
      }
    }
  }

  int reg() { return static_cast<int>(rng_.uniform(32)); }
  int base_reg() { return rng_.next_bit() ? 1 : 2; }
  std::int32_t imm12() {
    return static_cast<std::int32_t>(rng_.uniform(4096)) - 2048;
  }
  static std::uint32_t r_type(std::uint32_t funct7, int rs2, int rs1,
                              std::uint32_t funct3, int rd,
                              std::uint32_t opcode) {
    return (funct7 << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
           (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
           (static_cast<std::uint32_t>(rd) << 7) | opcode;
  }
  static std::uint32_t i_type(std::int32_t imm, int rs1, std::uint32_t funct3,
                              int rd, std::uint32_t opcode) {
    return (static_cast<std::uint32_t>(imm & 0xfff) << 20) |
           (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
           (static_cast<std::uint32_t>(rd) << 7) | opcode;
  }
  static std::uint32_t b_type(std::int32_t offset, int rs1, int rs2,
                              std::uint32_t funct3) {
    const std::uint32_t u = static_cast<std::uint32_t>(offset);
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
           (static_cast<std::uint32_t>(rs2) << 20) |
           (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
           (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | 0x63;
  }

  Xoshiro256 rng_;
  std::optional<std::uint32_t> pending_;
};

// --- Differential fuzz matrix (tentpole acceptance: >= 1k programs) ----

TEST(Rv32Engine, DifferentialFuzzMachineMode) {
  Xoshiro256 seeds(0xF00DCAFEu);
  for (int stream = 0; stream < 700; ++stream) {
    SCOPED_TRACE(stream);
    InsnFuzzer fuzz(seeds.next_u64());
    std::vector<std::uint32_t> program;
    for (int i = 0; i < 64; ++i) program.push_back(fuzz.next());
    program.push_back(rv::ebreak());

    TriCpu t(rv::assemble(program), 0x1000, 0x1000, PrivMode::kMachine);
    t.set_reg(1, 0x3000);  // data pointers for the load/store slices
    t.set_reg(2, 0x3800);
    // Resume across resumable traps so streams with early ecalls still
    // exercise deep instruction counts.
    for (int resumes = 0; resumes < 4; ++resumes) {
      const auto trap = t.run_all(400);
      if (!trap || (trap->cause != TrapCause::kEcall &&
                    trap->cause != TrapCause::kEbreak)) {
        break;
      }
    }
    if (::testing::Test::HasFailure()) break;  // first divergence is enough
  }
}

TEST(Rv32Engine, DifferentialFuzzUserModeUnderPmp) {
  Xoshiro256 seeds(0xBADF00Du);
  for (int stream = 0; stream < 400; ++stream) {
    SCOPED_TRACE(stream);
    InsnFuzzer fuzz(seeds.next_u64());
    std::vector<std::uint32_t> program;
    for (int i = 0; i < 48; ++i) program.push_back(fuzz.next());
    program.push_back(rv::ebreak());

    TriCpu t(rv::assemble(program), 0x1000, 0x1000, PrivMode::kUser);
    // U-mode window [0x1000, 0x4000) RWX; x2 points outside it so a slice
    // of the loads/stores hits the PMP deny path.
    PmpEntry e;
    e.mode = PmpAddressMode::kNapot;
    e.address = PmpUnit::encode_napot(0, 0x4000);
    e.read = e.write = e.execute = true;
    t.set_pmp(0, e);
    t.set_reg(1, 0x3000);
    t.set_reg(2, 0x8000);  // outside the PMP window: faults
    t.run_all(400);
    if (::testing::Test::HasFailure()) break;
  }
}

// --- Trap-attribution parity (directed) --------------------------------

TEST(Rv32Engine, BranchToMisalignedTargetTrapsAtTarget) {
  // Taken branch to pc+6: the branch itself retires, the trap is deferred
  // to the next fetch and attributed to the (misaligned) target address.
  TriCpu t(rv::assemble({rv::beq(0, 0, 6), rv::ebreak()}), 0x1000, 0x1000,
           PrivMode::kMachine);
  const auto trap = t.run_all(10);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kMisalignedFetch);
  EXPECT_EQ(trap->pc, 0x1006u);
  EXPECT_EQ(t.bc->instructions_retired(), 1u);
}

TEST(Rv32Engine, JalToMisalignedTargetTrapsAtTarget) {
  TriCpu t(rv::assemble({rv::jal(1, 6), rv::ebreak()}), 0x1000, 0x1000,
           PrivMode::kMachine);
  const auto trap = t.run_all(10);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kMisalignedFetch);
  EXPECT_EQ(trap->pc, 0x1006u);
  EXPECT_EQ(t.bc->reg(1), 0x1004u);  // link register still written
}

TEST(Rv32Engine, JalrClearsBit0ButTrapsOnBit1) {
  // JALR zeroes bit 0 of the computed target (spec) but bit 1 survives
  // and must produce a misaligned-fetch trap attributed to the target.
  TriCpu t(rv::assemble({rv::jalr(5, 6, 0), rv::ebreak()}), 0x1000, 0x1000,
           PrivMode::kMachine);
  t.set_reg(6, 0x1007);  // target = 0x1007 & ~1 = 0x1006
  const auto trap = t.run_all(10);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kMisalignedFetch);
  EXPECT_EQ(trap->pc, 0x1006u);
  EXPECT_EQ(t.bc->reg(5), 0x1004u);
}

TEST(Rv32Engine, JalrWithRdEqualRs1UsesOldValueForTarget) {
  // jalr x1, x1, 0x20: the target must be computed from the OLD x1 before
  // the link address overwrites it.
  std::vector<std::uint32_t> program(16, rv::nop());
  program[0] = rv::jalr(1, 1, 0x20);
  program[8] = rv::ebreak();  // 0x1000 + 0x20
  TriCpu t(rv::assemble(program), 0x1000, 0x1000, PrivMode::kMachine);
  t.set_reg(1, 0x1000);
  const auto trap = t.run_all(10);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(trap->pc, 0x1020u);
  EXPECT_EQ(t.bc->reg(1), 0x1004u);
}

// --- Fused-pair semantics (directed) -----------------------------------

TEST(Rv32Engine, FusedLuiAddiVariants) {
  // Distinct destination, aliasing destination (addi rd == lui rd), and
  // discarded second destination (addi rd == x0) — all must match the
  // two-instruction reference exactly.
  TriCpu t(rv::assemble({
               rv::lui(1, 0x12345), rv::addi(2, 1, 0x678),   // x2 = 12345678
               rv::lui(3, 0x0dead), rv::addi(3, 3, -0x111),  // alias rd
               rv::lui(4, 0x0beef), rv::addi(0, 4, 0x0ff),   // rd2 == x0
               rv::ebreak(),
           }),
           0x1000, 0x1000, PrivMode::kMachine);
  const auto trap = t.run_all(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(t.bc->reg(2), 0x12345678u);
  EXPECT_EQ(t.bc->reg(3), 0x0deacEEFu);
  EXPECT_EQ(t.bc->reg(0), 0u);
  EXPECT_EQ(t.bc->instructions_retired(), 7u);
}

TEST(Rv32Engine, FusedAuipcLwFaultAttributesSecondComponent) {
  // auipc x1 commits and retires; the fused lw faults. The trap must name
  // the lw's pc (pair pc + 4) and the faulting data address, and the step
  // count must include the faulting attempt.
  TriCpu t(rv::assemble({rv::auipc(1, 0x20), rv::lw(2, 1, 0), rv::ebreak()}),
           0x1000, 0x1000, PrivMode::kMachine);
  const auto trap = t.run_all(10);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kLoadAccessFault);
  EXPECT_EQ(trap->pc, 0x1004u);
  EXPECT_EQ(trap->tval, 0x21000u);       // beyond the 64 KB machine
  EXPECT_EQ(t.bc->reg(1), 0x21000u);     // first component committed
  EXPECT_EQ(t.bc->instructions_retired(), 1u);
}

TEST(Rv32Engine, FusedCmpBranchTakenNotTakenAndMisaligned) {
  // slti+bnez taken and not-taken legs, then a fused pair whose branch
  // target is misaligned: the pair retires and the trap lands on the
  // target address, exactly like the unfused reference.
  TriCpu t(rv::assemble({
               rv::slti(1, 0, 1),   // x1 = (0 < 1) = 1
               rv::bne(1, 0, 12),   // taken -> 0x1010
               rv::ebreak(),        // skipped
               rv::ebreak(),        // skipped
               rv::slti(2, 0, 0),   // 0x1010: x2 = 0
               rv::bne(2, 0, 8),    // not taken
               rv::slti(3, 0, 1),   // 0x1018: x3 = 1
               rv::bne(3, 0, 6),    // taken -> 0x1022 (misaligned)
               rv::ebreak(),
           }),
           0x1000, 0x1000, PrivMode::kMachine);
  const auto trap = t.run_all(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kMisalignedFetch);
  EXPECT_EQ(trap->pc, 0x1022u);
  EXPECT_EQ(t.bc->reg(1), 1u);
  EXPECT_EQ(t.bc->reg(2), 0u);
  EXPECT_EQ(t.bc->reg(3), 1u);
}

TEST(Rv32Engine, FusedPairSplitAtBudgetBoundary) {
  // An odd step budget that expires between the two halves of a fused
  // pair: the engine must retire exactly the first half and leave pc on
  // the second component, like the single-stepping reference.
  std::vector<std::uint32_t> program;
  for (int i = 0; i < 8; ++i) {
    program.push_back(rv::slli(1, 8, 3));
    program.push_back(rv::srli(2, 8, 29));
  }
  program.push_back(rv::ebreak());
  TriCpu t(rv::assemble(program), 0x1000, 0x1000, PrivMode::kMachine);
  t.set_reg(8, 0x80000001u);
  t.run_all(5);  // ends after the first half of the third pair
  EXPECT_EQ(t.bc->pc(), 0x1014u);
  EXPECT_EQ(t.bc->instructions_retired(), 5u);
  t.run_all(100);  // resume mid-pair and finish
  EXPECT_EQ(t.bc->reg(1), 0x80000001u << 3);
  EXPECT_EQ(t.bc->reg(2), 0x80000001u >> 29);
}

TEST(Rv32Engine, SmcPatchesSecondHalfOfFusedPair) {
  // The loop executes a fused lui+addi pair, then stores a new addi word
  // over the pair's second half (bumping the page version mid-run) and
  // re-executes it: the engine must re-decode and apply the patched
  // immediate instead of replaying the stale fused pair.
  TriCpu t(rv::assemble({
               rv::auipc(1, 0),       // 0x1000: x1 = 0x1000
               rv::lw(3, 1, 0x100),   // 0x1004: x3 = patch word
               rv::jal(0, 0x28),      // 0x1008: -> 0x1030
               rv::nop(), rv::nop(), rv::nop(), rv::nop(),
               rv::nop(), rv::nop(), rv::nop(), rv::nop(), rv::nop(),
               rv::lui(5, 1),         // 0x1030: fused pair, first half
               rv::addi(6, 5, 0x100), // 0x1034: patched to addi(6,5,0x200)
               rv::bne(7, 0, 0x10),   // 0x1038: second pass -> 0x1048
               rv::addi(7, 0, 1),     // 0x103c
               rv::sw(3, 1, 0x34),    // 0x1040: patch [0x1034]
               rv::jal(0, -0x14),     // 0x1044: -> 0x1030
               rv::ebreak(),          // 0x1048
           }),
           0x1000, 0x1000, PrivMode::kMachine);
  t.store_all(0x1100, rv::assemble({rv::addi(6, 5, 0x200)}));
  const auto trap = t.run_all(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(t.bc->reg(6), 0x1200u);  // patched immediate, not 0x1100
}

TEST(Rv32Engine, FusiblePairAtPageEdgeIsNotFused) {
  // lui at 0x1ffc and addi at 0x2000 sit in different decoded pages, so
  // the pair must execute unfused (no cross-page fusion) and still match.
#if CONVOLVE_TELEMETRY_ENABLED
  const std::uint64_t emitted0 =
      telemetry::snapshot().counter_value("rv32.fusion.emitted");
#endif
  {
    TriCpu t(rv::assemble({
                 rv::addi(3, 0, 7),      // 0x1ff8
                 rv::lui(1, 0x12345),    // 0x1ffc: last slot of page 0x1000
                 rv::addi(2, 1, 0x678),  // 0x2000: first slot of page 0x2000
                 rv::ebreak(),           // 0x2004
             }),
             0x1ff8, 0x1ff8, PrivMode::kMachine);
    const auto trap = t.run_all(100);
    ASSERT_TRUE(trap.has_value());
    EXPECT_EQ(trap->cause, TrapCause::kEbreak);
    EXPECT_EQ(t.bc->reg(2), 0x12345678u);
    t.bc->flush_telemetry();
  }
#if CONVOLVE_TELEMETRY_ENABLED
  const std::uint64_t emitted1 =
      telemetry::snapshot().counter_value("rv32.fusion.emitted");
  EXPECT_EQ(emitted1, emitted0) << "pair straddling the page edge was fused";
#endif
}

TEST(Rv32Engine, PmpExecuteWindowEndsBetweenFusedPairHalves) {
  // U-mode execute permission covers [0x1000, 0x1800). The pair halves at
  // 0x17fc / 0x1800 share a decoded page (so they fuse at decode time),
  // but the second fetch is outside the window: the first half must
  // commit and retire, and the trap must name 0x1800.
  std::vector<std::uint32_t> program(513, rv::nop());  // 0x17f8..0x2000
  program[0] = rv::addi(3, 0, 9);      // 0x17f8
  program[1] = rv::lui(1, 2);          // 0x17fc
  program[2] = rv::addi(2, 1, 4);      // 0x1800 (outside exec window)
  TriCpu t(rv::assemble(program), 0x17f8, 0x17f8, PrivMode::kUser);
  PmpEntry code;
  code.mode = PmpAddressMode::kNapot;
  code.address = PmpUnit::encode_napot(0x1000, 0x800);
  code.read = code.write = code.execute = true;
  t.set_pmp(0, code);
  const auto trap = t.run_all(10);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kInstructionAccessFault);
  EXPECT_EQ(trap->pc, 0x1800u);
  EXPECT_EQ(t.bc->reg(1), 0x2000u);  // lui committed
  EXPECT_EQ(t.bc->instructions_retired(), 2u);
}

TEST(Rv32Engine, FusedAndUnfusedRetireIdenticalCounts) {
  // The Keccak-style rotate/mix loop is fusion-dense; retired counts and
  // state must match the reference exactly, and (telemetry builds) the
  // bytecode tier must actually have executed fused pairs.
#if CONVOLVE_TELEMETRY_ENABLED
  const std::uint64_t fused0 =
      telemetry::snapshot().counter_value("rv32.fusion.pairs");
#endif
  {
    TriCpu t(rv::assemble({
                 rv::addi(4, 0, 100),    // loop counter
                 rv::slli(1, 8, 7),      // 0x1004: rotate halves
                 rv::srli(2, 8, 25),
                 rv::or_(3, 1, 2),       // combine
                 rv::xori(8, 3, 0x55),   // mix back into source
                 rv::addi(4, 4, -1),
                 rv::bne(4, 0, -20),     // -> 0x1004
                 rv::ebreak(),
             }),
             0x1000, 0x1000, PrivMode::kMachine);
    t.set_reg(8, 0xdeadbeefu);
    const auto trap = t.run_all(10000);
    ASSERT_TRUE(trap.has_value());
    EXPECT_EQ(trap->cause, TrapCause::kEbreak);
    EXPECT_EQ(t.bc->instructions_retired(), t.ref->instructions_retired());
    t.bc->flush_telemetry();
  }
#if CONVOLVE_TELEMETRY_ENABLED
  const std::uint64_t fused1 =
      telemetry::snapshot().counter_value("rv32.fusion.pairs");
  EXPECT_GT(fused1, fused0) << "bytecode tier executed no fused pairs";
#endif
}

// --- Decode-cache associativity (directed regression) ------------------

TEST(Rv32Engine, AliasingPagesCoexistInTwoWaySet) {
  // Pages 0x1000 and 0x9000 map to the same cache set (8 sets x 4 KB).
  // A call loop ping-ponging between them must decode each page exactly
  // once — the direct-mapped cache this regression pins against evicted
  // on every transfer and re-decoded ~2N times.
  Machine m(kMemBytes);
  m.store(0x1000,
          rv::assemble({
              rv::addi(5, 5, -1),   // 0x1000
              rv::jal(1, 0x7ffc),   // 0x1004: -> 0x9000
              rv::bne(5, 0, -8),    // 0x1008: -> 0x1000
              rv::ebreak(),         // 0x100c
          }),
          PrivMode::kMachine);
  m.store(0x9000, rv::assemble({rv::jalr(0, 1, 0)}), PrivMode::kMachine);
#if CONVOLVE_TELEMETRY_ENABLED
  const std::uint64_t misses0 =
      telemetry::snapshot().counter_value("rv32.decode_cache.misses");
#endif
  Rv32Cpu cpu(m, 0x1000, PrivMode::kMachine);
  cpu.set_reg(5, 50);
  const auto result = cpu.run(10000);
  ASSERT_TRUE(result.trap.has_value());
  EXPECT_EQ(result.trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(cpu.reg(5), 0u);
  cpu.flush_telemetry();
#if CONVOLVE_TELEMETRY_ENABLED
  const std::uint64_t misses1 =
      telemetry::snapshot().counter_value("rv32.decode_cache.misses");
  EXPECT_EQ(misses1 - misses0, 2u)
      << "aliasing pages should decode once each, not ping-pong";
#endif
}

// --- Non-4-byte-aligned memory tail ------------------------------------

TEST(Rv32Engine, TruncatedTailWordFaultsNotDecodes) {
  // A machine whose memory ends mid-instruction (0x1806 bytes): executing
  // into the 2-byte tail must raise an access fault on every tier, never
  // decode a partial word.
  TriCpu t(rv::assemble({rv::addi(1, 1, 1)}), 0x1800, 0x1800,
           PrivMode::kMachine, 0x1806);
  const auto trap = t.run_all(10);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kInstructionAccessFault);
  EXPECT_EQ(trap->pc, 0x1804u);
  EXPECT_EQ(t.bc->reg(1), 1u);
  EXPECT_EQ(t.bc->instructions_retired(), 1u);
}

TEST(Rv32Engine, DefaultDecodedSlotsTrapIllegal) {
  // The filler slots past a truncated tail are default-constructed; both
  // decoded representations must denote an illegal instruction so a
  // stray fetch into them traps instead of executing garbage.
  EXPECT_EQ(DecodedInsn{}.kind, OpKind::kIllegal);
  EXPECT_EQ(BcOp{}.handler, static_cast<std::uint8_t>(BcHandler::kIllegal));
}

// --- Carried-over engine/system tests ----------------------------------

TEST(Rv32Engine, SelfModifyingCodeInvalidatesDecodeCache) {
  // The program patches a nop four instructions ahead with
  // `addi x5, x0, 42` and then executes it: the fast engines must detect
  // the store to the executable page and re-decode instead of running
  // the stale cached nop.
  const std::uint32_t patch = rv::addi(5, 0, 42);
  ASSERT_EQ(patch, 0x02a00293u);
  TriCpu t(rv::assemble({
               rv::auipc(1, 0),          // 0x1000: x1 = 0x1000
               rv::lui(3, 0x02a00),      // 0x1004: x3 = patch word
               rv::addi(3, 3, 0x293),    // 0x1008
               rv::sw(3, 1, 0x14),       // 0x100c: patch [0x1014]
               rv::nop(),                // 0x1010
               rv::nop(),                // 0x1014 <- becomes addi x5,x0,42
               rv::ebreak(),             // 0x1018
           }),
           0x1000, 0x1000, PrivMode::kMachine);
  const auto trap = t.run_all(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(t.bc->reg(5), 42u);
}

TEST(Rv32Engine, ExecutionAcrossPageBoundary) {
  // A straight-line program whose body crosses the 0x2000 page boundary:
  // the fast engines must chain decoded pages without losing state.
  std::vector<std::uint32_t> program;
  for (int i = 0; i < 8; ++i) program.push_back(rv::addi(6, 6, 1));
  program.push_back(rv::ebreak());
  TriCpu t(rv::assemble(program), 0x1fe8, 0x1fe8, PrivMode::kMachine);
  const auto trap = t.run_all(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(t.bc->reg(6), 8u);
}

TEST(Rv32Engine, PmpReprogramBetweenRunsIsRespected) {
  // The memoized PMP windows are keyed by the PMP epoch: revoking execute
  // permission between run() calls must fault the very next fetch.
  TriCpu t(rv::assemble({rv::addi(1, 1, 1), rv::ecall(),
                         rv::addi(1, 1, 1), rv::ebreak()}),
           0x1000, 0x1000, PrivMode::kUser);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x1000, 0x1000);
  e.read = e.write = e.execute = true;
  t.set_pmp(0, e);

  auto trap = t.run_all(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEcall);

  e.execute = false;  // revoke X, keep RW
  t.set_pmp(0, e);
  trap = t.run_all(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kInstructionAccessFault);
  EXPECT_EQ(trap->pc, 0x1008u);
}

TEST(Rv32Engine, MemoizedDataWindowInvalidatedOnReprogram) {
  // Load succeeds through the memoized read window, then read permission
  // is revoked: the next load must fault, not hit a stale memo.
  TriCpu t(rv::assemble({rv::lw(3, 1, 0), rv::ecall(),
                         rv::lw(4, 1, 0), rv::ebreak()}),
           0x1000, 0x1000, PrivMode::kUser);
  PmpEntry code;
  code.mode = PmpAddressMode::kNapot;
  code.address = PmpUnit::encode_napot(0x1000, 0x1000);
  code.read = code.write = code.execute = true;
  PmpEntry data;
  data.mode = PmpAddressMode::kNapot;
  data.address = PmpUnit::encode_napot(0x3000, 0x1000);
  data.read = true;
  t.set_pmp(0, code);
  t.set_pmp(1, data);
  t.set_reg(1, 0x3000);

  auto trap = t.run_all(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEcall);

  data.read = false;
  t.set_pmp(1, data);
  trap = t.run_all(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kLoadAccessFault);
  EXPECT_EQ(trap->tval, 0x3000u);
}

TEST(Rv32Engine, FastEnginesMatchLegacyOnStructuredLoop) {
  // The memcpy-style loop from the interpreter suite, with byte-level
  // loads/stores: identical final state on all engines.
  const auto program = rv::assemble({
      rv::lui(1, 0x3), rv::lui(2, 0x3), rv::addi(2, 2, 0x7ff),
      rv::addi(2, 2, 1), rv::addi(3, 0, 64),
      rv::lbu(4, 1, 0), rv::sb(4, 2, 0), rv::addi(1, 1, 1),
      rv::addi(2, 2, 1), rv::addi(3, 3, -1), rv::bne(3, 0, -20),
      rv::ebreak(),
  });
  TriCpu t(program, 0x1000, 0x1000, PrivMode::kMachine);
  Bytes src(64);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  t.store_all(0x3000, src);
  const auto trap = t.run_all(10000);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(t.bc_machine.load(0x3800, 64, PrivMode::kMachine), src);
}

}  // namespace
}  // namespace convolve::tee
