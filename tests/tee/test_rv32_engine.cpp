// Fast-engine validation: the decode-cache engine (Rv32Cpu::run) must be
// bit-identical in architectural state to the reference interpreter
// (Rv32Cpu::step / run_interpreted) — registers, pc, retired count, trap
// cause/pc/tval and memory — under random instruction streams (valid and
// mutated), PMP-restricted U-mode execution, self-modifying code, and PMP
// reprogramming between runs.
#include "convolve/tee/rv32.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "convolve/common/rng.hpp"

namespace convolve::tee {
namespace {

namespace rv = rv32asm;

constexpr std::size_t kMemBytes = 1 << 16;

// A reference machine/cpu and a fast machine/cpu kept in lock-step:
// identical memory images, PMP programs and register files.
struct DualCpu {
  Machine ref_machine{kMemBytes};
  Machine fast_machine{kMemBytes};
  std::unique_ptr<Rv32Cpu> ref;
  std::unique_ptr<Rv32Cpu> fast;

  DualCpu(const Bytes& program, std::uint32_t load_addr, std::uint32_t entry,
          PrivMode mode) {
    ref_machine.store(load_addr, program, PrivMode::kMachine);
    fast_machine.store(load_addr, program, PrivMode::kMachine);
    ref = std::make_unique<Rv32Cpu>(ref_machine, entry, mode);
    fast = std::make_unique<Rv32Cpu>(fast_machine, entry, mode);
  }

  void set_pmp(int index, const PmpEntry& e) {
    ref_machine.pmp().set_entry(index, e);
    fast_machine.pmp().set_entry(index, e);
  }

  void set_reg(int index, std::uint32_t value) {
    ref->set_reg(index, value);
    fast->set_reg(index, value);
  }

  // Run both engines with the same step budget and assert identical
  // architectural state. Returns the (common) trap, if any.
  std::optional<Trap> run_both(std::uint64_t max_steps) {
    const auto r_ref = ref->run_interpreted(max_steps);
    const auto r_fast = fast->run(max_steps);
    EXPECT_EQ(r_ref.steps, r_fast.steps);
    EXPECT_EQ(r_ref.trap.has_value(), r_fast.trap.has_value());
    if (r_ref.trap && r_fast.trap) {
      EXPECT_EQ(static_cast<int>(r_ref.trap->cause),
                static_cast<int>(r_fast.trap->cause));
      EXPECT_EQ(r_ref.trap->pc, r_fast.trap->pc);
      EXPECT_EQ(r_ref.trap->tval, r_fast.trap->tval);
    }
    EXPECT_EQ(ref->pc(), fast->pc());
    EXPECT_EQ(ref->instructions_retired(), fast->instructions_retired());
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(ref->reg(i), fast->reg(i)) << "x" << i;
    }
    const auto mem_ref = ref_machine.raw_memory();
    const auto mem_fast = fast_machine.raw_memory();
    EXPECT_TRUE(std::equal(mem_ref.begin(), mem_ref.end(), mem_fast.begin(),
                           mem_fast.end()))
        << "memory images diverged";
    return r_ref.trap;
  }
};

// Random RV32IM instruction word generator: mostly-valid encodings with
// random fields, a slice of fully random words, and a bit-flip mutator,
// so both legal execution and illegal-encoding trap paths are exercised.
class InsnFuzzer {
 public:
  explicit InsnFuzzer(std::uint64_t seed) : rng_(seed) {}

  std::uint32_t next() {
    std::uint32_t word = 0;
    switch (rng_.uniform(10)) {
      case 0: case 1: case 2: {  // R-type ALU / M (funct7 incl. reserved)
        const std::uint32_t funct7s[] = {0, 0, 0x20, 0x01, 0x05, 0x40};
        word = r_type(funct7s[rng_.uniform(6)], reg(), reg(),
                      static_cast<std::uint32_t>(rng_.uniform(8)), reg(),
                      0x33);
        break;
      }
      case 3: case 4:  // OP-IMM
        word = i_type(imm12(), reg(),
                      static_cast<std::uint32_t>(rng_.uniform(8)), reg(),
                      0x13);
        break;
      case 5:  // loads through the data pointers x1/x2
        word = i_type(static_cast<std::int32_t>(rng_.uniform(256)), base_reg(),
                      static_cast<std::uint32_t>(rng_.uniform(8)), reg(),
                      0x03);
        break;
      case 6: {  // stores through the data pointers
        const std::int32_t off = static_cast<std::int32_t>(rng_.uniform(256));
        const std::uint32_t f3 = static_cast<std::uint32_t>(rng_.uniform(4));
        const std::uint32_t u = static_cast<std::uint32_t>(off) & 0xfff;
        word = ((u >> 5) << 25) | (static_cast<std::uint32_t>(reg()) << 20) |
               (static_cast<std::uint32_t>(base_reg()) << 15) | (f3 << 12) |
               ((u & 0x1f) << 7) | 0x23;
        break;
      }
      case 7: {  // short forward/backward branches (stay within stream)
        const std::int32_t off =
            4 * (static_cast<std::int32_t>(rng_.uniform(8)) - 3);
        const std::uint32_t f3s[] = {0, 1, 4, 5, 6, 7, 2, 3};  // 2,3 illegal
        word = b_type(off == 0 ? 4 : off, reg(), reg(),
                      f3s[rng_.uniform(8)]);
        break;
      }
      case 8:  // LUI/AUIPC
        word = (static_cast<std::uint32_t>(rng_.uniform(1 << 20)) << 12) |
               (static_cast<std::uint32_t>(reg()) << 7) |
               (rng_.next_bit() ? 0x37u : 0x17u);
        break;
      default:  // raw random word (usually illegal)
        word = static_cast<std::uint32_t>(rng_.next_u64());
        break;
    }
    if (rng_.uniform(5) == 0) word ^= 1u << rng_.uniform(32);  // mutate
    return word;
  }

 private:
  int reg() { return static_cast<int>(rng_.uniform(32)); }
  int base_reg() { return rng_.next_bit() ? 1 : 2; }
  std::int32_t imm12() {
    return static_cast<std::int32_t>(rng_.uniform(4096)) - 2048;
  }
  static std::uint32_t r_type(std::uint32_t funct7, int rs2, int rs1,
                              std::uint32_t funct3, int rd,
                              std::uint32_t opcode) {
    return (funct7 << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
           (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
           (static_cast<std::uint32_t>(rd) << 7) | opcode;
  }
  static std::uint32_t i_type(std::int32_t imm, int rs1, std::uint32_t funct3,
                              int rd, std::uint32_t opcode) {
    return (static_cast<std::uint32_t>(imm & 0xfff) << 20) |
           (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
           (static_cast<std::uint32_t>(rd) << 7) | opcode;
  }
  static std::uint32_t b_type(std::int32_t offset, int rs1, int rs2,
                              std::uint32_t funct3) {
    const std::uint32_t u = static_cast<std::uint32_t>(offset);
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
           (static_cast<std::uint32_t>(rs2) << 20) |
           (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
           (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | 0x63;
  }

  Xoshiro256 rng_;
};

TEST(Rv32Engine, DifferentialFuzzMachineMode) {
  Xoshiro256 seeds(0xF00DCAFEu);
  for (int stream = 0; stream < 150; ++stream) {
    SCOPED_TRACE(stream);
    InsnFuzzer fuzz(seeds.next_u64());
    std::vector<std::uint32_t> program;
    for (int i = 0; i < 64; ++i) program.push_back(fuzz.next());
    program.push_back(rv::ebreak());

    DualCpu d(rv::assemble(program), 0x1000, 0x1000, PrivMode::kMachine);
    d.set_reg(1, 0x3000);  // data pointers for the load/store slices
    d.set_reg(2, 0x3800);
    // Resume across resumable traps so streams with early ecalls still
    // exercise deep instruction counts.
    for (int resumes = 0; resumes < 4; ++resumes) {
      const auto trap = d.run_both(400);
      if (!trap || (trap->cause != TrapCause::kEcall &&
                    trap->cause != TrapCause::kEbreak)) {
        break;
      }
    }
    if (::testing::Test::HasFailure()) break;  // first divergence is enough
  }
}

TEST(Rv32Engine, DifferentialFuzzUserModeUnderPmp) {
  Xoshiro256 seeds(0xBADF00Du);
  for (int stream = 0; stream < 100; ++stream) {
    SCOPED_TRACE(stream);
    InsnFuzzer fuzz(seeds.next_u64());
    std::vector<std::uint32_t> program;
    for (int i = 0; i < 48; ++i) program.push_back(fuzz.next());
    program.push_back(rv::ebreak());

    DualCpu d(rv::assemble(program), 0x1000, 0x1000, PrivMode::kUser);
    // U-mode window [0x1000, 0x4000) RWX; x2 points outside it so a slice
    // of the loads/stores hits the PMP deny path.
    PmpEntry e;
    e.mode = PmpAddressMode::kNapot;
    e.address = PmpUnit::encode_napot(0, 0x4000);
    e.read = e.write = e.execute = true;
    d.set_pmp(0, e);
    d.set_reg(1, 0x3000);
    d.set_reg(2, 0x8000);  // outside the PMP window: faults
    d.run_both(400);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(Rv32Engine, SelfModifyingCodeInvalidatesDecodeCache) {
  // The program patches a nop four instructions ahead with
  // `addi x5, x0, 42` and then executes it: the fast engine must detect
  // the store to the executable page and re-decode instead of running
  // the stale cached nop.
  const std::uint32_t patch = rv::addi(5, 0, 42);
  ASSERT_EQ(patch, 0x02a00293u);
  DualCpu d(rv::assemble({
                rv::auipc(1, 0),          // 0x1000: x1 = 0x1000
                rv::lui(3, 0x02a00),      // 0x1004: x3 = patch word
                rv::addi(3, 3, 0x293),    // 0x1008
                rv::sw(3, 1, 0x14),       // 0x100c: patch [0x1014]
                rv::nop(),                // 0x1010
                rv::nop(),                // 0x1014 <- becomes addi x5,x0,42
                rv::ebreak(),             // 0x1018
            }),
            0x1000, 0x1000, PrivMode::kMachine);
  // Warm the decode cache with the pre-patch page image first.
  const auto trap = d.run_both(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(d.fast->reg(5), 42u);
}

TEST(Rv32Engine, ExecutionAcrossPageBoundary) {
  // A straight-line program whose body crosses the 0x2000 page boundary:
  // the fast engine must chain decoded pages without losing state.
  std::vector<std::uint32_t> program;
  for (int i = 0; i < 8; ++i) program.push_back(rv::addi(6, 6, 1));
  program.push_back(rv::ebreak());
  DualCpu d(rv::assemble(program), 0x1fe8, 0x1fe8, PrivMode::kMachine);
  const auto trap = d.run_both(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(d.fast->reg(6), 8u);
}

TEST(Rv32Engine, PmpReprogramBetweenRunsIsRespected) {
  // The memoized PMP windows are keyed by the PMP epoch: revoking execute
  // permission between run() calls must fault the very next fetch.
  DualCpu d(rv::assemble({rv::addi(1, 1, 1), rv::ecall(),
                          rv::addi(1, 1, 1), rv::ebreak()}),
            0x1000, 0x1000, PrivMode::kUser);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x1000, 0x1000);
  e.read = e.write = e.execute = true;
  d.set_pmp(0, e);

  auto trap = d.run_both(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEcall);

  e.execute = false;  // revoke X, keep RW
  d.set_pmp(0, e);
  trap = d.run_both(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kInstructionAccessFault);
  EXPECT_EQ(trap->pc, 0x1008u);
}

TEST(Rv32Engine, MemoizedDataWindowInvalidatedOnReprogram) {
  // Load succeeds through the memoized read window, then read permission
  // is revoked: the next load must fault, not hit a stale memo.
  DualCpu d(rv::assemble({rv::lw(3, 1, 0), rv::ecall(),
                          rv::lw(4, 1, 0), rv::ebreak()}),
            0x1000, 0x1000, PrivMode::kUser);
  PmpEntry code;
  code.mode = PmpAddressMode::kNapot;
  code.address = PmpUnit::encode_napot(0x1000, 0x1000);
  code.read = code.write = code.execute = true;
  PmpEntry data;
  data.mode = PmpAddressMode::kNapot;
  data.address = PmpUnit::encode_napot(0x3000, 0x1000);
  data.read = true;
  d.set_pmp(0, code);
  d.set_pmp(1, data);
  d.set_reg(1, 0x3000);

  auto trap = d.run_both(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEcall);

  data.read = false;
  d.set_pmp(1, data);
  trap = d.run_both(100);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kLoadAccessFault);
  EXPECT_EQ(trap->tval, 0x3000u);
}

TEST(Rv32Engine, FastEngineMatchesLegacyOnStructuredLoop) {
  // The memcpy-style loop from the interpreter suite, with byte-level
  // loads/stores: identical final state on both engines.
  const auto program = rv::assemble({
      rv::lui(1, 0x3), rv::lui(2, 0x3), rv::addi(2, 2, 0x7ff),
      rv::addi(2, 2, 1), rv::addi(3, 0, 64),
      rv::lbu(4, 1, 0), rv::sb(4, 2, 0), rv::addi(1, 1, 1),
      rv::addi(2, 2, 1), rv::addi(3, 3, -1), rv::bne(3, 0, -20),
      rv::ebreak(),
  });
  DualCpu d(program, 0x1000, 0x1000, PrivMode::kMachine);
  Bytes src(64);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  d.ref_machine.store(0x3000, src, PrivMode::kMachine);
  d.fast_machine.store(0x3000, src, PrivMode::kMachine);
  const auto trap = d.run_both(10000);
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(d.fast_machine.load(0x3800, 64, PrivMode::kMachine), src);
}

}  // namespace
}  // namespace convolve::tee
