#include "convolve/tee/security_monitor.hpp"

#include <gtest/gtest.h>

#include "convolve/crypto/keccak.hpp"

namespace convolve::tee {
namespace {

struct World {
  Machine machine{1 << 20};
  BootRecord boot;
  std::unique_ptr<SecurityMonitor> sm;

  explicit World(bool pq, std::size_t stack_bytes = 128 * 1024) {
    const Bootrom rom({pq}, DeviceKeys::from_entropy(Bytes(32, 0x42)));
    boot = rom.boot(Bytes(4096, 0xAB));  // SM image
    SmConfig config;
    config.stack_bytes = stack_bytes;
    sm = std::make_unique<SecurityMonitor>(machine, boot, config);
  }
};

TEST(SecurityMonitor, OsCannotTouchSmMemory) {
  World w(false);
  EXPECT_THROW(w.machine.load(0x100, 4, PrivMode::kSupervisor), AccessFault);
  EXPECT_THROW(w.machine.store(0x100, Bytes{1}, PrivMode::kSupervisor),
               AccessFault);
}

TEST(SecurityMonitor, OsCanUseRestOfDram) {
  World w(false);
  // Above the 128 KB SM region.
  w.machine.store(0x40000, Bytes{7}, PrivMode::kSupervisor);
  EXPECT_EQ(w.machine.load_byte(0x40000, PrivMode::kSupervisor), 7);
}

TEST(SecurityMonitor, EnclaveMemoryHiddenFromOs) {
  World w(false);
  const int id = w.sm->create_enclave(Bytes(256, 0xCD), 8192);
  const auto& e = w.sm->enclave(id);
  EXPECT_THROW(w.machine.load(e.base, 16, PrivMode::kSupervisor), AccessFault);
  EXPECT_THROW(w.machine.store(e.base, Bytes{0}, PrivMode::kSupervisor),
               AccessFault);
}

TEST(SecurityMonitor, EnclaveCanUseOwnMemoryWhileRunning) {
  World w(false);
  const int id = w.sm->create_enclave(Bytes(256, 0xCD), 8192);
  const auto& e = w.sm->enclave(id);
  w.sm->run_enclave(id, [&] {
    // U-mode access inside the enclave region succeeds...
    EXPECT_EQ(w.machine.load_byte(e.base, PrivMode::kUser), 0xCD);
    w.machine.store(e.base + 512, Bytes{0x77}, PrivMode::kUser);
    // ...but the OS's memory is unreachable from inside.
    EXPECT_THROW(w.machine.load(0x40000, 4, PrivMode::kUser), AccessFault);
  });
  // After the context switch back, the OS still cannot see the write.
  EXPECT_THROW(w.machine.load(e.base + 512, 1, PrivMode::kSupervisor),
               AccessFault);
}

TEST(SecurityMonitor, EnclavesIsolatedFromEachOther) {
  World w(false);
  const int a = w.sm->create_enclave(Bytes(128, 0x01), 8192);
  const int b = w.sm->create_enclave(Bytes(128, 0x02), 8192);
  const auto& eb = w.sm->enclave(b);
  w.sm->run_enclave(a, [&] {
    EXPECT_THROW(w.machine.load(eb.base, 4, PrivMode::kUser), AccessFault);
  });
}

TEST(SecurityMonitor, ExceptionInEnclaveRestoresOsView) {
  World w(false);
  const int id = w.sm->create_enclave(Bytes(128, 0x03), 8192);
  EXPECT_THROW(
      w.sm->run_enclave(id, [] { throw std::runtime_error("enclave crash"); }),
      std::runtime_error);
  // OS view restored: DRAM usable, enclave hidden.
  w.machine.store(0x40000, Bytes{1}, PrivMode::kSupervisor);
  EXPECT_THROW(w.machine.load(w.sm->enclave(id).base, 4, PrivMode::kSupervisor),
               AccessFault);
}

TEST(SecurityMonitor, DestroyWipesEnclaveMemory) {
  World w(false);
  const int id = w.sm->create_enclave(Bytes(64, 0xEE), 8192);
  const auto base = w.sm->enclave(id).base;
  w.sm->destroy_enclave(id);
  // Region is back under OS control and contains zeros.
  EXPECT_EQ(w.machine.load_byte(base, PrivMode::kSupervisor), 0x00);
  EXPECT_THROW(w.sm->run_enclave(id, [] {}), std::runtime_error);
}

TEST(SecurityMonitor, AttestationVerifiesEndToEnd) {
  for (bool pq : {false, true}) {
    World w(pq);
    const Bytes binary(512, 0x3C);
    const int id = w.sm->create_enclave(binary, 8192);
    const auto report = w.sm->attest(id, as_bytes("session-key-fingerprint"));
    EXPECT_TRUE(verify_report(report, w.sm->trust_anchor())) << "pq=" << pq;
    // Pinned measurements.
    const Bytes expected_enclave = crypto::sha3_512(binary);
    EXPECT_TRUE(verify_report(report, w.sm->trust_anchor(),
                              &w.boot.sm_measurement, &expected_enclave));
    // Serialized size is exactly the Table III value.
    EXPECT_EQ(report.serialize().size(),
              pq ? kPqReportSize : kClassicalReportSize);
  }
}

TEST(SecurityMonitor, AttestationRoundTripsThroughSerialization) {
  World w(true);
  const int id = w.sm->create_enclave(Bytes(100, 0x9A), 8192);
  const auto report = w.sm->attest(id, as_bytes("data"));
  const auto parsed = AttestationReport::deserialize(report.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(verify_report(*parsed, w.sm->trust_anchor()));
  EXPECT_EQ(parsed->enclave_data, report.enclave_data);
}

TEST(SecurityMonitor, TamperedReportRejected) {
  World w(true);
  const int id = w.sm->create_enclave(Bytes(100, 0x9A), 8192);
  auto report = w.sm->attest(id, as_bytes("data"));
  {
    auto bad = report;
    bad.enclave_data[0] ^= 1;
    EXPECT_FALSE(verify_report(bad, w.sm->trust_anchor()));
  }
  {
    auto bad = report;
    bad.enclave_measurement[5] ^= 1;
    EXPECT_FALSE(verify_report(bad, w.sm->trust_anchor()));
  }
  {
    // Hybrid rule: breaking ONLY the ML-DSA signature must still reject.
    auto bad = report;
    bad.sm_sig_mldsa[100] ^= 1;
    EXPECT_FALSE(verify_report(bad, w.sm->trust_anchor()));
  }
  {
    // And breaking only the classical signature rejects too.
    auto bad = report;
    bad.sm_sig_ed25519[10] ^= 1;
    EXPECT_FALSE(verify_report(bad, w.sm->trust_anchor()));
  }
}

TEST(SecurityMonitor, WrongDeviceAnchorRejected) {
  World w1(true);
  World w2(true);
  // Different device entropy -> different anchor.
  const Bootrom rom2({true}, DeviceKeys::from_entropy(Bytes(32, 0x43)));
  const BootRecord boot2 = rom2.boot(Bytes(4096, 0xAB));
  SecurityMonitor sm2(w2.machine, boot2, {});
  const int id = w1.sm->create_enclave(Bytes(64, 1), 8192);
  const auto report = w1.sm->attest(id, {});
  EXPECT_FALSE(verify_report(report, sm2.trust_anchor()));
}

TEST(SecurityMonitor, DefaultStackOverflowsOnMlDsa) {
  // The paper's finding: 8 KB of SM stack is fine for Ed25519 but the
  // ML-DSA signing working set corrupts it; 128 KB fixes it.
  World classical(false, 8 * 1024);
  const int id1 = classical.sm->create_enclave(Bytes(64, 1), 8192);
  EXPECT_NO_THROW(classical.sm->attest(id1, {}));

  World pq_small(true, 8 * 1024);
  const int id2 = pq_small.sm->create_enclave(Bytes(64, 1), 8192);
  EXPECT_THROW(pq_small.sm->attest(id2, {}), StackOverflow);

  World pq_big(true, 128 * 1024);
  const int id3 = pq_big.sm->create_enclave(Bytes(64, 1), 8192);
  EXPECT_NO_THROW(pq_big.sm->attest(id3, {}));
  EXPECT_GT(pq_big.sm->stack().high_watermark(), 8u * 1024);
  EXPECT_LE(pq_big.sm->stack().high_watermark(), 128u * 1024);
}

TEST(SecurityMonitor, SealingRoundTrip) {
  World w(true);
  const int id = w.sm->create_enclave(Bytes(64, 0x10), 8192);
  const auto pt_view = as_bytes("proprietary model weights");
  const Bytes pt(pt_view.begin(), pt_view.end());
  const Bytes blob = w.sm->seal(id, pt);
  const auto opened = w.sm->unseal(id, blob);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(SecurityMonitor, SealingBoundToEnclaveMeasurement) {
  World w(true);
  const int a = w.sm->create_enclave(Bytes(64, 0x10), 8192);
  const int b = w.sm->create_enclave(Bytes(64, 0x20), 8192);  // different hash
  const Bytes blob = w.sm->seal(a, as_bytes("secret"));
  EXPECT_FALSE(w.sm->unseal(b, blob).has_value());
  EXPECT_TRUE(w.sm->unseal(a, blob).has_value());
}

TEST(SecurityMonitor, SealedBlobTamperRejected) {
  World w(false);
  const int id = w.sm->create_enclave(Bytes(64, 0x10), 8192);
  Bytes blob = w.sm->seal(id, as_bytes("secret"));
  blob[blob.size() - 1] ^= 1;
  EXPECT_FALSE(w.sm->unseal(id, blob).has_value());
}


TEST(SecurityMonitor, LocalAttestationVerifies) {
  World w(false);
  const int a = w.sm->create_enclave(Bytes(64, 0x01), 8192);
  const auto token = w.sm->local_attest(a);
  EXPECT_TRUE(w.sm->verify_local_attestation(token));
  EXPECT_EQ(token.target_measurement, w.sm->enclave(a).measurement);
}

TEST(SecurityMonitor, LocalAttestationTamperRejected) {
  World w(false);
  const int a = w.sm->create_enclave(Bytes(64, 0x01), 8192);
  auto token = w.sm->local_attest(a);
  token.target_measurement[3] ^= 1;
  EXPECT_FALSE(w.sm->verify_local_attestation(token));
  auto token2 = w.sm->local_attest(a);
  token2.mac[0] ^= 1;
  EXPECT_FALSE(w.sm->verify_local_attestation(token2));
  auto token3 = w.sm->local_attest(a);
  token3.target ^= 1;  // claim a different enclave id
  EXPECT_FALSE(w.sm->verify_local_attestation(token3));
}

TEST(SecurityMonitor, LocalAttestationDeviceBound) {
  World w1(false);
  World w2(false);
  // Same entropy but different SM images would differ; here even the same
  // construction yields different sealing roots per World machine? No --
  // same entropy + same image = same root. Use different entropy.
  const Bootrom rom({false}, DeviceKeys::from_entropy(Bytes(32, 0x44)));
  const BootRecord other_boot = rom.boot(Bytes(4096, 0xAB));
  SecurityMonitor other_sm(w2.machine, other_boot, {});
  const int a = w1.sm->create_enclave(Bytes(64, 0x02), 8192);
  const int b = other_sm.create_enclave(Bytes(64, 0x02), 8192);
  (void)b;
  const auto token = w1.sm->local_attest(a);
  EXPECT_FALSE(other_sm.verify_local_attestation(token));
}

TEST(SecurityMonitor, AttestRejectsOversizedUserData) {
  World w(false);
  const int id = w.sm->create_enclave(Bytes(64, 1), 8192);
  EXPECT_THROW(w.sm->attest(id, Bytes(kEnclaveDataMax + 1, 0)),
               std::invalid_argument);
  EXPECT_NO_THROW(w.sm->attest(id, Bytes(kEnclaveDataMax, 0)));
}

TEST(SecurityMonitor, EnclaveSlotsAreBounded) {
  World w(false);
  for (int i = 0; i < 14; ++i) {
    w.sm->create_enclave(Bytes(16, static_cast<std::uint8_t>(i)), 4096);
  }
  EXPECT_THROW(w.sm->create_enclave(Bytes(16, 0xFF), 4096),
               std::runtime_error);
}

}  // namespace
}  // namespace convolve::tee
