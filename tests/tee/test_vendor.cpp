#include "convolve/tee/vendor.hpp"

#include <gtest/gtest.h>

#include "convolve/tee/security_monitor.hpp"

namespace convolve::tee {
namespace {

struct Chain {
  VendorCa vendor{Bytes(32, 0xCA), /*pq=*/true};
  Machine machine{1 << 20};
  BootRecord boot;
  std::unique_ptr<SecurityMonitor> sm;
  DeviceCertificate cert;

  Chain() {
    const Bootrom rom({true}, DeviceKeys::from_entropy(Bytes(32, 0xD1)));
    boot = rom.boot(Bytes(4096, 0xAB));
    SmConfig config;
    config.stack_bytes = 128 * 1024;
    sm = std::make_unique<SecurityMonitor>(machine, boot, config);
    cert = vendor.issue(as_bytes("SN-000123"), boot);
  }
};

TEST(VendorCa, CertificateVerifiesAgainstRoots) {
  Chain chain;
  const auto anchor = verify_certificate(
      chain.cert, chain.vendor.root_ed25519_pk(),
      chain.vendor.root_mldsa_pk());
  ASSERT_TRUE(anchor.has_value());
  EXPECT_TRUE(ct_equal({anchor->device_ed25519_pk.data(), 32},
                       {chain.boot.device_ed25519_pk.data(), 32}));
  EXPECT_EQ(anchor->device_mldsa_pk, chain.boot.device_mldsa_pk);
}

TEST(VendorCa, FullChainVendorToEnclave) {
  // The deployment path: verifier pins ONLY the vendor roots, derives the
  // device anchor from the certificate, then verifies an enclave report.
  Chain chain;
  const int enclave = chain.sm->create_enclave(Bytes(256, 0x3D), 8192);
  const auto report = chain.sm->attest(enclave, as_bytes("binding"));
  const auto anchor = verify_certificate(
      chain.cert, chain.vendor.root_ed25519_pk(),
      chain.vendor.root_mldsa_pk());
  ASSERT_TRUE(anchor.has_value());
  EXPECT_TRUE(verify_report(report, *anchor));
}

TEST(VendorCa, TamperedCertificateRejected) {
  Chain chain;
  {
    auto bad = chain.cert;
    bad.device_ed25519_pk[0] ^= 1;
    EXPECT_FALSE(verify_certificate(bad, chain.vendor.root_ed25519_pk(),
                                    chain.vendor.root_mldsa_pk())
                     .has_value());
  }
  {
    auto bad = chain.cert;
    bad.device_id.push_back('X');
    EXPECT_FALSE(verify_certificate(bad, chain.vendor.root_ed25519_pk(),
                                    chain.vendor.root_mldsa_pk())
                     .has_value());
  }
  {
    // Hybrid rule: corrupting only the ML-DSA signature must reject.
    auto bad = chain.cert;
    bad.vendor_sig_mldsa[77] ^= 1;
    EXPECT_FALSE(verify_certificate(bad, chain.vendor.root_ed25519_pk(),
                                    chain.vendor.root_mldsa_pk())
                     .has_value());
  }
}

TEST(VendorCa, WrongVendorRootsRejected) {
  Chain chain;
  const VendorCa other(Bytes(32, 0xCB), true);
  EXPECT_FALSE(verify_certificate(chain.cert, other.root_ed25519_pk(),
                                  other.root_mldsa_pk())
                   .has_value());
}

TEST(VendorCa, RogueDeviceCannotForgeCertificate) {
  // A device that self-issues a certificate (signing with its own keys
  // instead of the vendor's) is rejected by the verifier.
  Chain chain;
  const Bootrom rogue_rom({true}, DeviceKeys::from_entropy(Bytes(32, 0xEE)));
  const BootRecord rogue_boot = rogue_rom.boot(Bytes(4096, 0xAB));
  const VendorCa fake_vendor(Bytes(32, 0xEF), true);  // attacker's "CA"
  const auto forged = fake_vendor.issue(as_bytes("SN-000123"), rogue_boot);
  EXPECT_FALSE(verify_certificate(forged, chain.vendor.root_ed25519_pk(),
                                  chain.vendor.root_mldsa_pk())
                   .has_value());
}

TEST(VendorCa, ClassicalOnlyChainWorks) {
  const VendorCa vendor(Bytes(32, 0xCC), /*pq=*/false);
  const Bootrom rom({false}, DeviceKeys::from_entropy(Bytes(32, 0xD2)));
  const BootRecord boot = rom.boot(Bytes(4096, 0xAB));
  const auto cert = vendor.issue(as_bytes("SN-9"), boot);
  EXPECT_FALSE(cert.pq_enabled);
  const auto anchor =
      verify_certificate(cert, vendor.root_ed25519_pk(), {});
  ASSERT_TRUE(anchor.has_value());
}

TEST(VendorCa, SerializationIsStable) {
  Chain chain;
  EXPECT_EQ(chain.cert.serialize(), chain.cert.serialize());
  EXPECT_GT(chain.cert.serialize().size(),
            32u + 64u);  // at least pk + classical sig
}

}  // namespace
}  // namespace convolve::tee
