// Enclave-execution service: request-loop semantics over CoW forks.
//
// Covers the full request path -- TDM admission (per-tenant slots,
// backpressure), split(seq)-deterministic run inputs, attest/seal/unseal
// against forked SM state, containment of trapping requests, response
// ordering, and the stats/percentile summaries -- plus the determinism
// contract: a fixed submission sequence yields bit-identical response
// payloads at every thread count.
#include "convolve/tee/service/enclave_service.hpp"

#include <gtest/gtest.h>

#include "convolve/common/parallel.hpp"
#include "convolve/crypto/keccak.hpp"

namespace convolve::tee::service {
namespace {

namespace rv = rv32asm;

// Program: sum `len` input bytes at region offset 0x600 into a word at
// region offset 0x700, then ecall. x6 = region base via auipc at entry.
Bytes sum_input_program(int len) {
  return rv::assemble({
      rv::auipc(6, 0),
      rv::addi(5, 0, 0),
      rv::addi(7, 0, 0),
      rv::addi(8, 0, len),
      // loop: (offset 0x10)
      rv::add(9, 6, 7),
      // 0x600 stays inside the signed 12-bit I-type immediate range --
      // 0x800 would sign-extend to -2048 and read below the region.
      rv::lbu(10, 9, 0x600),
      rv::add(5, 5, 10),
      rv::addi(7, 7, 1),
      rv::bne(7, 8, -16),
      rv::sw(5, 6, 0x700),
      rv::ecall(),
  });
}

constexpr int kInputLen = 48;

struct ServiceWorld {
  Machine machine{1 << 20};
  BootRecord boot;
  std::unique_ptr<SecurityMonitor> sm;
  int enclave = -1;

  explicit ServiceWorld(const Bytes& binary) {
    const Bootrom rom({false}, DeviceKeys::from_entropy(Bytes(32, 0x11)));
    boot = rom.boot(Bytes(4096, 0xAB));
    sm = std::make_unique<SecurityMonitor>(machine, boot, SmConfig{});
    enclave = sm->create_enclave(binary, 8192);
  }

  EnclaveService make_service(const ServiceConfig& config = {}) const {
    return EnclaveService(MachineSnapshot::freeze(machine, *sm), config);
  }
};

Request run_request(int enclave, std::uint32_t input_len = kInputLen) {
  Request r;
  r.kind = RequestKind::kRun;
  r.enclave = enclave;
  r.max_steps = 100000;
  r.input_offset = 0x600;
  r.input_len = input_len;
  r.result_offset = 0x700;
  r.result_len = 4;
  return r;
}

std::uint32_t expected_sum(std::uint64_t seed, std::uint64_t seq,
                           std::uint32_t len) {
  Bytes input(len);
  Xoshiro256(seed).split(seq).fill_bytes(input);
  std::uint32_t sum = 0;
  for (std::uint8_t b : input) sum += b;
  return sum;
}

TEST(EnclaveService, RunComputesOverSplitStreamInput) {
  ServiceWorld w(sum_input_program(kInputLen));
  auto service = w.make_service();
  const Request req = run_request(w.enclave);
  const auto responses = service.run_batch({req, req, req});
  ASSERT_EQ(responses.size(), 3u);
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    const Response& r = responses[seq];
    EXPECT_EQ(r.seq, seq);
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    ASSERT_TRUE(r.trap.has_value());
    EXPECT_EQ(r.trap->cause, TrapCause::kEcall);
    ASSERT_EQ(r.data.size(), 4u);
    // Each request saw its own split(seq) input stream.
    EXPECT_EQ(load_le32(r.data.data()),
              expected_sum(ServiceConfig{}.seed, seq, kInputLen));
  }
  // Distinct streams: at least one pair of sums should differ.
  EXPECT_FALSE(responses[0].data == responses[1].data &&
               responses[1].data == responses[2].data);
}

TEST(EnclaveService, BitIdenticalResponsesAtEveryThreadCount) {
  ServiceWorld w(sum_input_program(kInputLen));
  auto run_at = [&](int threads) {
    par::ScopedThreadCount guard(threads);
    auto service = w.make_service();
    std::vector<Request> batch;
    for (int i = 0; i < 24; ++i) {
      Request r = run_request(w.enclave);
      r.max_steps = (i % 3 == 0) ? 50 : 100000;  // mix in step-limited runs
      batch.push_back(r);
    }
    return service.run_batch(batch);
  };
  const auto base = run_at(1);
  for (int threads : {2, 4, 7}) {
    const auto got = run_at(threads);
    ASSERT_EQ(got.size(), base.size()) << threads << " threads";
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(got[i].status, base[i].status) << i;
      EXPECT_EQ(got[i].data, base[i].data) << i;
      EXPECT_EQ(got[i].steps, base[i].steps) << i;
      EXPECT_EQ(got[i].trap.has_value(), base[i].trap.has_value()) << i;
    }
  }
}

TEST(EnclaveService, AttestSealUnsealRoundTrip) {
  ServiceWorld w(sum_input_program(kInputLen));
  auto service = w.make_service();

  Request attest;
  attest.kind = RequestKind::kAttest;
  attest.enclave = w.enclave;
  attest.payload = Bytes{1, 2, 3};

  Request seal;
  seal.kind = RequestKind::kSeal;
  seal.enclave = w.enclave;
  const ByteView secret = as_bytes("fork-sealed secret");
  seal.payload = Bytes(secret.begin(), secret.end());

  auto first = service.run_batch({attest, seal, seal});
  ASSERT_EQ(first.size(), 3u);
  ASSERT_EQ(first[0].status, Status::kOk) << first[0].error;
  ASSERT_TRUE(first[0].report.has_value());
  EXPECT_TRUE(verify_report(*first[0].report, w.sm->trust_anchor()));
  EXPECT_EQ(first[0].report->enclave_data, (Bytes{1, 2, 3}));

  ASSERT_EQ(first[1].status, Status::kOk) << first[1].error;
  ASSERT_EQ(first[2].status, Status::kOk);
  // Same plaintext sealed by two forks: fork-id-keyed nonces make the
  // blobs distinct (no nonce reuse across forks sharing one snapshot).
  EXPECT_NE(first[1].data, first[2].data);

  // Both blobs unseal -- and so does a blob sealed by the master before
  // the snapshot (fork id 0 keeps the pre-fork nonce space).
  const Bytes master_blob = w.sm->seal(w.enclave, seal.payload);
  Request unseal;
  unseal.kind = RequestKind::kUnseal;
  unseal.enclave = w.enclave;
  std::vector<Request> batch;
  for (const Bytes& blob : {first[1].data, first[2].data, master_blob}) {
    unseal.payload = blob;
    batch.push_back(unseal);
  }
  const auto second = service.run_batch(batch);
  for (const auto& r : second) {
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.data, seal.payload);
  }

  // A tampered blob fails authentication.
  unseal.payload = first[1].data;
  unseal.payload[unseal.payload.size() / 2] ^= 1;
  const auto bad = service.run_batch({unseal});
  EXPECT_EQ(bad[0].status, Status::kError);
}

TEST(EnclaveService, TrappingAndRunawayRequestsAreContained) {
  // Escape attempt: read OS memory at 0x80000 from inside the enclave.
  ServiceWorld w(rv::assemble({
      rv::lui(1, 0x80),
      rv::lw(2, 1, 0),
      rv::ecall(),
  }));
  auto service = w.make_service();
  Request escape;
  escape.kind = RequestKind::kRun;
  escape.enclave = w.enclave;
  escape.max_steps = 100;
  const auto r = service.run_batch({escape, escape});
  for (const auto& resp : r) {
    ASSERT_EQ(resp.status, Status::kTrap);
    ASSERT_TRUE(resp.trap.has_value());
    EXPECT_EQ(resp.trap->cause, TrapCause::kLoadAccessFault);
    EXPECT_EQ(resp.trap->tval, 0x80000u);
  }
  // The master world is untouched by the contained violations.
  EXPECT_NO_THROW(w.machine.store(0x80000, Bytes{1}, PrivMode::kSupervisor));

  ServiceWorld loop(rv::assemble({rv::jal(0, 0)}));
  auto loop_service = loop.make_service();
  Request runaway;
  runaway.kind = RequestKind::kRun;
  runaway.enclave = loop.enclave;
  runaway.max_steps = 500;
  const auto lr = loop_service.run_batch({runaway});
  ASSERT_EQ(lr[0].status, Status::kStepLimit);
  EXPECT_EQ(lr[0].steps, 500u);
}

TEST(EnclaveService, TdmBackpressureShedsFloodingTenant) {
  ServiceWorld w(sum_input_program(kInputLen));
  ServiceConfig config;
  config.tdm_period = 8;
  config.tdm_max_wait = 2;
  config.tenant_slots = {{0, 4}, {1, 2, 3, 5, 6, 7}};  // A: 2 slots, B: 6
  auto service = w.make_service(config);

  std::vector<Request> batch;
  for (int round = 0; round < 20; ++round) {
    for (int burst = 0; burst < 6; ++burst) {
      Request r = run_request(w.enclave, 4);
      r.tenant = 0;  // flooding tenant
      batch.push_back(r);
    }
    Request r = run_request(w.enclave, 4);
    r.tenant = 1;  // well-behaved tenant
    batch.push_back(r);
  }
  const auto responses = service.run_batch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  std::uint64_t tenant0_ok = 0, tenant0_rejected = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const bool is_tenant1 = (i % 7 == 6);
    if (is_tenant1) {
      // Composability: the flood never starves tenant 1.
      EXPECT_EQ(responses[i].status, Status::kOk) << responses[i].error;
      EXPECT_LT(responses[i].wait_slots, 2);
    } else if (responses[i].status == Status::kRejected) {
      ++tenant0_rejected;
      EXPECT_EQ(responses[i].steps, 0u);  // shed before any execution
    } else {
      ++tenant0_ok;
    }
  }
  EXPECT_GT(tenant0_rejected, 0u);
  EXPECT_GT(tenant0_ok, 0u);
  const auto& stats = service.stats();
  EXPECT_EQ(stats.rejected, tenant0_rejected);
  EXPECT_EQ(stats.admitted + stats.rejected, stats.submitted);
}

TEST(EnclaveService, QueueCapRejectsBeyondMaxPending) {
  ServiceWorld w(sum_input_program(4));
  ServiceConfig config;
  config.max_pending = 5;
  auto service = w.make_service(config);
  for (int i = 0; i < 9; ++i) service.submit(run_request(w.enclave, 4));
  EXPECT_EQ(service.pending(), 5u);
  const auto responses = service.drain();
  ASSERT_EQ(responses.size(), 9u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(responses[i].status, Status::kOk) << responses[i].error;
  }
  for (std::size_t i = 5; i < 9; ++i) {
    EXPECT_EQ(responses[i].status, Status::kRejected);
    EXPECT_EQ(responses[i].error, "pending queue full");
  }
  // The queue drained; the next batch is admitted again.
  service.submit(run_request(w.enclave, 4));
  EXPECT_EQ(service.drain()[0].status, Status::kOk);
}

TEST(EnclaveService, InvalidRequestsAnswerErrors) {
  ServiceWorld w(sum_input_program(4));
  auto service = w.make_service();

  Request bad_tenant = run_request(w.enclave, 4);
  bad_tenant.tenant = 3;  // single-tenant default config
  Request bad_enclave = run_request(7, 4);
  Request bad_window = run_request(w.enclave, 4);
  bad_window.result_offset = 8190;  // 8190 + 4 > 8192
  const auto responses =
      service.run_batch({bad_tenant, bad_enclave, bad_window});
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].status, Status::kError);
  EXPECT_EQ(responses[0].error, "unknown tenant");
  EXPECT_EQ(responses[1].status, Status::kError);
  EXPECT_EQ(responses[2].status, Status::kError);
  EXPECT_NE(responses[2].error.find("window"), std::string::npos);
}

TEST(EnclaveService, StatsFoldAndPercentiles) {
  ServiceWorld w(sum_input_program(8));
  auto service = w.make_service();
  std::vector<Request> batch(16, run_request(w.enclave, 8));
  service.run_batch(batch);
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.submitted, 16u);
  EXPECT_EQ(stats.admitted, 16u);
  EXPECT_EQ(stats.completed, 16u);
  EXPECT_EQ(stats.ok, 16u);
  EXPECT_EQ(stats.forks, 16u);
  EXPECT_EQ(stats.latency_ns.count, 16u);
  EXPECT_EQ(stats.fork_ns.count, 16u);
  // Latency percentiles: nonzero, ordered, and p99 bounds the mean.
  const std::uint64_t p50 = stats.latency_ns.percentile(50);
  const std::uint64_t p99 = stats.latency_ns.percentile(99);
  EXPECT_GT(p50, 0u);
  EXPECT_LE(p50, p99);
  EXPECT_LE(stats.fork_ns.percentile(50), stats.latency_ns.percentile(50));
}

TEST(EnclaveService, SnapshotStaysPristineAcrossBatches) {
  ServiceWorld w(sum_input_program(kInputLen));
  auto service = w.make_service();
  const Bytes before(service.snapshot().image().bytes);
  std::vector<Request> batch(32, run_request(w.enclave));
  service.run_batch(batch);
  service.run_batch(batch);
  EXPECT_EQ(service.snapshot().image().bytes, before);
}

TEST(EnclaveService, ForksInheritHoistedEngineSelection) {
  // The enclave's engine choice is part of the snapshot: a service built
  // after set_enclave_engine(kInterpreted) must produce the same payloads
  // (all tiers are bit-identical) while actually running that tier.
  ServiceWorld w(sum_input_program(kInputLen));
  auto default_service = w.make_service();
  w.sm->set_enclave_engine(w.enclave, Rv32Engine::kInterpreted);
  auto interp_service = w.make_service();
  EXPECT_EQ(interp_service.snapshot().sm_state().enclaves[0].engine,
            Rv32Engine::kInterpreted);
  const Request req = run_request(w.enclave);
  const auto a = default_service.run_batch({req});
  const auto b = interp_service.run_batch({req});
  ASSERT_EQ(a[0].status, Status::kOk) << a[0].error;
  ASSERT_EQ(b[0].status, Status::kOk) << b[0].error;
  EXPECT_EQ(a[0].data, b[0].data);
  EXPECT_EQ(a[0].steps, b[0].steps);
}

}  // namespace
}  // namespace convolve::tee::service
