// Negative decode tests: every encoding the lax decoder used to accept
// (or mis-book-keep) must trap as an illegal instruction, identically on
// the reference interpreter (step loop) and the fast decode-cache engine.
#include "convolve/tee/rv32.hpp"

#include <gtest/gtest.h>

namespace convolve::tee {
namespace {

namespace rv = rv32asm;

std::uint32_t enc(std::uint32_t funct7, int rs2, int rs1,
                  std::uint32_t funct3, int rd, std::uint32_t opcode) {
  return (funct7 << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

// SYSTEM-class word: csr/imm in the top 12 bits.
std::uint32_t system_word(std::uint32_t imm12, int rs1, std::uint32_t funct3,
                          int rd) {
  return (imm12 << 20) | (static_cast<std::uint32_t>(rs1) << 15) |
         (funct3 << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x73;
}

struct Cpu {
  Machine machine{1 << 20};
  std::unique_ptr<Rv32Cpu> cpu;

  explicit Cpu(const std::vector<std::uint32_t>& program) {
    machine.store(0x1000, rv::assemble(program), PrivMode::kMachine);
    cpu = std::make_unique<Rv32Cpu>(machine, 0x1000, PrivMode::kMachine);
  }
};

// Run `program` on both engines; expect an illegal-instruction trap at
// `trap_pc` with the raw word as tval, and — like every other trap path —
// no pc/retired advance past the trapping instruction.
void expect_illegal(const std::vector<std::uint32_t>& program,
                    std::uint32_t trap_pc, std::uint32_t trap_word,
                    std::uint64_t retired_before_trap) {
  for (const bool fast : {false, true}) {
    SCOPED_TRACE(fast ? "fast engine" : "reference interpreter");
    Cpu c(program);
    const auto r = fast ? c.cpu->run(100) : c.cpu->run_interpreted(100);
    ASSERT_TRUE(r.trap.has_value());
    EXPECT_EQ(r.trap->cause, TrapCause::kIllegalInstruction);
    EXPECT_EQ(r.trap->pc, trap_pc);
    EXPECT_EQ(r.trap->tval, trap_word);
    EXPECT_EQ(c.cpu->pc(), trap_pc) << "illegal trap must not advance pc";
    EXPECT_EQ(c.cpu->instructions_retired(), retired_before_trap);
  }
}

TEST(Rv32Decode, OpRejectsSubBitOnNonSubNonSra) {
  // funct7=0x20 is only defined for funct3 0 (SUB) and 5 (SRA); with any
  // other funct3 the encoding is reserved and must not silently execute
  // as the funct7=0 instruction.
  for (const std::uint32_t funct3 : {1u, 2u, 3u, 4u, 6u, 7u}) {
    SCOPED_TRACE(funct3);
    const std::uint32_t word = enc(0x20, 2, 1, funct3, 3, 0x33);
    expect_illegal({rv::addi(1, 0, 5), rv::addi(2, 0, 3), word},
                   0x1008, word, 2);
  }
}

TEST(Rv32Decode, OpRejectsUnknownFunct7) {
  for (const std::uint32_t funct7 : {0x02u, 0x05u, 0x10u, 0x7fu}) {
    SCOPED_TRACE(funct7);
    const std::uint32_t word = enc(funct7, 2, 1, 0, 3, 0x33);
    expect_illegal({word}, 0x1000, word, 0);
  }
}

TEST(Rv32Decode, SubAndSraStillDecode) {
  for (const bool fast : {false, true}) {
    Cpu c({rv::addi(1, 0, -16), rv::addi(2, 0, 2), rv::sub(3, 1, 2),
           rv::sra(4, 1, 2), rv::ebreak()});
    const auto r = fast ? c.cpu->run(100) : c.cpu->run_interpreted(100);
    ASSERT_TRUE(r.trap.has_value());
    EXPECT_EQ(r.trap->cause, TrapCause::kEbreak);
    EXPECT_EQ(static_cast<std::int32_t>(c.cpu->reg(3)), -18);
    EXPECT_EQ(static_cast<std::int32_t>(c.cpu->reg(4)), -4);
  }
}

TEST(Rv32Decode, SystemCsrClassWithZeroCsrTraps) {
  // csrrw x1, 0, x2 and friends: imm==0 but funct3!=0. These used to
  // decode as ECALL; they must trap as illegal instead.
  for (const std::uint32_t funct3 : {1u, 2u, 3u, 5u, 6u, 7u}) {
    SCOPED_TRACE(funct3);
    const std::uint32_t word = system_word(0, 2, funct3, 1);
    expect_illegal({word}, 0x1000, word, 0);
  }
}

TEST(Rv32Decode, SystemEcallRequiresZeroRdRs1) {
  const std::uint32_t rd_set = system_word(0, 0, 0, 1);    // rd != 0
  const std::uint32_t rs1_set = system_word(0, 1, 0, 0);   // rs1 != 0
  const std::uint32_t priv_other = system_word(2, 0, 0, 0);  // e.g. URET slot
  expect_illegal({rd_set}, 0x1000, rd_set, 0);
  expect_illegal({rs1_set}, 0x1000, rs1_set, 0);
  expect_illegal({priv_other}, 0x1000, priv_other, 0);
}

TEST(Rv32Decode, SystemIllegalDoesNotAdvanceState) {
  // Regression: the old SYSTEM path advanced pc and the retired counter
  // before raising the illegal trap, unlike every other trap path.
  const std::uint32_t word = system_word(0x305, 0, 1, 5);  // csrrw x5,mtvec,x0
  expect_illegal({rv::nop(), word}, 0x1004, word, 1);
}

TEST(Rv32Decode, EcallAndEbreakStillResume) {
  for (const bool fast : {false, true}) {
    SCOPED_TRACE(fast ? "fast engine" : "reference interpreter");
    Cpu c({rv::ecall(), rv::addi(1, 0, 9), rv::ebreak()});
    auto r = fast ? c.cpu->run(10) : c.cpu->run_interpreted(10);
    ASSERT_TRUE(r.trap.has_value());
    EXPECT_EQ(r.trap->cause, TrapCause::kEcall);
    EXPECT_EQ(r.trap->pc, 0x1000u);
    EXPECT_EQ(c.cpu->pc(), 0x1004u);  // resumable: pc past the ecall
    EXPECT_EQ(c.cpu->instructions_retired(), 1u);
    r = fast ? c.cpu->run(10) : c.cpu->run_interpreted(10);
    ASSERT_TRUE(r.trap.has_value());
    EXPECT_EQ(r.trap->cause, TrapCause::kEbreak);
    EXPECT_EQ(c.cpu->reg(1), 9u);
    EXPECT_EQ(c.cpu->instructions_retired(), 3u);
  }
}

}  // namespace
}  // namespace convolve::tee
