#include "convolve/tee/rv32.hpp"

#include <gtest/gtest.h>

namespace convolve::tee {
namespace {

namespace rv = rv32asm;

struct Cpu {
  Machine machine{1 << 20};
  std::unique_ptr<Rv32Cpu> cpu;

  // Load a program at 0x1000 with an all-access PMP view (M-mode).
  explicit Cpu(const std::vector<std::uint32_t>& program,
               PrivMode mode = PrivMode::kMachine) {
    machine.store(0x1000, rv::assemble(program), PrivMode::kMachine);
    cpu = std::make_unique<Rv32Cpu>(machine, 0x1000, mode);
  }
};

TEST(Rv32, ArithmeticImmediates) {
  Cpu c({
      rv::addi(1, 0, 42),      // x1 = 42
      rv::addi(2, 1, -10),     // x2 = 32
      rv::xori(3, 2, 0xff),    // x3 = 32 ^ 255 = 223
      rv::andi(4, 3, 0x0f),    // x4 = 15
      rv::ori(5, 4, 0x30),     // x5 = 63
      rv::slli(6, 5, 2),       // x6 = 252
      rv::srli(7, 6, 3),       // x7 = 31
      rv::ebreak(),
  });
  const auto r = c.cpu->run(100);
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_EQ(r.trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(c.cpu->reg(1), 42u);
  EXPECT_EQ(c.cpu->reg(2), 32u);
  EXPECT_EQ(c.cpu->reg(3), 223u);
  EXPECT_EQ(c.cpu->reg(4), 15u);
  EXPECT_EQ(c.cpu->reg(5), 63u);
  EXPECT_EQ(c.cpu->reg(6), 252u);
  EXPECT_EQ(c.cpu->reg(7), 31u);
}

TEST(Rv32, SignedArithmeticAndShifts) {
  Cpu c({
      rv::addi(1, 0, -1),   // x1 = 0xffffffff
      rv::srai(2, 1, 4),    // x2 = 0xffffffff (arithmetic)
      rv::srli(3, 1, 4),    // x3 = 0x0fffffff
      rv::slti(4, 1, 0),    // x4 = 1 (-1 < 0)
      rv::sltiu(5, 1, 0),   // x5 = 0 (0xffffffff not < 0)
      rv::ebreak(),
  });
  c.cpu->run(100);
  EXPECT_EQ(c.cpu->reg(2), 0xffffffffu);
  EXPECT_EQ(c.cpu->reg(3), 0x0fffffffu);
  EXPECT_EQ(c.cpu->reg(4), 1u);
  EXPECT_EQ(c.cpu->reg(5), 0u);
}

TEST(Rv32, RegisterRegisterOps) {
  Cpu c({
      rv::addi(1, 0, 100),
      rv::addi(2, 0, 7),
      rv::add(3, 1, 2),   // 107
      rv::sub(4, 1, 2),   // 93
      rv::xor_(5, 1, 2),  // 99
      rv::and_(6, 1, 2),  // 4
      rv::or_(7, 1, 2),   // 103
      rv::sltu(8, 2, 1),  // 1
      rv::ebreak(),
  });
  c.cpu->run(100);
  EXPECT_EQ(c.cpu->reg(3), 107u);
  EXPECT_EQ(c.cpu->reg(4), 93u);
  EXPECT_EQ(c.cpu->reg(5), 99u);
  EXPECT_EQ(c.cpu->reg(6), 4u);
  EXPECT_EQ(c.cpu->reg(7), 103u);
  EXPECT_EQ(c.cpu->reg(8), 1u);
}

TEST(Rv32, MExtensionArithmetic) {
  Cpu c({
      rv::addi(1, 0, -6),
      rv::addi(2, 0, 7),
      rv::mul(3, 1, 2),   // -42
      rv::mulh(4, 1, 2),  // -1 (sign extension of the 64-bit product)
      rv::rem(5, 1, 2),   // -6 % 7 = -6
      rv::addi(6, 0, 100),
      rv::addi(7, 0, 9),
      rv::divu(8, 6, 7),  // 11
      rv::remu(9, 6, 7),  // 1
      rv::ebreak(),
  });
  c.cpu->run(100);
  EXPECT_EQ(static_cast<std::int32_t>(c.cpu->reg(3)), -42);
  EXPECT_EQ(c.cpu->reg(4), 0xffffffffu);
  EXPECT_EQ(static_cast<std::int32_t>(c.cpu->reg(5)), -6);
  EXPECT_EQ(c.cpu->reg(8), 11u);
  EXPECT_EQ(c.cpu->reg(9), 1u);
}

TEST(Rv32, DivisionEdgeCases) {
  Cpu c({
      rv::addi(1, 0, 5),
      rv::addi(2, 0, 0),
      rv32asm::div(3, 1, 2),  // div by zero -> -1
      rv::remu(4, 1, 2),      // rem by zero -> dividend
      rv::ebreak(),
  });
  c.cpu->run(100);
  EXPECT_EQ(c.cpu->reg(3), 0xffffffffu);
  EXPECT_EQ(c.cpu->reg(4), 5u);
}

TEST(Rv32, LoadsAndStores) {
  Cpu c({
      rv::lui(1, 0x2),          // x1 = 0x2000
      rv::addi(2, 0, -2),       // x2 = 0xfffffffe
      rv::sw(2, 1, 0),          // [0x2000] = fffffffe
      rv::lw(3, 1, 0),          // x3 = fffffffe
      rv::lb(4, 1, 0),          // x4 = sign-extended 0xfe = -2
      rv::lbu(5, 1, 0),         // x5 = 0xfe
      rv::lh(6, 1, 0),          // x6 = 0xfffffffe
      rv::lhu(7, 1, 0),         // x7 = 0xfffe
      rv::sb(2, 1, 8),          // [0x2008] = fe
      rv::lbu(8, 1, 8),
      rv::ebreak(),
  });
  c.cpu->run(100);
  EXPECT_EQ(c.cpu->reg(3), 0xfffffffeu);
  EXPECT_EQ(c.cpu->reg(4), 0xfffffffeu);
  EXPECT_EQ(c.cpu->reg(5), 0xfeu);
  EXPECT_EQ(c.cpu->reg(6), 0xfffffffeu);
  EXPECT_EQ(c.cpu->reg(7), 0xfffeu);
  EXPECT_EQ(c.cpu->reg(8), 0xfeu);
}

TEST(Rv32, BranchLoopComputesSum) {
  // sum = 1 + 2 + ... + 10 via a branch loop.
  Cpu c({
      rv::addi(1, 0, 0),    // sum
      rv::addi(2, 0, 1),    // i
      rv::addi(3, 0, 11),   // limit
      // loop:
      rv::add(1, 1, 2),     // sum += i
      rv::addi(2, 2, 1),    // ++i
      rv::bne(2, 3, -8),    // while i != 11
      rv::ebreak(),
  });
  const auto r = c.cpu->run(1000);
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_EQ(c.cpu->reg(1), 55u);
}

TEST(Rv32, JalAndJalrFunctionCall) {
  // x1 = f(5) where f doubles its argument; call via jal, return via jalr.
  Cpu c({
      rv::addi(10, 0, 5),    // a0 = 5
      rv::jal(1, 8),         // call f (two instructions ahead), ra = x1
      rv::ebreak(),          // after return
      // f:
      rv::add(10, 10, 10),   // a0 *= 2
      rv::jalr(0, 1, 0),     // return
  });
  const auto r = c.cpu->run(100);
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_EQ(r.trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(c.cpu->reg(10), 10u);
}

TEST(Rv32, FibonacciProgram) {
  // Compute fib(15) = 610 iteratively.
  Cpu c({
      rv::addi(1, 0, 0),    // a = 0
      rv::addi(2, 0, 1),    // b = 1
      rv::addi(3, 0, 15),   // n
      // loop:
      rv::add(4, 1, 2),     // t = a + b
      rv::addi(1, 2, 0),    // a = b
      rv::addi(2, 4, 0),    // b = t
      rv::addi(3, 3, -1),   // --n
      rv::bne(3, 0, -16),
      rv::ebreak(),
  });
  c.cpu->run(1000);
  EXPECT_EQ(c.cpu->reg(1), 610u);
}

TEST(Rv32, X0IsHardwiredZero) {
  Cpu c({
      rv::addi(0, 0, 99),  // write to x0 is discarded
      rv::addi(1, 0, 3),
      rv::ebreak(),
  });
  c.cpu->run(10);
  EXPECT_EQ(c.cpu->reg(0), 0u);
  EXPECT_EQ(c.cpu->reg(1), 3u);
}

TEST(Rv32, EcallTrapsWithResumablePc) {
  Cpu c({
      rv::addi(17, 0, 93),  // a7 = syscall number
      rv::ecall(),
      rv::addi(1, 0, 7),    // resumed after the embedder services it
      rv::ebreak(),
  });
  auto r = c.cpu->run(10);
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_EQ(r.trap->cause, TrapCause::kEcall);
  EXPECT_EQ(c.cpu->reg(17), 93u);
  // pc already points past the ecall: resume directly.
  r = c.cpu->run(10);
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_EQ(r.trap->cause, TrapCause::kEbreak);
  EXPECT_EQ(c.cpu->reg(1), 7u);
}

TEST(Rv32, IllegalInstructionTraps) {
  Cpu c({0xffffffffu});
  const auto r = c.cpu->run(10);
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_EQ(r.trap->cause, TrapCause::kIllegalInstruction);
}

TEST(Rv32, MisalignedPcTraps) {
  Cpu c({rv::nop()});
  c.cpu->set_pc(0x1002);
  const auto r = c.cpu->run(10);
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_EQ(r.trap->cause, TrapCause::kMisalignedFetch);
}

TEST(Rv32, PmpBlocksUserLoads) {
  // U-mode code in an executable region; loads outside it trap.
  Machine machine(1 << 20);
  const auto program = rv::assemble({
      rv::lui(1, 0x80),   // x1 = 0x80000 (outside the enclave)
      rv::lw(2, 1, 0),    // -> load fault
      rv::ebreak(),
  });
  machine.store(0x4000, program, PrivMode::kMachine);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x4000, 0x1000);
  e.read = e.write = e.execute = true;
  machine.pmp().set_entry(0, e);

  Rv32Cpu cpu(machine, 0x4000, PrivMode::kUser);
  const auto r = cpu.run(10);
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_EQ(r.trap->cause, TrapCause::kLoadAccessFault);
  EXPECT_EQ(r.trap->tval, 0x80000u);
  EXPECT_EQ(r.trap->pc, 0x4004u);
}

TEST(Rv32, PmpBlocksUserFetchOutsideRegion) {
  Machine machine(1 << 20);
  const auto program = rv::assemble({
      rv::lui(1, 0x80),
      rv::jalr(0, 1, 0),  // jump to 0x80000: fetch fault there
  });
  machine.store(0x4000, program, PrivMode::kMachine);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x4000, 0x1000);
  e.read = e.write = e.execute = true;
  machine.pmp().set_entry(0, e);

  Rv32Cpu cpu(machine, 0x4000, PrivMode::kUser);
  const auto r = cpu.run(10);
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_EQ(r.trap->cause, TrapCause::kInstructionAccessFault);
  EXPECT_EQ(r.trap->pc, 0x80000u);
}

TEST(Rv32, WriteExecuteSeparation) {
  // Region is executable but not writable: code cannot patch itself.
  Machine machine(1 << 20);
  const auto program = rv::assemble({
      rv::auipc(1, 0),    // x1 = pc
      rv::sw(0, 1, 0),    // try to overwrite own code -> store fault
      rv::ebreak(),
  });
  machine.store(0x4000, program, PrivMode::kMachine);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x4000, 0x1000);
  e.read = true;
  e.execute = true;  // R-X, no W
  machine.pmp().set_entry(0, e);

  Rv32Cpu cpu(machine, 0x4000, PrivMode::kUser);
  const auto r = cpu.run(10);
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_EQ(r.trap->cause, TrapCause::kStoreAccessFault);
}

TEST(Rv32, MemcpyProgram) {
  // Copy 16 bytes from 0x3000 to 0x3800 with a byte loop.
  Cpu c({
      rv::lui(1, 0x3),      // src = 0x3000
      rv::lui(2, 0x3),      //
      rv::addi(2, 2, 0x7ff),
      rv::addi(2, 2, 1),    // dst = 0x3800
      rv::addi(3, 0, 16),   // n
      // loop:
      rv::lbu(4, 1, 0),
      rv::sb(4, 2, 0),
      rv::addi(1, 1, 1),
      rv::addi(2, 2, 1),
      rv::addi(3, 3, -1),
      rv::bne(3, 0, -20),
      rv::ebreak(),
  });
  Bytes src(16);
  for (int i = 0; i < 16; ++i) src[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i * 3 + 1);
  c.machine.store(0x3000, src, PrivMode::kMachine);
  c.cpu->run(1000);
  EXPECT_EQ(c.machine.load(0x3800, 16, PrivMode::kMachine), src);
}

TEST(Rv32, RegisterIndexValidation) {
  Machine machine(4096);
  Rv32Cpu cpu(machine, 0, PrivMode::kMachine);
  EXPECT_THROW(cpu.reg(32), std::out_of_range);
  EXPECT_THROW(cpu.set_reg(-1, 0), std::out_of_range);
}

TEST(Rv32, CountsRetiredInstructions) {
  Cpu c({rv::addi(1, 0, 1), rv::addi(2, 0, 2), rv::ebreak()});
  c.cpu->run(10);
  EXPECT_EQ(c.cpu->instructions_retired(), 3u);
}

}  // namespace
}  // namespace convolve::tee
