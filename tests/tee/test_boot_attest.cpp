#include <gtest/gtest.h>

#include "convolve/tee/attestation.hpp"
#include "convolve/tee/bootrom.hpp"

namespace convolve::tee {
namespace {

DeviceKeys test_keys() { return DeviceKeys::from_entropy(Bytes(32, 0x5a)); }

Bytes sm_image() { return Bytes(4096, 0x11); }

TEST(Bootrom, SizeMatchesTable3) {
  // Table III row 1: 50.7 KB default, 60.2 KB PQ-enabled.
  EXPECT_EQ(Bootrom({false}, test_keys()).size_bytes(), 50700u);
  EXPECT_EQ(Bootrom({true}, test_keys()).size_bytes(), 60200u);
}

TEST(Bootrom, BootRecordVerifies) {
  for (bool pq : {false, true}) {
    const Bootrom rom({pq}, test_keys());
    const BootRecord record = rom.boot(sm_image());
    EXPECT_TRUE(Bootrom::verify_boot_record(record)) << "pq=" << pq;
    EXPECT_EQ(record.pq_enabled, pq);
    EXPECT_EQ(record.sm_measurement.size(), 64u);
    EXPECT_EQ(record.device_mldsa_pk.size(), pq ? 1312u : 0u);
  }
}

TEST(Bootrom, TamperedSmImageChangesMeasurementAndKeys) {
  const Bootrom rom({true}, test_keys());
  const BootRecord good = rom.boot(sm_image());
  Bytes evil = sm_image();
  evil[100] ^= 1;
  const BootRecord bad = rom.boot(evil);
  EXPECT_NE(good.sm_measurement, bad.sm_measurement);
  // Key derivation is measurement-bound: a tampered SM gets different keys.
  EXPECT_NE(Bytes(good.sm_ed25519.public_key.begin(),
                  good.sm_ed25519.public_key.end()),
            Bytes(bad.sm_ed25519.public_key.begin(),
                  bad.sm_ed25519.public_key.end()));
  EXPECT_NE(good.sm_mldsa.pk, bad.sm_mldsa.pk);
  EXPECT_NE(good.sealing_root, bad.sealing_root);
}

TEST(Bootrom, ForgedRecordFailsVerification) {
  const Bootrom rom({true}, test_keys());
  BootRecord record = rom.boot(sm_image());
  record.sm_measurement[0] ^= 1;
  EXPECT_FALSE(Bootrom::verify_boot_record(record));
}

TEST(Bootrom, DeterministicAcrossBoots) {
  const Bootrom rom({true}, test_keys());
  const BootRecord a = rom.boot(sm_image());
  const BootRecord b = rom.boot(sm_image());
  EXPECT_EQ(a.sm_mldsa.pk, b.sm_mldsa.pk);
  EXPECT_EQ(a.device_sig_mldsa, b.device_sig_mldsa);
  EXPECT_EQ(a.sealing_root, b.sealing_root);
}

TEST(Bootrom, DeviceKeysValidation) {
  EXPECT_THROW(DeviceKeys::from_entropy(Bytes(31, 0)), std::invalid_argument);
}

TEST(Attestation, SerializedSizesMatchTable3) {
  EXPECT_EQ(kClassicalReportSize, 1320u);
  EXPECT_EQ(kPqReportSize, 7472u);
}

TEST(Attestation, DeserializeRejectsOtherSizes) {
  EXPECT_FALSE(AttestationReport::deserialize(Bytes(1319, 0)).has_value());
  EXPECT_FALSE(AttestationReport::deserialize(Bytes(1321, 0)).has_value());
  EXPECT_FALSE(AttestationReport::deserialize(Bytes(7473, 0)).has_value());
}

TEST(Attestation, PaddingMustBeZero) {
  // An all-zero classical-size blob parses (zero padding, zero length).
  Bytes blob(kClassicalReportSize, 0);
  EXPECT_TRUE(AttestationReport::deserialize(blob).has_value());
  // Nonzero byte inside the declared-empty data region must be rejected.
  blob[32 + 160 + 64 + 8 + 100] = 1;
  EXPECT_FALSE(AttestationReport::deserialize(blob).has_value());
}

}  // namespace
}  // namespace convolve::tee
