// Regression corpus for the shared decoder (convolve/tee/rv32_decode.hpp).
//
// The decoder is consumed by three clients that must never diverge: the
// reference interpreter step(), the decode-cache fast engine, and the
// static binary analyzer's linear sweep. This suite pins:
//   1. byte-for-byte DecodedInsn goldens on edge-case encodings,
//   2. decode legality == interpreter legality over an exhaustive OP
//      funct7 x funct3 sweep and a SYSTEM-class corpus,
//   3. misaligned-fetch behaviour (a decode-level concern for the sweep:
//      targets with pc % 4 != 0 never reach the decoder),
//   4. totality of the classification helpers the CFG sweep relies on.
#include "convolve/tee/rv32.hpp"

#include <cstring>
#include <gtest/gtest.h>

#include "convolve/common/rng.hpp"

namespace convolve::tee {
namespace {

namespace rv = rv32asm;

std::uint32_t enc(std::uint32_t funct7, int rs2, int rs1,
                  std::uint32_t funct3, int rd, std::uint32_t opcode) {
  return (funct7 << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

std::uint32_t system_word(std::uint32_t imm12, int rs1, std::uint32_t funct3,
                          int rd) {
  return (imm12 << 20) | (static_cast<std::uint32_t>(rs1) << 15) |
         (funct3 << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x73;
}

bool insn_equal(const DecodedInsn& a, const DecodedInsn& b) {
  return a.kind == b.kind && a.rd == b.rd && a.rs1 == b.rs1 &&
         a.rs2 == b.rs2 && a.imm == b.imm;
}

// Execute one instruction word on the reference interpreter with zeroed
// registers and report whether it trapped as illegal.
bool interpreter_says_illegal(std::uint32_t word) {
  Machine machine{1 << 16};
  machine.store(0x1000, rv::assemble({word}), PrivMode::kMachine);
  Rv32Cpu cpu(machine, 0x1000, PrivMode::kMachine);
  const auto trap = cpu.step();
  return trap.has_value() && trap->cause == TrapCause::kIllegalInstruction;
}

TEST(Rv32DecodeShared, GoldenEdgeEncodings) {
  struct Golden {
    std::uint32_t word;
    DecodedInsn expect;
  };
  const Golden corpus[] = {
      // SUB x5, x6, x7: the funct7=0x20 bit on funct3=0.
      {rv::sub(5, 6, 7), {OpKind::kSub, 5, 6, 7, 0}},
      // SRAI x1, x2, 31: shamt with the 0x20 marker stripped into imm.
      {rv::srai(1, 2, 31), {OpKind::kSrai, 1, 2, 31, 31}},
      // SRAI with a stray funct7 bit (0x21 pattern) is reserved.
      {rv::srai(1, 2, 31) | (1u << 25),
       {OpKind::kIllegal, 0, 0, 0,
        static_cast<std::int32_t>(rv::srai(1, 2, 31) | (1u << 25))}},
      // OP funct7=0x20 funct3=7 (the "AND with SUB bit" alias) is reserved.
      {enc(0x20, 3, 2, 7, 1, 0x33),
       {OpKind::kIllegal, 0, 0, 0,
        static_cast<std::int32_t>(enc(0x20, 3, 2, 7, 1, 0x33))}},
      // ECALL: rs2 overlaps imm and must decode as 0, not 0 vs garbage.
      {rv::ecall(), {OpKind::kEcall, 0, 0, 0, 0}},
      // EBREAK: imm=1 in the rs2 field, still not a register operand.
      {rv::ebreak(), {OpKind::kEbreak, 0, 0, 0, 0}},
      // CSRRW-shaped SYSTEM word (funct3=1) is not implemented: illegal.
      {system_word(0x305, 1, 1, 1),
       {OpKind::kIllegal, 0, 0, 0,
        static_cast<std::int32_t>(system_word(0x305, 1, 1, 1))}},
      // ECALL with rd!=0 is a reserved SYSTEM encoding.
      {system_word(0, 0, 0, 1),
       {OpKind::kIllegal, 0, 0, 0,
        static_cast<std::int32_t>(system_word(0, 0, 0, 1))}},
      // WFI-shaped (imm=0x105) SYSTEM word: illegal here.
      {system_word(0x105, 0, 0, 0),
       {OpKind::kIllegal, 0, 0, 0,
        static_cast<std::int32_t>(system_word(0x105, 0, 0, 0))}},
      // JAL x1, -4: the rs1/rs2 field slots carry J-immediate fragments
      // (the decoder copies raw bit fields for every format; reads_rs1/
      // reads_rs2 say whether they are real operands).
      {rv::jal(1, -4), {OpKind::kJal, 1, 31, 29, -4}},
      // BGEU x3, x4, +16: the B-immediate low bits land in the rd slot.
      {rv::bgeu(3, 4, 16), {OpKind::kBgeu, 16, 3, 4, 16}},
      // LW x8, -2048(x9): most negative I-immediate.
      {rv::lw(8, 9, -2048), {OpKind::kLw, 8, 9, 0, -2048}},
      // SW x10, 2047(x11): most positive S-immediate (low 5 bits -> rd slot).
      {rv::sw(10, 11, 2047), {OpKind::kSw, 31, 11, 10, 2047}},
      // LUI x12 with the top immediate bit set (sign of imm field); the
      // rs1/rs2 slots are immediate bits, all ones here.
      {rv::lui(12, 0xfffff),
       {OpKind::kLui, 12, 31, 31, static_cast<std::int32_t>(0xfffff000u)}},
      // FENCE: accepted as a no-op regardless of fm/pred/succ bits (the
      // pred/succ mask lands in the rs2 field slot of the decode).
      {0x0ff0000f, {OpKind::kFence, 0, 0, 31, 0}},
      // All-zero and all-one words are illegal (defensive trap values).
      {0x00000000u, {OpKind::kIllegal, 0, 0, 0, 0}},
      {0xffffffffu, {OpKind::kIllegal, 0, 0, 0, -1}},
  };
  for (const auto& g : corpus) {
    const DecodedInsn got = decode_rv32(g.word);
    EXPECT_TRUE(insn_equal(got, g.expect))
        << "word 0x" << std::hex << g.word << " decoded to kind "
        << std::dec << static_cast<int>(got.kind) << " rd "
        << static_cast<int>(got.rd) << " rs1 " << static_cast<int>(got.rs1)
        << " rs2 " << static_cast<int>(got.rs2) << " imm " << got.imm;
  }
}

TEST(Rv32DecodeShared, OpFunct7SweepMatchesInterpreter) {
  // Exhaustive OP-opcode sweep: every funct7 x funct3 combination must be
  // classified identically by the shared decoder and the reference
  // interpreter (legal <=> no illegal-instruction trap).
  for (std::uint32_t funct7 = 0; funct7 < 128; ++funct7) {
    for (std::uint32_t funct3 = 0; funct3 < 8; ++funct3) {
      const std::uint32_t word = enc(funct7, 2, 1, funct3, 3, 0x33);
      const bool decode_illegal = decode_rv32(word).kind == OpKind::kIllegal;
      EXPECT_EQ(decode_illegal, interpreter_says_illegal(word))
          << "OP funct7=" << funct7 << " funct3=" << funct3;
    }
  }
}

TEST(Rv32DecodeShared, SystemCorpusMatchesInterpreter) {
  // SYSTEM class: imm/rd/rs1/funct3 variations around ECALL/EBREAK.
  for (const std::uint32_t imm : {0u, 1u, 2u, 0x105u, 0x302u, 0xfffu}) {
    for (const int rd : {0, 1, 31}) {
      for (const int rs1 : {0, 1, 31}) {
        for (const std::uint32_t funct3 : {0u, 1u, 2u, 3u, 5u, 7u}) {
          const std::uint32_t word =
              system_word(imm, rs1, funct3, rd);
          const bool decode_illegal =
              decode_rv32(word).kind == OpKind::kIllegal;
          EXPECT_EQ(decode_illegal, interpreter_says_illegal(word))
              << "SYSTEM imm=" << imm << " rd=" << rd << " rs1=" << rs1
              << " funct3=" << funct3;
        }
      }
    }
  }
}

TEST(Rv32DecodeShared, RandomWordsAgreeWithInterpreterOnLegality) {
  Xoshiro256 rng(0x5eedc0deull);
  for (int i = 0; i < 5000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.next_u64());
    const DecodedInsn d = decode_rv32(word);
    const bool decode_illegal = d.kind == OpKind::kIllegal;
    EXPECT_EQ(decode_illegal, interpreter_says_illegal(word))
        << "word 0x" << std::hex << word;
    if (decode_illegal) {
      // Illegal decodes must carry the raw word for the trap tval.
      EXPECT_EQ(static_cast<std::uint32_t>(d.imm), word);
    }
  }
}

TEST(Rv32DecodeShared, MisalignedFetchTrapsBeforeDecodeOnBothEngines) {
  // A jalr to a 2-byte-aligned target (bit 0 is cleared architecturally,
  // bit 1 survives) must trap kMisalignedFetch on both engines -- the
  // decoder never sees a misaligned pc, which is why the static sweep can
  // treat the 4-byte instruction grid as total.
  for (const bool fast : {false, true}) {
    SCOPED_TRACE(fast ? "fast engine" : "reference interpreter");
    Machine machine{1 << 16};
    machine.store(0x1000,
                  rv::assemble({rv::lui(1, 1), rv::addi(1, 1, 6),
                                rv::jalr(0, 1, 0)}),
                  PrivMode::kMachine);
    Rv32Cpu cpu(machine, 0x1000, PrivMode::kMachine);
    const auto r = fast ? cpu.run(10) : cpu.run_interpreted(10);
    ASSERT_TRUE(r.trap.has_value());
    EXPECT_EQ(r.trap->cause, TrapCause::kMisalignedFetch);
    EXPECT_EQ(r.trap->pc, 0x1006u);
    EXPECT_EQ(r.trap->tval, 0x1006u);
  }
}

TEST(Rv32DecodeShared, ClassificationHelpersAreTotal) {
  // Every OpKind must land in exactly one of the CFG sweep's classes
  // (terminator-kind, memory-access, or plain), and writes_rd must agree
  // with what the engines actually do with rd.
  for (int k = 0; k <= static_cast<int>(OpKind::kEbreak); ++k) {
    const auto kind = static_cast<OpKind>(k);
    const int classes = (is_branch(kind) ? 1 : 0) +
                        (is_load(kind) ? 1 : 0) + (is_store(kind) ? 1 : 0);
    EXPECT_LE(classes, 1) << "OpKind " << k << " in multiple classes";
    if (is_load(kind) || is_store(kind)) {
      EXPECT_GT(access_bytes(kind), 0u);
    } else {
      EXPECT_EQ(access_bytes(kind), 0u);
    }
    if (is_branch(kind)) {
      EXPECT_FALSE(writes_rd(kind));
      EXPECT_TRUE(is_terminator(kind));
    }
    if (is_store(kind)) {
      EXPECT_FALSE(writes_rd(kind));
    }
    if (is_load(kind)) {
      EXPECT_TRUE(writes_rd(kind));
    }
  }
  EXPECT_TRUE(is_terminator(OpKind::kJal));
  EXPECT_TRUE(is_terminator(OpKind::kJalr));
  EXPECT_TRUE(is_terminator(OpKind::kEcall));
  EXPECT_TRUE(is_terminator(OpKind::kIllegal));
  EXPECT_FALSE(is_terminator(OpKind::kAdd));
  EXPECT_FALSE(is_terminator(OpKind::kLw));
}

}  // namespace
}  // namespace convolve::tee
