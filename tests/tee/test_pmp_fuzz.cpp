// Differential fuzzing of the PMP unit against an interval-semantics
// oracle: random entry programs, random accesses, both implementations
// must agree on every decision. This is how we gain confidence in the one
// hardware mechanism every isolation property in this repository rests on.
#include <gtest/gtest.h>

#include <optional>

#include "convolve/common/rng.hpp"
#include "convolve/tee/pmp.hpp"

namespace convolve::tee {
namespace {

struct RefEntry {
  bool active = false;
  std::uint64_t lo = 0, hi = 0;  // [lo, hi)
  bool r = false, w = false, x = false, locked = false;
};

// Straightforward reference: first entry whose interval overlaps decides;
// full containment required, partial overlap faults; M passes unlocked.
bool reference_check(const std::vector<RefEntry>& entries, std::uint64_t addr,
                     std::uint64_t len, PrivMode mode, AccessType type) {
  if (len == 0) return true;
  for (const auto& e : entries) {
    if (!e.active || e.hi <= e.lo) continue;
    const bool overlaps = addr < e.hi && addr + len > e.lo;
    if (!overlaps) continue;
    const bool contained = addr >= e.lo && addr + len <= e.hi;
    if (!contained) return false;
    if (mode == PrivMode::kMachine && !e.locked) return true;
    switch (type) {
      case AccessType::kRead: return e.r;
      case AccessType::kWrite: return e.w;
      case AccessType::kExecute: return e.x;
    }
  }
  return mode == PrivMode::kMachine;
}

TEST(PmpFuzz, MatchesIntervalOracleOnRandomPrograms) {
  Xoshiro256 rng(0xF022);
  for (int program = 0; program < 60; ++program) {
    PmpUnit pmp;
    std::vector<RefEntry> reference(PmpUnit::kEntries);

    // Random NAPOT entries (the region shape every subsystem here uses).
    const int active_entries = 1 + static_cast<int>(rng.uniform(8));
    for (int i = 0; i < active_entries; ++i) {
      const int index = static_cast<int>(rng.uniform(PmpUnit::kEntries));
      const std::uint64_t size = 8ull << rng.uniform(10);  // 8B .. 4KiB
      const std::uint64_t base = rng.uniform(64) * size;
      PmpEntry entry;
      entry.mode = PmpAddressMode::kNapot;
      entry.address = PmpUnit::encode_napot(base, size);
      entry.read = rng.next_bit();
      entry.write = rng.next_bit();
      entry.execute = rng.next_bit();
      entry.locked = (rng.uniform(8) == 0);
      if (reference[static_cast<std::size_t>(index)].locked) continue;
      pmp.set_entry(index, entry);
      auto& ref = reference[static_cast<std::size_t>(index)];
      ref.active = true;
      ref.lo = base;
      ref.hi = base + size;
      ref.r = entry.read;
      ref.w = entry.write;
      ref.x = entry.execute;
      ref.locked = entry.locked;
    }

    for (int probe = 0; probe < 300; ++probe) {
      const std::uint64_t addr = rng.uniform(1 << 16);
      const std::uint64_t len = 1 + rng.uniform(16);
      const PrivMode mode = static_cast<PrivMode>(
          std::array<int, 3>{0, 1, 3}[rng.uniform(3)]);
      const AccessType type =
          static_cast<AccessType>(rng.uniform(3));
      ASSERT_EQ(pmp.check(addr, len, mode, type),
                reference_check(reference, addr, len, mode, type))
          << "program " << program << " addr " << addr << " len " << len
          << " mode " << static_cast<int>(mode) << " type "
          << static_cast<int>(type);
    }
  }
}

}  // namespace
}  // namespace convolve::tee
