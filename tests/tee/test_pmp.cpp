#include "convolve/tee/pmp.hpp"

#include <gtest/gtest.h>

namespace convolve::tee {
namespace {

PmpEntry napot(std::uint64_t base, std::uint64_t size, bool r, bool w, bool x,
               bool locked = false) {
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(base, size);
  e.read = r;
  e.write = w;
  e.execute = x;
  e.locked = locked;
  return e;
}

TEST(Pmp, UnmatchedMachinePassesSupervisorFails) {
  PmpUnit pmp;
  EXPECT_TRUE(pmp.check(0x1000, 4, PrivMode::kMachine, AccessType::kRead));
  EXPECT_FALSE(pmp.check(0x1000, 4, PrivMode::kSupervisor, AccessType::kRead));
  EXPECT_FALSE(pmp.check(0x1000, 4, PrivMode::kUser, AccessType::kWrite));
}

TEST(Pmp, NapotRegionGrantsConfiguredPermissions) {
  PmpUnit pmp;
  pmp.set_entry(0, napot(0x4000, 0x1000, true, false, false));
  EXPECT_TRUE(pmp.check(0x4000, 4, PrivMode::kUser, AccessType::kRead));
  EXPECT_TRUE(pmp.check(0x4ffc, 4, PrivMode::kUser, AccessType::kRead));
  EXPECT_FALSE(pmp.check(0x4000, 4, PrivMode::kUser, AccessType::kWrite));
  EXPECT_FALSE(pmp.check(0x4000, 4, PrivMode::kUser, AccessType::kExecute));
  // Outside the region: unmatched -> denied for U.
  EXPECT_FALSE(pmp.check(0x5000, 4, PrivMode::kUser, AccessType::kRead));
  EXPECT_FALSE(pmp.check(0x3ffc, 4, PrivMode::kUser, AccessType::kRead));
}

TEST(Pmp, MachineModeIgnoresUnlockedEntries) {
  PmpUnit pmp;
  pmp.set_entry(0, napot(0x4000, 0x1000, false, false, false));
  EXPECT_TRUE(pmp.check(0x4000, 4, PrivMode::kMachine, AccessType::kWrite));
}

TEST(Pmp, LockedEntryAppliesToMachineMode) {
  PmpUnit pmp;
  pmp.set_entry(0, napot(0x4000, 0x1000, true, false, false, true));
  EXPECT_TRUE(pmp.check(0x4000, 4, PrivMode::kMachine, AccessType::kRead));
  EXPECT_FALSE(pmp.check(0x4000, 4, PrivMode::kMachine, AccessType::kWrite));
}

TEST(Pmp, LockedEntryCannotBeReprogrammed) {
  PmpUnit pmp;
  pmp.set_entry(0, napot(0x4000, 0x1000, true, true, true, true));
  EXPECT_THROW(pmp.set_entry(0, PmpEntry{}), std::logic_error);
  // But survives clear_unlocked and dies on reset.
  pmp.clear_unlocked();
  EXPECT_TRUE(pmp.check(0x4000, 4, PrivMode::kUser, AccessType::kRead));
  pmp.reset();
  EXPECT_FALSE(pmp.check(0x4000, 4, PrivMode::kUser, AccessType::kRead));
  EXPECT_NO_THROW(pmp.set_entry(0, PmpEntry{}));
}

TEST(Pmp, FirstMatchingEntryWins) {
  PmpUnit pmp;
  // Entry 0 denies a subregion; entry 1 allows the enclosing region.
  pmp.set_entry(0, napot(0x4000, 0x1000, false, false, false));
  pmp.set_entry(1, napot(0x4000, 0x4000, true, true, true));
  EXPECT_FALSE(pmp.check(0x4000, 4, PrivMode::kUser, AccessType::kRead));
  EXPECT_TRUE(pmp.check(0x5000, 4, PrivMode::kUser, AccessType::kRead));
}

TEST(Pmp, TorRangeUsesPreviousEntryAddress) {
  PmpUnit pmp;
  PmpEntry bound;  // entry 0 supplies the lower bound via its address
  bound.mode = PmpAddressMode::kOff;
  bound.address = 0x2000 >> 2;
  pmp.set_entry(0, bound);
  PmpEntry tor;
  tor.mode = PmpAddressMode::kTor;
  tor.address = 0x3000 >> 2;
  tor.read = true;
  pmp.set_entry(1, tor);
  EXPECT_TRUE(pmp.check(0x2000, 4, PrivMode::kUser, AccessType::kRead));
  EXPECT_TRUE(pmp.check(0x2ffc, 4, PrivMode::kUser, AccessType::kRead));
  EXPECT_FALSE(pmp.check(0x1ffc, 4, PrivMode::kUser, AccessType::kRead));
  EXPECT_FALSE(pmp.check(0x3000, 4, PrivMode::kUser, AccessType::kRead));
}

TEST(Pmp, TorEntryZeroStartsAtAddressZero) {
  PmpUnit pmp;
  PmpEntry tor;
  tor.mode = PmpAddressMode::kTor;
  tor.address = 0x1000 >> 2;
  tor.read = true;
  pmp.set_entry(0, tor);
  EXPECT_TRUE(pmp.check(0, 4, PrivMode::kUser, AccessType::kRead));
  EXPECT_FALSE(pmp.check(0x1000, 4, PrivMode::kUser, AccessType::kRead));
}

TEST(Pmp, Na4CoversExactlyFourBytes) {
  PmpUnit pmp;
  PmpEntry e;
  e.mode = PmpAddressMode::kNa4;
  e.address = 0x80 >> 2;
  e.read = true;
  pmp.set_entry(0, e);
  EXPECT_TRUE(pmp.check(0x80, 4, PrivMode::kUser, AccessType::kRead));
  EXPECT_FALSE(pmp.check(0x84, 4, PrivMode::kUser, AccessType::kRead));
}

TEST(Pmp, PartialOverlapFaults) {
  PmpUnit pmp;
  pmp.set_entry(0, napot(0x4000, 0x1000, true, true, true));
  // Access straddling the region boundary faults even for M-mode reads
  // through a permissive entry (matching is all-or-nothing).
  EXPECT_FALSE(pmp.check(0x4ffc, 8, PrivMode::kUser, AccessType::kRead));
}

TEST(Pmp, NapotEncodingValidation) {
  EXPECT_THROW(PmpUnit::encode_napot(0x4000, 6), std::invalid_argument);
  EXPECT_THROW(PmpUnit::encode_napot(0x4000, 0x3000), std::invalid_argument);
  EXPECT_THROW(PmpUnit::encode_napot(0x100, 0x200), std::invalid_argument);
  EXPECT_NO_THROW(PmpUnit::encode_napot(0x400, 0x400));
}

TEST(Pmp, IndexValidation) {
  PmpUnit pmp;
  EXPECT_THROW(pmp.set_entry(-1, PmpEntry{}), std::out_of_range);
  EXPECT_THROW(pmp.set_entry(16, PmpEntry{}), std::out_of_range);
  EXPECT_THROW(pmp.entry(16), std::out_of_range);
}

TEST(Pmp, ZeroLengthAccessAllowed) {
  PmpUnit pmp;
  EXPECT_TRUE(pmp.check(0x1234, 0, PrivMode::kUser, AccessType::kRead));
}

// Property sweep: for a NAPOT region, check() must agree with the
// mathematical definition across many addresses and sizes.
class PmpNapotSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PmpNapotSweep, MatchesIntervalSemantics) {
  const std::uint64_t size = GetParam();
  const std::uint64_t base = 4 * size;  // aligned by construction
  PmpUnit pmp;
  pmp.set_entry(0, napot(base, size, true, false, false));
  for (std::uint64_t addr = base - 16; addr < base + size + 16; addr += 4) {
    const bool inside = addr >= base && addr + 4 <= base + size;
    EXPECT_EQ(pmp.check(addr, 4, PrivMode::kUser, AccessType::kRead), inside)
        << "size " << size << " addr " << addr;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PmpNapotSweep,
                         ::testing::Values(8u, 16u, 64u, 4096u, 65536u));

}  // namespace
}  // namespace convolve::tee
