// Security flight recorder end-to-end: every request outcome the enclave
// service can produce must land in the event log attributed to its
// {tenant, seq}, the event multiset must be identical at every thread
// count, and the offline obs_report join must reproduce the service's
// own stats fold (per-status counts, p50/p99) from the exported
// artifacts alone. The obs_report library tests at the bottom run in
// both build flavors; the event tests need CONVOLVE_TELEMETRY=ON.
#include "convolve/common/obs_report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "convolve/common/json.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/common/telemetry.hpp"
#include "convolve/tee/service/enclave_service.hpp"

namespace convolve::tee::service {
namespace {

namespace rv = rv32asm;

Bytes sum_input_program(int len) {
  return rv::assemble({
      rv::auipc(6, 0),
      rv::addi(5, 0, 0),
      rv::addi(7, 0, 0),
      rv::addi(8, 0, len),
      rv::add(9, 6, 7),
      rv::lbu(10, 9, 0x600),
      rv::add(5, 5, 10),
      rv::addi(7, 7, 1),
      rv::bne(7, 8, -16),
      rv::sw(5, 6, 0x700),
      rv::ecall(),
  });
}

struct ServiceWorld {
  Machine machine{1 << 20};
  BootRecord boot;
  std::unique_ptr<SecurityMonitor> sm;
  int enclave = -1;

  explicit ServiceWorld(const Bytes& binary) {
    const Bootrom rom({false}, DeviceKeys::from_entropy(Bytes(32, 0x11)));
    boot = rom.boot(Bytes(4096, 0xAB));
    sm = std::make_unique<SecurityMonitor>(machine, boot, SmConfig{});
    enclave = sm->create_enclave(binary, 8192);
  }

  EnclaveService make_service(const ServiceConfig& config = {}) const {
    return EnclaveService(MachineSnapshot::freeze(machine, *sm), config);
  }
};

Request run_request(int enclave, std::uint32_t input_len = 8) {
  Request r;
  r.kind = RequestKind::kRun;
  r.enclave = enclave;
  r.max_steps = 100000;
  r.input_offset = 0x600;
  r.input_len = input_len;
  r.result_offset = 0x700;
  r.result_len = 4;
  return r;
}

#if CONVOLVE_TELEMETRY_ENABLED

namespace tel = convolve::telemetry;

std::vector<tel::Event> events_of_kind(const std::vector<tel::Event>& all,
                                       tel::EventKind kind) {
  std::vector<tel::Event> out;
  for (const auto& e : all) {
    if (e.kind == static_cast<std::uint8_t>(kind)) out.push_back(e);
  }
  return out;
}

// --- Attribution: one scenario per security-relevant outcome -----------

TEST(ObsEvents, OkRunsEmitRequestDoneAndCowBurst) {
  tel::reset_events();
  ServiceWorld w(sum_input_program(8));
  auto service = w.make_service();
  Request req = run_request(w.enclave);
  req.tenant = 0;
  service.run_batch({req, req, req});

  const auto all = tel::collect_events();
  const auto done = events_of_kind(all, tel::EventKind::kRequestDone);
  ASSERT_EQ(done.size(), 3u);
  std::vector<std::uint64_t> seqs;
  for (const auto& e : done) {
    seqs.push_back(e.seq);
    EXPECT_EQ(e.tenant, 0);
    EXPECT_EQ(e.fork_id, e.seq + 1);  // fork ids are seq+1 by construction
    // code = (op << 4) | status: a kRun that ended kOk is 0x00.
    EXPECT_EQ(e.code, 0x00);
    EXPECT_GT(e.value, 0u);  // value carries retired steps
  }
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2}));
  // Forking off the snapshot materialized CoW pages for each request.
  const auto cow = events_of_kind(all, tel::EventKind::kCowBurst);
  EXPECT_GE(cow.size(), 3u);
  for (const auto& e : cow) EXPECT_GT(e.value, 0u);
  tel::reset_events();
}

TEST(ObsEvents, PmpFaultCarriesAccessTypeAndAddress) {
  tel::reset_events();
  // Escape attempt: load from OS memory at 0x80000.
  ServiceWorld w(rv::assemble({
      rv::lui(1, 0x80),
      rv::lw(2, 1, 0),
      rv::ecall(),
  }));
  auto service = w.make_service();
  Request escape;
  escape.kind = RequestKind::kRun;
  escape.enclave = w.enclave;
  escape.max_steps = 100;
  const auto responses = service.run_batch({escape});
  ASSERT_EQ(responses[0].status, Status::kTrap);

  const auto all = tel::collect_events();
  const auto faults = events_of_kind(all, tel::EventKind::kPmpFault);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].seq, 0u);
  EXPECT_EQ(faults[0].code, 0);  // 0 = load access fault
  EXPECT_EQ(faults[0].value, 0x80000u);
  const auto done = events_of_kind(all, tel::EventKind::kRequestDone);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].code & 0x0f, static_cast<int>(Status::kTrap));
  tel::reset_events();
}

TEST(ObsEvents, StepLimitAndShedAndSealRejectAttributed) {
  tel::reset_events();
  // Step limit: an infinite loop against a small budget.
  ServiceWorld loop(rv::assemble({rv::jal(0, 0)}));
  auto loop_service = loop.make_service();
  Request runaway;
  runaway.kind = RequestKind::kRun;
  runaway.enclave = loop.enclave;
  runaway.max_steps = 500;
  loop_service.run_batch({runaway});
  auto all = tel::collect_events();
  auto limited = events_of_kind(all, tel::EventKind::kStepLimit);
  ASSERT_EQ(limited.size(), 1u);
  EXPECT_EQ(limited[0].seq, 0u);
  EXPECT_EQ(limited[0].value, 500u);

  // Queue-cap shed: the fourth request bounces with code 1.
  tel::reset_events();
  ServiceWorld w(sum_input_program(4));
  ServiceConfig capped;
  capped.max_pending = 3;
  auto svc = w.make_service(capped);
  for (int i = 0; i < 5; ++i) svc.submit(run_request(w.enclave, 4));
  svc.drain();
  all = tel::collect_events();
  const auto sheds = events_of_kind(all, tel::EventKind::kTdmShed);
  ASSERT_EQ(sheds.size(), 2u);
  for (const auto& e : sheds) {
    EXPECT_GE(e.seq, 3u);
    EXPECT_EQ(e.code, 1);  // 1 = queue cap (0 = TDM wheel)
  }
  // Shed requests still answer a request_done (status kRejected).
  int rejected_done = 0;
  for (const auto& e : events_of_kind(all, tel::EventKind::kRequestDone)) {
    if ((e.code & 0x0f) == static_cast<int>(Status::kRejected)) {
      ++rejected_done;
    }
  }
  EXPECT_EQ(rejected_done, 2);

  // Seal reject: a tampered blob fails AEAD authentication (code 1).
  tel::reset_events();
  auto seal_service = w.make_service();
  Request seal;
  seal.kind = RequestKind::kSeal;
  seal.enclave = w.enclave;
  seal.payload = Bytes{9, 9, 9, 9};
  const auto sealed = seal_service.run_batch({seal});
  ASSERT_EQ(sealed[0].status, Status::kOk) << sealed[0].error;
  Request unseal;
  unseal.kind = RequestKind::kUnseal;
  unseal.enclave = w.enclave;
  unseal.payload = sealed[0].data;
  unseal.payload[unseal.payload.size() / 2] ^= 1;
  auto tamper_service = w.make_service();
  tel::reset_events();
  const auto bad = tamper_service.run_batch({unseal});
  EXPECT_EQ(bad[0].status, Status::kError);
  all = tel::collect_events();
  const auto rejects = events_of_kind(all, tel::EventKind::kSealReject);
  ASSERT_EQ(rejects.size(), 1u);
  EXPECT_EQ(rejects[0].seq, 0u);
  EXPECT_EQ(rejects[0].code, 1);  // 1 = auth failure (0 = malformed blob)
  tel::reset_events();
}

// --- Determinism: the event multiset is a function of the batch --------

TEST(ObsEvents, EventMultisetIdenticalAcrossThreadCounts) {
  using Key = std::tuple<std::uint8_t, std::uint8_t, std::uint64_t,
                         std::uint32_t, std::uint8_t, std::uint8_t,
                         std::uint64_t>;
  ServiceWorld w(sum_input_program(16));
  auto run_at = [&](int threads) {
    par::ScopedThreadCount guard(threads);
    tel::reset_events();
    auto service = w.make_service();
    std::vector<Request> batch;
    for (int i = 0; i < 24; ++i) {
      Request r = run_request(w.enclave, 16);
      r.max_steps = (i % 3 == 0) ? 50 : 100000;  // mix in step-limited runs
      batch.push_back(r);
    }
    service.run_batch(batch);
    // Everything except the wall-clock timestamp participates in the
    // multiset: payload fields are deterministic, t_ns is not.
    std::vector<Key> keys;
    for (const auto& e : tel::collect_events()) {
      keys.emplace_back(e.kind, e.tenant, e.seq, e.fork_id, e.enclave,
                        e.code, e.value);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  const auto base = run_at(1);
  EXPECT_FALSE(base.empty());
  for (int threads : {2, 4, 7}) {
    EXPECT_EQ(run_at(threads), base) << threads << " threads";
  }
  tel::reset_events();
}

// --- obs_report reproduces the service's own stats fold ----------------

TEST(ObsReport, ReproducesServiceStatsFoldFromArtifacts) {
  tel::reset_all_metrics();
  tel::reset_events();
  tel::reset_trace();

  ServiceWorld w(sum_input_program(8));
  ServiceConfig config;
  config.tdm_period = 8;
  config.tdm_max_wait = 8;
  config.tenant_slots = {{0, 2, 4, 6}, {1, 3, 5, 7}};
  auto service = w.make_service(config);
  std::vector<Request> batch;
  for (int i = 0; i < 32; ++i) {
    Request r = run_request(w.enclave, 8);
    r.tenant = i % 2;
    r.max_steps = (i % 5 == 0) ? 40 : 100000;  // mix step-limited runs in
    batch.push_back(r);
  }
  service.run_batch(batch);
  const ServiceStats& stats = service.stats();

  // The join works from exported artifacts only -- no service handle.
  const obs::Report report =
      obs::build_report(tel::events_jsonl(), tel::snapshot().to_json(),
                        tel::chrome_trace_json());

  EXPECT_EQ(report.requests, stats.submitted);
  EXPECT_EQ(report.by_status[static_cast<int>(Status::kOk)], stats.ok);
  EXPECT_EQ(report.by_status[static_cast<int>(Status::kRejected)],
            stats.rejected);
  EXPECT_EQ(report.by_status[static_cast<int>(Status::kStepLimit)],
            stats.step_limited);
  EXPECT_EQ(report.latency_count, stats.latency_ns.count);
  EXPECT_EQ(report.p50_ns, stats.latency_ns.percentile(50));
  EXPECT_EQ(report.p99_ns, stats.latency_ns.percentile(99));

  // Per-tenant: both tenants present, request counts split the total.
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].requests + report.tenants[1].requests,
            report.requests);
  for (const auto& t : report.tenants) {
    EXPECT_GT(t.latency_count, 0u);
    EXPECT_LE(t.p50_ns, t.p99_ns);
  }
  // Trace corroboration: every executed request's span joined back.
  EXPECT_EQ(report.spans_joined, stats.completed);
  EXPECT_EQ(report.spans_unmatched, 0u);
  EXPECT_EQ(report.events_dropped, 0u);

  // The JSON rendering parses and carries the same global fold.
  const auto root = json::parse(obs::to_json(report));
  ASSERT_TRUE(root.is_object());
  const auto* requests = root.find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(requests->number), report.requests);
  ASSERT_NE(root.find("tenants"), nullptr);
  EXPECT_TRUE(root.find("tenants")->is_array());
  tel::reset_events();
  tel::reset_trace();
}

#endif  // CONVOLVE_TELEMETRY_ENABLED

// --- obs_report library (both build flavors) ---------------------------

TEST(ObsReport, StatusAndOpEncodingPinnedToServiceEnums) {
  // obs_report decodes request_done codes with its own tables; they must
  // match the service enums bit for bit.
  EXPECT_EQ(obs::kStatusCount, 5);
  EXPECT_EQ(obs::kOpCount, 4);
  EXPECT_EQ(static_cast<int>(Status::kOk), 0);
  EXPECT_EQ(static_cast<int>(Status::kRejected), 1);
  EXPECT_EQ(static_cast<int>(Status::kTrap), 2);
  EXPECT_EQ(static_cast<int>(Status::kStepLimit), 3);
  EXPECT_EQ(static_cast<int>(Status::kError), 4);
  EXPECT_STREQ(obs::status_name(static_cast<int>(Status::kOk)), "ok");
  EXPECT_STREQ(obs::status_name(static_cast<int>(Status::kRejected)),
               "rejected");
  EXPECT_STREQ(obs::status_name(static_cast<int>(Status::kTrap)), "trap");
  EXPECT_STREQ(obs::status_name(static_cast<int>(Status::kStepLimit)),
               "step_limit");
  EXPECT_STREQ(obs::status_name(static_cast<int>(Status::kError)), "error");
  EXPECT_EQ(static_cast<int>(RequestKind::kRun), 0);
  EXPECT_EQ(static_cast<int>(RequestKind::kAttest), 1);
  EXPECT_EQ(static_cast<int>(RequestKind::kSeal), 2);
  EXPECT_EQ(static_cast<int>(RequestKind::kUnseal), 3);
  EXPECT_STREQ(obs::op_name(static_cast<int>(RequestKind::kRun)), "run");
  EXPECT_STREQ(obs::op_name(static_cast<int>(RequestKind::kAttest)),
               "attest");
  EXPECT_STREQ(obs::op_name(static_cast<int>(RequestKind::kSeal)), "seal");
  EXPECT_STREQ(obs::op_name(static_cast<int>(RequestKind::kUnseal)),
               "unseal");
}

TEST(ObsReport, EmptyArtifactsYieldEmptyReportWithNote) {
  const obs::Report report = obs::build_report("", "", "");
  EXPECT_EQ(report.events, 0u);
  EXPECT_EQ(report.requests, 0u);
  EXPECT_TRUE(report.tenants.empty());
  EXPECT_FALSE(report.has_outliers);
  EXPECT_FALSE(report.notes.empty());  // "no events" is worth a note
  // Renderings still work on the empty report.
  EXPECT_FALSE(obs::to_text(report).empty());
  EXPECT_NO_THROW(json::parse(obs::to_json(report)));
}

namespace {
std::string synthetic_line(const char* kind, int tenant, int seq, int code,
                           int value) {
  std::string s = "{\"t_ns\": 1, \"kind\": \"";
  s += kind;
  s += "\", \"tenant\": " + std::to_string(tenant);
  s += ", \"seq\": " + std::to_string(seq);
  s += ", \"fork\": " + std::to_string(seq + 1);
  s += ", \"enclave\": 0, \"code\": " + std::to_string(code);
  s += ", \"value\": " + std::to_string(value) + "}\n";
  return s;
}
}  // namespace

TEST(ObsReport, FlagsTenantWithOutlierShedRate) {
  // Four tenants, ten requests each; tenant 3 additionally sheds nine
  // times. Its shed rate sits far above the population mean.
  std::string jsonl;
  int seq = 0;
  for (int tenant = 0; tenant < 4; ++tenant) {
    for (int i = 0; i < 10; ++i) {
      jsonl += synthetic_line("request_done", tenant, seq++, 0x00, 100);
    }
  }
  for (int i = 0; i < 9; ++i) {
    jsonl += synthetic_line("tdm_shed", 3, seq++, 0, 2);
  }
  const obs::Report report = obs::build_report(jsonl, "", "", 1.0);
  ASSERT_EQ(report.tenants.size(), 4u);
  EXPECT_TRUE(report.has_outliers);
  for (const auto& t : report.tenants) {
    if (t.tenant == 3) {
      EXPECT_TRUE(t.outlier);
      EXPECT_GT(t.z_shed, 1.0);
      EXPECT_EQ(t.sheds, 9u);
    } else {
      EXPECT_FALSE(t.outlier);
    }
  }
  // The same population under a huge threshold flags nobody.
  EXPECT_FALSE(obs::build_report(jsonl, "", "", 100.0).has_outliers);
}

TEST(ObsReport, MalformedLinesAreSkippedAndNoted) {
  std::string jsonl = synthetic_line("request_done", 0, 0, 0x00, 10);
  jsonl += "this is not json\n";
  jsonl += synthetic_line("pmp_fault", 0, 1, 0, 0x80000);
  const obs::Report report = obs::build_report(jsonl, "{ broken", "");
  EXPECT_EQ(report.events, 2u);
  EXPECT_EQ(report.requests, 1u);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].fault_events, 1u);
  EXPECT_FALSE(report.notes.empty());
}

}  // namespace
}  // namespace convolve::tee::service
