#include "convolve/tee/machine.hpp"

#include <gtest/gtest.h>

namespace convolve::tee {
namespace {

TEST(Machine, MachineModeCanReadWrite) {
  Machine m(64 * 1024);
  const Bytes data = {1, 2, 3, 4};
  m.store(0x100, data, PrivMode::kMachine);
  EXPECT_EQ(m.load(0x100, 4, PrivMode::kMachine), data);
}

TEST(Machine, SupervisorDeniedWithoutPmpEntry) {
  Machine m(64 * 1024);
  EXPECT_THROW(m.load(0x100, 4, PrivMode::kSupervisor), AccessFault);
  EXPECT_THROW(m.store(0x100, Bytes{1}, PrivMode::kUser), AccessFault);
}

TEST(Machine, SupervisorAllowedThroughPmpEntry) {
  Machine m(64 * 1024);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x1000, 0x1000);
  e.read = true;
  e.write = true;
  m.pmp().set_entry(0, e);
  m.store(0x1000, Bytes{9}, PrivMode::kSupervisor);
  EXPECT_EQ(m.load_byte(0x1000, PrivMode::kSupervisor), 9);
}

TEST(Machine, OutOfBoundsFaults) {
  Machine m(4096);
  EXPECT_THROW(m.load(4095, 2, PrivMode::kMachine), AccessFault);
  EXPECT_THROW(m.store(4096, Bytes{1}, PrivMode::kMachine), AccessFault);
}

TEST(Machine, AccessFaultCarriesDetails) {
  Machine m(4096);
  try {
    m.load(0x20, 4, PrivMode::kUser);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.address, 0x20u);
    EXPECT_EQ(fault.access, AccessType::kRead);
  }
}

TEST(Machine, ExecutePermissionIsSeparate) {
  Machine m(64 * 1024);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x2000, 0x1000);
  e.read = true;  // readable but not executable
  m.pmp().set_entry(0, e);
  EXPECT_FALSE(m.can_execute(0x2000, 16, PrivMode::kUser));
  PmpEntry ex = e;
  ex.execute = true;
  m.pmp().set_entry(0, ex);
  EXPECT_TRUE(m.can_execute(0x2000, 16, PrivMode::kUser));
}

TEST(SimStack, TracksUsageAndWatermark) {
  SimStack stack(1000);
  EXPECT_EQ(stack.used(), 0u);
  {
    StackFrame a(stack, 400);
    EXPECT_EQ(stack.used(), 400u);
    {
      StackFrame b(stack, 500);
      EXPECT_EQ(stack.used(), 900u);
    }
    EXPECT_EQ(stack.used(), 400u);
  }
  EXPECT_EQ(stack.used(), 0u);
  EXPECT_EQ(stack.high_watermark(), 900u);
}

TEST(SimStack, OverflowThrows) {
  SimStack stack(100);
  StackFrame a(stack, 60);
  EXPECT_THROW(StackFrame(stack, 50), StackOverflow);
  // State unchanged after the failed push.
  EXPECT_EQ(stack.used(), 60u);
}

TEST(SimStack, WatermarkSurvivesPop) {
  SimStack stack(1 << 20);
  stack.push(5000);
  stack.pop(5000);
  EXPECT_EQ(stack.high_watermark(), 5000u);
  stack.reset_watermark();
  EXPECT_EQ(stack.high_watermark(), 0u);
}

}  // namespace
}  // namespace convolve::tee
