#include "convolve/tee/machine.hpp"

#include <gtest/gtest.h>

namespace convolve::tee {
namespace {

TEST(Machine, MachineModeCanReadWrite) {
  Machine m(64 * 1024);
  const Bytes data = {1, 2, 3, 4};
  m.store(0x100, data, PrivMode::kMachine);
  EXPECT_EQ(m.load(0x100, 4, PrivMode::kMachine), data);
}

TEST(Machine, SupervisorDeniedWithoutPmpEntry) {
  Machine m(64 * 1024);
  EXPECT_THROW(m.load(0x100, 4, PrivMode::kSupervisor), AccessFault);
  EXPECT_THROW(m.store(0x100, Bytes{1}, PrivMode::kUser), AccessFault);
}

TEST(Machine, SupervisorAllowedThroughPmpEntry) {
  Machine m(64 * 1024);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x1000, 0x1000);
  e.read = true;
  e.write = true;
  m.pmp().set_entry(0, e);
  m.store(0x1000, Bytes{9}, PrivMode::kSupervisor);
  EXPECT_EQ(m.load_byte(0x1000, PrivMode::kSupervisor), 9);
}

TEST(Machine, OutOfBoundsFaults) {
  Machine m(4096);
  EXPECT_THROW(m.load(4095, 2, PrivMode::kMachine), AccessFault);
  EXPECT_THROW(m.store(4096, Bytes{1}, PrivMode::kMachine), AccessFault);
}

TEST(Machine, AccessFaultCarriesDetails) {
  Machine m(4096);
  try {
    m.load(0x20, 4, PrivMode::kUser);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.address, 0x20u);
    EXPECT_EQ(fault.access, AccessType::kRead);
  }
}

TEST(Machine, OutOfBoundsFaultsCarryRealAccessType) {
  // Regression: bounds faults used to be attributed to kRead regardless
  // of the access, mislabeling store/fetch trap causes in SM logs.
  Machine m(4096);
  try {
    m.store(4096, Bytes{1}, PrivMode::kMachine);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.access, AccessType::kWrite);
  }
  try {
    m.fetch32(4094, PrivMode::kMachine);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.access, AccessType::kExecute);
  }
  try {
    m.load(4095, 2, PrivMode::kMachine);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.access, AccessType::kRead);
  }
  try {
    m.fill(4000, 200, 0, PrivMode::kMachine);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.access, AccessType::kWrite);
  }
}

TEST(Machine, FillMatchesStoreSemantics) {
  Machine m(64 * 1024);
  m.fill(0x200, 64, 0xAB, PrivMode::kMachine);
  EXPECT_EQ(m.load(0x200, 64, PrivMode::kMachine), Bytes(64, 0xAB));
  // Same PMP gating as store: U-mode without a matching entry is denied.
  EXPECT_THROW(m.fill(0x200, 64, 0, PrivMode::kUser), AccessFault);
}

TEST(Machine, FastAccessorsRoundTrip) {
  Machine m(64 * 1024);
  ASSERT_TRUE(m.write32(0x100, 0xdeadbeefu, PrivMode::kMachine));
  std::uint32_t w = 0;
  ASSERT_TRUE(m.read32(0x100, PrivMode::kMachine, w));
  EXPECT_EQ(w, 0xdeadbeefu);
  std::uint16_t h = 0;
  ASSERT_TRUE(m.read16(0x102, PrivMode::kMachine, h));
  EXPECT_EQ(h, 0xdeadu);
  std::uint8_t b = 0;
  ASSERT_TRUE(m.read8(0x103, PrivMode::kMachine, b));
  EXPECT_EQ(b, 0xdeu);
  // Fast path agrees with the legacy throwing path.
  EXPECT_EQ(m.load(0x100, 4, PrivMode::kMachine), (Bytes{0xef, 0xbe, 0xad, 0xde}));
  // Out of bounds / denied: status false, no throw.
  EXPECT_FALSE(m.read32(64 * 1024 - 2, PrivMode::kMachine, w));
  EXPECT_FALSE(m.read32(0x100, PrivMode::kUser, w));
  EXPECT_FALSE(m.write8(0x100, 1, PrivMode::kUser));
}

TEST(Machine, PmpMemoInvalidatedByReprogramming) {
  Machine m(64 * 1024);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x1000, 0x1000);
  e.read = true;
  m.pmp().set_entry(0, e);
  std::uint32_t w = 0;
  ASSERT_TRUE(m.read32(0x1000, PrivMode::kUser, w));  // memoizes the window
  ASSERT_TRUE(m.read32(0x1ffc, PrivMode::kUser, w));  // memo hit
  e.read = false;
  m.pmp().set_entry(0, e);  // bumps the PMP epoch
  EXPECT_FALSE(m.read32(0x1000, PrivMode::kUser, w));
  // And the memo must not leak across privilege modes either.
  e.read = true;
  m.pmp().set_entry(0, e);
  ASSERT_TRUE(m.read32(0x1000, PrivMode::kUser, w));
  e.read = false;
  e.locked = false;
  m.pmp().set_entry(1, PmpEntry{});  // unrelated entry: epoch still bumps
  ASSERT_TRUE(m.read32(0x1000, PrivMode::kUser, w));
}

TEST(Machine, PageVersionBumpsOnStores) {
  Machine m(64 * 1024);
  const auto v0 = m.page_version(0x1000);
  m.store(0x1000, Bytes{1, 2, 3, 4}, PrivMode::kMachine);
  const auto v1 = m.page_version(0x1000);
  EXPECT_NE(v0, v1);
  ASSERT_TRUE(m.write8(0x1fff, 7, PrivMode::kMachine));
  EXPECT_NE(v1, m.page_version(0x1000));
  // A write straddling two pages bumps both.
  const auto p2 = m.page_version(0x2000);
  ASSERT_TRUE(m.write32(0x1ffe, 0x11223344u, PrivMode::kMachine));
  EXPECT_NE(p2, m.page_version(0x2000));
  // Writes elsewhere leave the page untouched.
  const auto v2 = m.page_version(0x1000);
  m.fill(0x8000, 16, 0xFF, PrivMode::kMachine);
  EXPECT_EQ(v2, m.page_version(0x1000));
}

TEST(Machine, ExecutePermissionIsSeparate) {
  Machine m(64 * 1024);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x2000, 0x1000);
  e.read = true;  // readable but not executable
  m.pmp().set_entry(0, e);
  EXPECT_FALSE(m.can_execute(0x2000, 16, PrivMode::kUser));
  PmpEntry ex = e;
  ex.execute = true;
  m.pmp().set_entry(0, ex);
  EXPECT_TRUE(m.can_execute(0x2000, 16, PrivMode::kUser));
}

TEST(SimStack, TracksUsageAndWatermark) {
  SimStack stack(1000);
  EXPECT_EQ(stack.used(), 0u);
  {
    StackFrame a(stack, 400);
    EXPECT_EQ(stack.used(), 400u);
    {
      StackFrame b(stack, 500);
      EXPECT_EQ(stack.used(), 900u);
    }
    EXPECT_EQ(stack.used(), 400u);
  }
  EXPECT_EQ(stack.used(), 0u);
  EXPECT_EQ(stack.high_watermark(), 900u);
}

TEST(SimStack, OverflowThrows) {
  SimStack stack(100);
  StackFrame a(stack, 60);
  EXPECT_THROW(StackFrame(stack, 50), StackOverflow);
  // State unchanged after the failed push.
  EXPECT_EQ(stack.used(), 60u);
}

TEST(SimStack, WatermarkSurvivesPop) {
  SimStack stack(1 << 20);
  stack.push(5000);
  stack.pop(5000);
  EXPECT_EQ(stack.high_watermark(), 5000u);
  stack.reset_watermark();
  EXPECT_EQ(stack.high_watermark(), 0u);
}

// --- Copy-on-write forking ----------------------------------------------

TEST(MachineCow, ForkSeesFrozenBytesWithoutCopying) {
  Machine master(64 * 1024);
  master.store(0x100, Bytes{1, 2, 3, 4}, PrivMode::kMachine);
  master.store(0x5000, Bytes{9, 8, 7}, PrivMode::kMachine);
  const auto image = master.freeze();
  Machine fork(image);
  EXPECT_TRUE(fork.is_fork());
  EXPECT_FALSE(master.is_fork());
  EXPECT_EQ(fork.cow_pages_materialized(), 0u);
  EXPECT_EQ(fork.load(0x100, 4, PrivMode::kMachine), (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(fork.load(0x5000, 3, PrivMode::kMachine), (Bytes{9, 8, 7}));
  // Reads alone never materialize.
  EXPECT_EQ(fork.cow_pages_materialized(), 0u);
  // The fork's pages literally alias the image until first write.
  EXPECT_EQ(fork.page_data(0), image->bytes.data());
}

TEST(MachineCow, WriteMaterializesOnlyTheTouchedPage) {
  Machine master(64 * 1024);
  master.store(0x100, Bytes{0xAA}, PrivMode::kMachine);
  const auto image = master.freeze();
  Machine fork(image);
  fork.store(0x2004, Bytes{0x55}, PrivMode::kMachine);
  EXPECT_EQ(fork.cow_pages_materialized(), 1u);
  // The touched page is private now; untouched pages still alias.
  EXPECT_NE(fork.page_data(0x2000), image->bytes.data() + 0x2000);
  EXPECT_EQ(fork.page_data(0), image->bytes.data());
  // Fork sees its write plus the inherited bytes around it.
  EXPECT_EQ(fork.load_byte(0x2004, PrivMode::kMachine), 0x55);
  EXPECT_EQ(fork.load_byte(0x100, PrivMode::kMachine), 0xAA);
  // The image and the master never change.
  EXPECT_EQ(image->bytes[0x2004], 0);
  EXPECT_EQ(master.load_byte(0x2004, PrivMode::kMachine), 0);
}

TEST(MachineCow, ForksAreMutuallyIndependent) {
  Machine master(32 * 1024);
  master.store(0, Bytes{1, 1, 1, 1}, PrivMode::kMachine);
  const auto image = master.freeze();
  Machine a(image);
  Machine b(image);
  a.store(0, Bytes{2}, PrivMode::kMachine);
  b.store(1, Bytes{3}, PrivMode::kMachine);
  EXPECT_EQ(a.load(0, 4, PrivMode::kMachine), (Bytes{2, 1, 1, 1}));
  EXPECT_EQ(b.load(0, 4, PrivMode::kMachine), (Bytes{1, 3, 1, 1}));
  EXPECT_EQ(image->bytes[0], 1);
  EXPECT_EQ(image->bytes[1], 1);
}

TEST(MachineCow, ForkInheritsPmpAndPageVersions) {
  Machine master(64 * 1024);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x1000, 0x1000);
  e.read = true;
  e.write = true;
  master.pmp().set_entry(0, e);
  master.store(0x1000, Bytes{5}, PrivMode::kSupervisor);  // bumps version
  const std::uint32_t v = master.page_version(0x1000);
  Machine fork(master.freeze());
  // PMP plan carried over: S-mode read allowed without reprogramming.
  EXPECT_EQ(fork.load_byte(0x1000, PrivMode::kSupervisor), 5);
  EXPECT_THROW(fork.load(0x8000, 1, PrivMode::kSupervisor), AccessFault);
  // Page versions carried over, and keep advancing independently.
  EXPECT_EQ(fork.page_version(0x1000), v);
  fork.store(0x1000, Bytes{6}, PrivMode::kSupervisor);
  EXPECT_EQ(fork.page_version(0x1000), v + 1);
  EXPECT_EQ(master.page_version(0x1000), v);
}

TEST(MachineCow, PageCrossingAccessesSpliceAcrossMixedPages) {
  Machine master(16 * 1024);
  master.store(0x0FFE, Bytes{0x11, 0x22, 0x33, 0x44}, PrivMode::kMachine);
  Machine fork(master.freeze());
  // Materialize only the second page, leaving the first aliased: the
  // crossing read must splice one aliased and one private page.
  fork.store(0x1800, Bytes{0xEE}, PrivMode::kMachine);
  EXPECT_EQ(fork.cow_pages_materialized(), 1u);
  std::uint32_t v = 0;
  ASSERT_TRUE(fork.read32(0x0FFE, PrivMode::kMachine, v));
  EXPECT_EQ(v, 0x44332211u);
  // A crossing write materializes both pages and lands in both.
  ASSERT_TRUE(fork.write32(0x0FFE, 0xAABBCCDD, PrivMode::kMachine));
  EXPECT_EQ(fork.cow_pages_materialized(), 2u);
  ASSERT_TRUE(fork.read32(0x0FFE, PrivMode::kMachine, v));
  EXPECT_EQ(v, 0xAABBCCDDu);
  EXPECT_EQ(master.load_byte(0x0FFE, PrivMode::kMachine), 0x11);
}

TEST(MachineCow, StoreAndFillSpanManyPages) {
  Machine master(64 * 1024);
  Machine fork(master.freeze());
  const Bytes big(3 * 4096 + 123, 0x5C);
  fork.store(0x0800, big, PrivMode::kMachine);
  EXPECT_EQ(fork.load(0x0800, big.size(), PrivMode::kMachine), big);
  fork.fill(0x3000, 8192, 0x7F, PrivMode::kMachine);
  EXPECT_EQ(fork.load_byte(0x3000, PrivMode::kMachine), 0x7F);
  EXPECT_EQ(fork.load_byte(0x4FFF, PrivMode::kMachine), 0x7F);
  // Master untouched throughout.
  EXPECT_EQ(master.load_byte(0x3000, PrivMode::kMachine), 0);
}

TEST(MachineCow, RawMemoryMaterializesEverything) {
  Machine master(32 * 1024);
  master.store(0x100, Bytes{0xA1, 0xA2}, PrivMode::kMachine);
  const auto image = master.freeze();
  Machine fork(image);
  auto ram = fork.raw_memory();
  ASSERT_EQ(ram.size(), 32u * 1024);
  EXPECT_EQ(ram[0x100], 0xA1);
  EXPECT_EQ(fork.cow_pages_materialized(), 32u * 1024 / 4096);
  // The span is private: writing through it never reaches the image.
  ram[0x100] = 0xB1;
  EXPECT_EQ(image->bytes[0x100], 0xA1);
}

TEST(MachineCow, FreezingAForkCapturesItsDivergedState) {
  Machine master(32 * 1024);
  master.store(0, Bytes{1}, PrivMode::kMachine);
  Machine fork(master.freeze());
  fork.store(0, Bytes{2}, PrivMode::kMachine);
  fork.store(0x4000, Bytes{3}, PrivMode::kMachine);
  // Re-freeze the fork (mix of materialized and aliased pages).
  Machine grandchild(fork.freeze());
  EXPECT_EQ(grandchild.load_byte(0, PrivMode::kMachine), 2);
  EXPECT_EQ(grandchild.load_byte(0x4000, PrivMode::kMachine), 3);
}

TEST(MachineCow, PartialLastPageRoundTrips) {
  // A memory size that is not a page multiple: the tail page is partial
  // and must freeze/fork/materialize without reading past the end.
  const std::size_t size = 2 * 4096 + 100;
  Machine master(size);
  master.store(size - 4, Bytes{1, 2, 3, 4}, PrivMode::kMachine);
  Machine fork(master.freeze());
  EXPECT_EQ(fork.load(size - 4, 4, PrivMode::kMachine), (Bytes{1, 2, 3, 4}));
  fork.store(size - 1, Bytes{9}, PrivMode::kMachine);
  EXPECT_EQ(fork.load_byte(size - 1, PrivMode::kMachine), 9);
  EXPECT_EQ(master.load_byte(size - 1, PrivMode::kMachine), 4);
}

}  // namespace
}  // namespace convolve::tee
