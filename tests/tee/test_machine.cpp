#include "convolve/tee/machine.hpp"

#include <gtest/gtest.h>

namespace convolve::tee {
namespace {

TEST(Machine, MachineModeCanReadWrite) {
  Machine m(64 * 1024);
  const Bytes data = {1, 2, 3, 4};
  m.store(0x100, data, PrivMode::kMachine);
  EXPECT_EQ(m.load(0x100, 4, PrivMode::kMachine), data);
}

TEST(Machine, SupervisorDeniedWithoutPmpEntry) {
  Machine m(64 * 1024);
  EXPECT_THROW(m.load(0x100, 4, PrivMode::kSupervisor), AccessFault);
  EXPECT_THROW(m.store(0x100, Bytes{1}, PrivMode::kUser), AccessFault);
}

TEST(Machine, SupervisorAllowedThroughPmpEntry) {
  Machine m(64 * 1024);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x1000, 0x1000);
  e.read = true;
  e.write = true;
  m.pmp().set_entry(0, e);
  m.store(0x1000, Bytes{9}, PrivMode::kSupervisor);
  EXPECT_EQ(m.load_byte(0x1000, PrivMode::kSupervisor), 9);
}

TEST(Machine, OutOfBoundsFaults) {
  Machine m(4096);
  EXPECT_THROW(m.load(4095, 2, PrivMode::kMachine), AccessFault);
  EXPECT_THROW(m.store(4096, Bytes{1}, PrivMode::kMachine), AccessFault);
}

TEST(Machine, AccessFaultCarriesDetails) {
  Machine m(4096);
  try {
    m.load(0x20, 4, PrivMode::kUser);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.address, 0x20u);
    EXPECT_EQ(fault.access, AccessType::kRead);
  }
}

TEST(Machine, OutOfBoundsFaultsCarryRealAccessType) {
  // Regression: bounds faults used to be attributed to kRead regardless
  // of the access, mislabeling store/fetch trap causes in SM logs.
  Machine m(4096);
  try {
    m.store(4096, Bytes{1}, PrivMode::kMachine);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.access, AccessType::kWrite);
  }
  try {
    m.fetch32(4094, PrivMode::kMachine);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.access, AccessType::kExecute);
  }
  try {
    m.load(4095, 2, PrivMode::kMachine);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.access, AccessType::kRead);
  }
  try {
    m.fill(4000, 200, 0, PrivMode::kMachine);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.access, AccessType::kWrite);
  }
}

TEST(Machine, FillMatchesStoreSemantics) {
  Machine m(64 * 1024);
  m.fill(0x200, 64, 0xAB, PrivMode::kMachine);
  EXPECT_EQ(m.load(0x200, 64, PrivMode::kMachine), Bytes(64, 0xAB));
  // Same PMP gating as store: U-mode without a matching entry is denied.
  EXPECT_THROW(m.fill(0x200, 64, 0, PrivMode::kUser), AccessFault);
}

TEST(Machine, FastAccessorsRoundTrip) {
  Machine m(64 * 1024);
  ASSERT_TRUE(m.write32(0x100, 0xdeadbeefu, PrivMode::kMachine));
  std::uint32_t w = 0;
  ASSERT_TRUE(m.read32(0x100, PrivMode::kMachine, w));
  EXPECT_EQ(w, 0xdeadbeefu);
  std::uint16_t h = 0;
  ASSERT_TRUE(m.read16(0x102, PrivMode::kMachine, h));
  EXPECT_EQ(h, 0xdeadu);
  std::uint8_t b = 0;
  ASSERT_TRUE(m.read8(0x103, PrivMode::kMachine, b));
  EXPECT_EQ(b, 0xdeu);
  // Fast path agrees with the legacy throwing path.
  EXPECT_EQ(m.load(0x100, 4, PrivMode::kMachine), (Bytes{0xef, 0xbe, 0xad, 0xde}));
  // Out of bounds / denied: status false, no throw.
  EXPECT_FALSE(m.read32(64 * 1024 - 2, PrivMode::kMachine, w));
  EXPECT_FALSE(m.read32(0x100, PrivMode::kUser, w));
  EXPECT_FALSE(m.write8(0x100, 1, PrivMode::kUser));
}

TEST(Machine, PmpMemoInvalidatedByReprogramming) {
  Machine m(64 * 1024);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x1000, 0x1000);
  e.read = true;
  m.pmp().set_entry(0, e);
  std::uint32_t w = 0;
  ASSERT_TRUE(m.read32(0x1000, PrivMode::kUser, w));  // memoizes the window
  ASSERT_TRUE(m.read32(0x1ffc, PrivMode::kUser, w));  // memo hit
  e.read = false;
  m.pmp().set_entry(0, e);  // bumps the PMP epoch
  EXPECT_FALSE(m.read32(0x1000, PrivMode::kUser, w));
  // And the memo must not leak across privilege modes either.
  e.read = true;
  m.pmp().set_entry(0, e);
  ASSERT_TRUE(m.read32(0x1000, PrivMode::kUser, w));
  e.read = false;
  e.locked = false;
  m.pmp().set_entry(1, PmpEntry{});  // unrelated entry: epoch still bumps
  ASSERT_TRUE(m.read32(0x1000, PrivMode::kUser, w));
}

TEST(Machine, PageVersionBumpsOnStores) {
  Machine m(64 * 1024);
  const auto v0 = m.page_version(0x1000);
  m.store(0x1000, Bytes{1, 2, 3, 4}, PrivMode::kMachine);
  const auto v1 = m.page_version(0x1000);
  EXPECT_NE(v0, v1);
  ASSERT_TRUE(m.write8(0x1fff, 7, PrivMode::kMachine));
  EXPECT_NE(v1, m.page_version(0x1000));
  // A write straddling two pages bumps both.
  const auto p2 = m.page_version(0x2000);
  ASSERT_TRUE(m.write32(0x1ffe, 0x11223344u, PrivMode::kMachine));
  EXPECT_NE(p2, m.page_version(0x2000));
  // Writes elsewhere leave the page untouched.
  const auto v2 = m.page_version(0x1000);
  m.fill(0x8000, 16, 0xFF, PrivMode::kMachine);
  EXPECT_EQ(v2, m.page_version(0x1000));
}

TEST(Machine, ExecutePermissionIsSeparate) {
  Machine m(64 * 1024);
  PmpEntry e;
  e.mode = PmpAddressMode::kNapot;
  e.address = PmpUnit::encode_napot(0x2000, 0x1000);
  e.read = true;  // readable but not executable
  m.pmp().set_entry(0, e);
  EXPECT_FALSE(m.can_execute(0x2000, 16, PrivMode::kUser));
  PmpEntry ex = e;
  ex.execute = true;
  m.pmp().set_entry(0, ex);
  EXPECT_TRUE(m.can_execute(0x2000, 16, PrivMode::kUser));
}

TEST(SimStack, TracksUsageAndWatermark) {
  SimStack stack(1000);
  EXPECT_EQ(stack.used(), 0u);
  {
    StackFrame a(stack, 400);
    EXPECT_EQ(stack.used(), 400u);
    {
      StackFrame b(stack, 500);
      EXPECT_EQ(stack.used(), 900u);
    }
    EXPECT_EQ(stack.used(), 400u);
  }
  EXPECT_EQ(stack.used(), 0u);
  EXPECT_EQ(stack.high_watermark(), 900u);
}

TEST(SimStack, OverflowThrows) {
  SimStack stack(100);
  StackFrame a(stack, 60);
  EXPECT_THROW(StackFrame(stack, 50), StackOverflow);
  // State unchanged after the failed push.
  EXPECT_EQ(stack.used(), 60u);
}

TEST(SimStack, WatermarkSurvivesPop) {
  SimStack stack(1 << 20);
  stack.push(5000);
  stack.pop(5000);
  EXPECT_EQ(stack.high_watermark(), 5000u);
  stack.reset_watermark();
  EXPECT_EQ(stack.high_watermark(), 0u);
}

}  // namespace
}  // namespace convolve::tee
