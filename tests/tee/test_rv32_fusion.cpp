// Macro-op fusion recognizer unit tests: fuse_rv32() must accept exactly
// the documented adjacent-pair idioms, pack the operand fields the
// handlers expect (including the pre-biased branch offset), and reject
// every precondition violation — rd == x0, source aliasing that would
// change semantics, second components that read the wrong register, and
// non-zero-test branches. bytecode_single() is covered for its kNop and
// illegal-slot rewrites.
#include <gtest/gtest.h>

#include "convolve/tee/rv32.hpp"  // rv32asm encoders + rv32_decode.hpp

namespace convolve::tee {
namespace {

namespace rv = rv32asm;

// Decode two assembled words and run the fusion recognizer on them.
bool try_fuse(std::uint32_t first, std::uint32_t second, BcOp& out) {
  return fuse_rv32(decode_rv32(first), decode_rv32(second), out);
}

BcHandler handler(const BcOp& op) { return static_cast<BcHandler>(op.handler); }

// --- Constant/address generation pairs ---------------------------------

TEST(Rv32Fusion, LuiAddiFoldsBothConstants) {
  BcOp op;
  ASSERT_TRUE(try_fuse(rv::lui(1, 0x12345), rv::addi(2, 1, 0x678), op));
  EXPECT_EQ(handler(op), BcHandler::kFusedLuiAddi);
  EXPECT_EQ(op.rd, 1);
  EXPECT_EQ(op.rs2, 2);  // second component's destination
  EXPECT_EQ(op.imm, static_cast<std::int32_t>(0x12345000));
  EXPECT_EQ(op.imm2, static_cast<std::int32_t>(0x12345678));
}

TEST(Rv32Fusion, AuipcAddiAndAuipcLw) {
  BcOp op;
  ASSERT_TRUE(try_fuse(rv::auipc(3, 0x1), rv::addi(4, 3, -8), op));
  EXPECT_EQ(handler(op), BcHandler::kFusedAuipcAddi);
  EXPECT_EQ(op.imm2, 0x1000 - 8);
  ASSERT_TRUE(try_fuse(rv::auipc(3, 0x2), rv::lw(5, 3, 0x40), op));
  EXPECT_EQ(handler(op), BcHandler::kFusedAuipcLw);
  EXPECT_EQ(op.rs2, 5);
  EXPECT_EQ(op.imm2, 0x2040);
}

TEST(Rv32Fusion, RejectsWhenSecondReadsDifferentRegister) {
  BcOp op;
  EXPECT_FALSE(try_fuse(rv::lui(1, 0x1), rv::addi(2, 3, 4), op));
  EXPECT_FALSE(try_fuse(rv::auipc(1, 0x1), rv::lw(2, 3, 4), op));
}

TEST(Rv32Fusion, RejectsWhenFirstWritesX0) {
  // a.rd == x0: the second component would read 0, not the produced
  // value, so no pair may fuse.
  BcOp op;
  EXPECT_FALSE(try_fuse(rv::lui(0, 0x1), rv::addi(2, 0, 4), op));
  EXPECT_FALSE(try_fuse(rv::or_(0, 1, 2), rv::xori(3, 0, 4), op));
  EXPECT_FALSE(try_fuse(rv::slti(0, 1, 2), rv::bne(0, 0, 8), op));
}

// --- Compare-and-branch pairs ------------------------------------------

TEST(Rv32Fusion, CmpBranchPacksPreBiasedOffset) {
  // imm2 is the branch offset + 4 so the handler computes target =
  // pair_pc + imm2 without re-reading the branch slot.
  BcOp op;
  ASSERT_TRUE(try_fuse(rv::slti(1, 2, 7), rv::bne(1, 0, -12), op));
  EXPECT_EQ(handler(op), BcHandler::kFusedSltiBnez);
  EXPECT_EQ(op.imm, 7);
  EXPECT_EQ(op.imm2, -12 + 4);
  ASSERT_TRUE(try_fuse(rv::sltu(5, 6, 7), rv::beq(0, 5, 16), op));
  EXPECT_EQ(handler(op), BcHandler::kFusedSltuBeqz);
  EXPECT_EQ(op.imm2, 16 + 4);
}

TEST(Rv32Fusion, AllCmpBranchVariantsRecognized) {
  const struct {
    std::uint32_t cmp;
    BcHandler beqz, bnez;
  } rows[] = {
      {rv::slt(1, 2, 3), BcHandler::kFusedSltBeqz, BcHandler::kFusedSltBnez},
      {rv::sltu(1, 2, 3), BcHandler::kFusedSltuBeqz, BcHandler::kFusedSltuBnez},
      {rv::slti(1, 2, 3), BcHandler::kFusedSltiBeqz, BcHandler::kFusedSltiBnez},
      {rv::sltiu(1, 2, 3), BcHandler::kFusedSltiuBeqz,
       BcHandler::kFusedSltiuBnez},
      {rv::addi(1, 2, 3), BcHandler::kFusedAddiBeqz, BcHandler::kFusedAddiBnez},
  };
  for (const auto& row : rows) {
    BcOp op;
    ASSERT_TRUE(try_fuse(row.cmp, rv::beq(1, 0, 8), op));
    EXPECT_EQ(handler(op), row.beqz);
    ASSERT_TRUE(try_fuse(row.cmp, rv::bne(1, 0, 8), op));
    EXPECT_EQ(handler(op), row.bnez);
  }
}

TEST(Rv32Fusion, RejectsBranchThatIsNotAZeroTest) {
  BcOp op;
  // Compares rd against a non-zero register, or a different register
  // against zero: not a zero test of the produced flag.
  EXPECT_FALSE(try_fuse(rv::slti(1, 2, 3), rv::bne(1, 4, 8), op));
  EXPECT_FALSE(try_fuse(rv::slti(1, 2, 3), rv::beq(5, 0, 8), op));
  // blt/bge are not fusible zero tests even against x0.
  EXPECT_FALSE(try_fuse(rv::slti(1, 2, 3), rv::blt(1, 0, 8), op));
}

// --- Shift-pair (rotate) idioms ----------------------------------------

TEST(Rv32Fusion, ShiftPairsPackBothShamts) {
  BcOp op;
  ASSERT_TRUE(try_fuse(rv::slli(1, 8, 3), rv::srli(2, 8, 29), op));
  EXPECT_EQ(handler(op), BcHandler::kFusedSlliSrli);
  EXPECT_EQ(op.rs1, 8);
  EXPECT_EQ(op.rs2, 2);
  EXPECT_EQ(op.imm, 3);
  EXPECT_EQ(op.imm2, 29);
  ASSERT_TRUE(try_fuse(rv::srli(1, 8, 7), rv::slli(2, 8, 25), op));
  EXPECT_EQ(handler(op), BcHandler::kFusedSrliSlli);
}

TEST(Rv32Fusion, ShiftPairRejectsClobberedSource) {
  // a.rd == a.rs1: the first shift overwrites the shared source, so the
  // second shift would read the wrong value if fused.
  BcOp op;
  EXPECT_FALSE(try_fuse(rv::slli(8, 8, 3), rv::srli(2, 8, 29), op));
  EXPECT_FALSE(try_fuse(rv::srli(8, 8, 3), rv::slli(2, 8, 29), op));
  // Second shift reads a different source register entirely.
  EXPECT_FALSE(try_fuse(rv::slli(1, 8, 3), rv::srli(2, 9, 29), op));
}

// --- Paired pointer bumps ----------------------------------------------

TEST(Rv32Fusion, AddiAddiRequiresIndependentSelfUpdate)
{
  BcOp op;
  ASSERT_TRUE(try_fuse(rv::addi(1, 2, 4), rv::addi(3, 3, -4), op));
  EXPECT_EQ(handler(op), BcHandler::kFusedAddiAddi);
  EXPECT_EQ(op.rs2, 3);  // the self-updating register
  EXPECT_EQ(op.imm, 4);
  EXPECT_EQ(op.imm2, -4);
  // Second addi is not a self-update.
  EXPECT_FALSE(try_fuse(rv::addi(1, 2, 4), rv::addi(3, 5, -4), op));
  // Second addi self-updates the FIRST's destination (dependent).
  EXPECT_FALSE(try_fuse(rv::addi(1, 2, 4), rv::addi(1, 1, -4), op));
  // Second addi writes x0.
  EXPECT_FALSE(try_fuse(rv::addi(1, 2, 4), rv::addi(0, 0, -4), op));
}

// --- ARX rotate-then-mix pairs -----------------------------------------

TEST(Rv32Fusion, OrXorAcceptsEitherOperandOrder) {
  BcOp op;
  ASSERT_TRUE(try_fuse(rv::or_(1, 2, 3), rv::xor_(4, 1, 5), op));
  EXPECT_EQ(handler(op), BcHandler::kFusedOrXor);
  EXPECT_EQ(op.imm, 5);   // the xor's other source
  EXPECT_EQ(op.imm2, 4);  // the xor's destination
  ASSERT_TRUE(try_fuse(rv::or_(1, 2, 3), rv::xor_(4, 5, 1), op));
  EXPECT_EQ(op.imm, 5);
  // Both xor sources alias the or result: other source is rd itself.
  ASSERT_TRUE(try_fuse(rv::or_(1, 2, 3), rv::xor_(4, 1, 1), op));
  EXPECT_EQ(op.imm, 1);
}

TEST(Rv32Fusion, OrXoriPacksImmediate) {
  BcOp op;
  ASSERT_TRUE(try_fuse(rv::or_(1, 2, 3), rv::xori(4, 1, -0x123), op));
  EXPECT_EQ(handler(op), BcHandler::kFusedOrXori);
  EXPECT_EQ(op.imm, -0x123);
  EXPECT_EQ(op.imm2, 4);
  // The xori reads some other register: no forwarding possible.
  EXPECT_FALSE(try_fuse(rv::or_(1, 2, 3), rv::xori(4, 5, 6), op));
}

// --- Single-slot rewrite -----------------------------------------------

TEST(Rv32Fusion, BytecodeSingleRewritesX0WritesToNop) {
  EXPECT_EQ(static_cast<BcHandler>(bytecode_single(decode_rv32(
                rv::addi(0, 5, 42))).handler),
            BcHandler::kNop);
  EXPECT_EQ(static_cast<BcHandler>(bytecode_single(decode_rv32(
                rv::lui(0, 0x123))).handler),
            BcHandler::kNop);
  // Loads with rd == x0 keep their access (fault semantics).
  EXPECT_EQ(static_cast<BcHandler>(bytecode_single(decode_rv32(
                rv::lw(0, 1, 0))).handler),
            BcHandler::kLw);
  // Jumps with rd == x0 keep their control transfer.
  EXPECT_EQ(static_cast<BcHandler>(bytecode_single(decode_rv32(
                rv::jal(0, 8))).handler),
            BcHandler::kJal);
}

TEST(Rv32Fusion, IllegalWordKeepsRawEncodingAsTval) {
  const std::uint32_t garbage = 0xffffffffu;
  const BcOp op = bytecode_single(decode_rv32(garbage));
  EXPECT_EQ(static_cast<BcHandler>(op.handler), BcHandler::kIllegal);
  EXPECT_EQ(static_cast<std::uint32_t>(op.imm), garbage);
}

}  // namespace
}  // namespace convolve::tee
