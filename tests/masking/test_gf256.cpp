#include "convolve/masking/gf256.hpp"

#include <gtest/gtest.h>

#include "convolve/common/rng.hpp"

namespace convolve::masking {
namespace {

TEST(Gf256, MultiplicationBasics) {
  EXPECT_EQ(gf256_mul(0, 0x57), 0);
  EXPECT_EQ(gf256_mul(1, 0x57), 0x57);
  // FIPS-197 worked example: {57} x {83} = {c1}.
  EXPECT_EQ(gf256_mul(0x57, 0x83), 0xc1);
  // {57} x {13} = {fe} (another FIPS-197 example).
  EXPECT_EQ(gf256_mul(0x57, 0x13), 0xfe);
}

TEST(Gf256, MultiplicationCommutes) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(gf256_mul(a, b), gf256_mul(b, a));
  }
}

TEST(Gf256, SboxMatchesKnownValues) {
  // Spot values of the AES S-box.
  EXPECT_EQ(aes_sbox(0x00), 0x63);
  EXPECT_EQ(aes_sbox(0x01), 0x7c);
  EXPECT_EQ(aes_sbox(0x53), 0xed);
  EXPECT_EQ(aes_sbox(0xff), 0x16);
}

TEST(Gf256, MulCircuitMatchesReference) {
  const Circuit c = gf256_mul_circuit();
  EXPECT_EQ(c.and_count(), 64);  // 8x8 partial products
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    std::vector<std::uint8_t> in(16);
    for (int bit = 0; bit < 8; ++bit) {
      in[static_cast<std::size_t>(bit)] =
          static_cast<std::uint8_t>((a >> bit) & 1);
      in[static_cast<std::size_t>(8 + bit)] =
          static_cast<std::uint8_t>((b >> bit) & 1);
    }
    const auto out = c.evaluate(in);
    std::uint8_t result = 0;
    for (int bit = 0; bit < 8; ++bit) {
      result |= static_cast<std::uint8_t>(out[static_cast<std::size_t>(bit)]
                                          << bit);
    }
    EXPECT_EQ(result, gf256_mul(a, b)) << int(a) << " * " << int(b);
  }
}

class MaskedGf256Test : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaskedGf256Test, MaskedMulIsCorrect) {
  const unsigned d = GetParam();
  RandomnessSource rnd(3);
  Xoshiro256 values(4);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<std::uint8_t>(values.uniform(256));
    const auto b = static_cast<std::uint8_t>(values.uniform(256));
    const auto ma = MaskedWord::encode(a, d, 8, rnd);
    const auto mb = MaskedWord::encode(b, d, 8, rnd);
    EXPECT_EQ(masked_gf256_mul(ma, mb, rnd).decode(), gf256_mul(a, b));
  }
}

TEST_P(MaskedGf256Test, MaskedSquareIsCorrect) {
  const unsigned d = GetParam();
  RandomnessSource rnd(5);
  for (int a = 0; a < 256; ++a) {
    const auto ma =
        MaskedWord::encode(static_cast<std::uint64_t>(a), d, 8, rnd);
    EXPECT_EQ(masked_gf256_square(ma).decode(),
              gf256_mul(static_cast<std::uint8_t>(a),
                        static_cast<std::uint8_t>(a)));
  }
}

TEST_P(MaskedGf256Test, MaskedInverseIsCorrect) {
  const unsigned d = GetParam();
  RandomnessSource rnd(6);
  for (int a = 0; a < 256; a += 7) {  // sampled sweep
    const auto ma =
        MaskedWord::encode(static_cast<std::uint64_t>(a), d, 8, rnd);
    const std::uint8_t inv = masked_gf256_inverse(ma, rnd).decode();
    if (a == 0) {
      EXPECT_EQ(inv, 0);  // AES convention: inv(0) = 0
    } else {
      EXPECT_EQ(gf256_mul(static_cast<std::uint8_t>(a), inv), 1) << a;
    }
  }
}

TEST_P(MaskedGf256Test, MaskedSboxMatchesPlainForAllInputs) {
  const unsigned d = GetParam();
  RandomnessSource rnd(7);
  for (int x = 0; x < 256; ++x) {
    const auto mx =
        MaskedWord::encode(static_cast<std::uint64_t>(x), d, 8, rnd);
    EXPECT_EQ(masked_aes_sbox(mx, rnd).decode(),
              aes_sbox(static_cast<std::uint8_t>(x)))
        << "x = " << x << " d = " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, MaskedGf256Test,
                         ::testing::Values(0u, 1u, 2u, 3u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(MaskedGf256, SboxRandomnessMatchesFormula) {
  for (unsigned d : {0u, 1u, 2u, 3u}) {
    RandomnessSource rnd(8);
    const auto mx = MaskedWord::encode(0xA5, d, 8, rnd);
    rnd.reset_counter();
    (void)masked_aes_sbox(mx, rnd);
    EXPECT_EQ(rnd.bits_drawn(), masked_sbox_random_bits(d)) << d;
    EXPECT_EQ(rnd.bits_drawn(), 4ull * 8 * 8 * d * (d + 1) / 2);
  }
}

TEST(MaskedGf256, SharesDoNotRevealSecretTrivially) {
  // At order 1 the two output shares individually must not equal the
  // S-box output systematically.
  RandomnessSource rnd(9);
  int share_equals_output = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto mx = MaskedWord::encode(0x3c, 1, 8, rnd);
    const auto out = masked_aes_sbox(mx, rnd);
    share_equals_output += (out.shares()[0] == aes_sbox(0x3c));
  }
  EXPECT_LT(share_equals_output, 20);
}

}  // namespace
}  // namespace convolve::masking
