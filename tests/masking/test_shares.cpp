#include "convolve/masking/shares.hpp"

#include <gtest/gtest.h>

namespace convolve::masking {
namespace {

class SharesTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SharesTest, EncodeDecodeRoundTrip) {
  const unsigned order = GetParam();
  RandomnessSource rnd(1234);
  for (std::uint64_t v : {0ull, 1ull, 0xffull, 0xdeadbeefull}) {
    const auto w = MaskedWord::encode(v, order, 32, rnd);
    EXPECT_EQ(w.decode(), v & 0xffffffffull);
    EXPECT_EQ(w.order(), order);
  }
}

TEST_P(SharesTest, XorIsHomomorphic) {
  const unsigned order = GetParam();
  RandomnessSource rnd(99);
  Xoshiro256 values(5);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = values.next_u64() & 0xffffffff;
    const std::uint64_t b = values.next_u64() & 0xffffffff;
    const auto ma = MaskedWord::encode(a, order, 32, rnd);
    const auto mb = MaskedWord::encode(b, order, 32, rnd);
    EXPECT_EQ((ma ^ mb).decode(), a ^ b);
  }
}

TEST_P(SharesTest, DomAndIsCorrect) {
  const unsigned order = GetParam();
  RandomnessSource rnd(7);
  Xoshiro256 values(6);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = values.next_u64() & 0xffffffff;
    const std::uint64_t b = values.next_u64() & 0xffffffff;
    const auto ma = MaskedWord::encode(a, order, 32, rnd);
    const auto mb = MaskedWord::encode(b, order, 32, rnd);
    EXPECT_EQ(MaskedWord::dom_and(ma, mb, rnd).decode(), a & b);
  }
}

TEST_P(SharesTest, NotComplementsValue) {
  const unsigned order = GetParam();
  RandomnessSource rnd(11);
  const auto w = MaskedWord::encode(0x0f0f0f0f, order, 32, rnd);
  EXPECT_EQ((~w).decode(), 0xf0f0f0f0u);
}

TEST_P(SharesTest, RotlActsOnValue) {
  const unsigned order = GetParam();
  RandomnessSource rnd(13);
  const auto w = MaskedWord::encode(0x80000001, order, 32, rnd);
  EXPECT_EQ(w.rotl(1).decode(), 0x00000003u);
  EXPECT_EQ(w.rotl(4).decode(), 0x00000018u);
}

TEST_P(SharesTest, RefreshPreservesValueChangesShares) {
  const unsigned order = GetParam();
  RandomnessSource rnd(17);
  const auto w = MaskedWord::encode(0xabcd, order, 16, rnd);
  const auto r = w.refresh(rnd);
  EXPECT_EQ(r.decode(), 0xabcdull);
  if (order > 0) {
    EXPECT_NE(r.shares(), w.shares());
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, SharesTest, ::testing::Values(0u, 1u, 2u, 3u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(Shares, RandomnessCostMatchesDomFormula) {
  // DOM-AND at order d must draw exactly d(d+1)/2 fresh words.
  for (unsigned d : {0u, 1u, 2u, 3u, 4u}) {
    RandomnessSource rnd(21);
    const auto a = MaskedWord::encode(1, d, 8, rnd);
    const auto b = MaskedWord::encode(2, d, 8, rnd);
    rnd.reset_counter();
    (void)MaskedWord::dom_and(a, b, rnd);
    EXPECT_EQ(rnd.bits_drawn(), MaskedWord::dom_and_random_bits(d, 8))
        << "order " << d;
    EXPECT_EQ(rnd.bits_drawn(), static_cast<std::uint64_t>(d) * (d + 1) / 2 * 8);
  }
}

TEST(Shares, EncodingSharesLookRandom) {
  // At order 1, share 1 must not equal the secret systematically.
  RandomnessSource rnd(31);
  int equal = 0;
  for (int i = 0; i < 200; ++i) {
    const auto w = MaskedWord::encode(0xaa, 1, 8, rnd);
    equal += (w.shares()[1] == 0xaa);
  }
  EXPECT_LT(equal, 20);  // ~200/256 expected by chance
}

TEST(Shares, IncompatibleOperandsThrow) {
  RandomnessSource rnd(41);
  const auto a = MaskedWord::encode(1, 1, 8, rnd);
  const auto b = MaskedWord::encode(1, 2, 8, rnd);
  const auto c = MaskedWord::encode(1, 1, 16, rnd);
  EXPECT_THROW((void)(a ^ b), std::invalid_argument);
  EXPECT_THROW((void)(a ^ c), std::invalid_argument);
  EXPECT_THROW(MaskedWord::dom_and(a, b, rnd), std::invalid_argument);
}

TEST(Shares, BadWidthsThrow) {
  RandomnessSource rnd(43);
  EXPECT_THROW(MaskedWord::encode(0, 1, 0, rnd), std::invalid_argument);
  EXPECT_THROW(MaskedWord::encode(0, 1, 65, rnd), std::invalid_argument);
  EXPECT_THROW(rnd.draw(0), std::invalid_argument);
  EXPECT_THROW(rnd.draw(65), std::invalid_argument);
}

TEST(Shares, FullWidth64Works) {
  RandomnessSource rnd(47);
  const std::uint64_t v = 0x123456789abcdef0ull;
  const auto w = MaskedWord::encode(v, 2, 64, rnd);
  EXPECT_EQ(w.decode(), v);
}

}  // namespace
}  // namespace convolve::masking
