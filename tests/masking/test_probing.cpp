#include "convolve/masking/probing.hpp"

#include <gtest/gtest.h>

namespace convolve::masking {
namespace {

TEST(Probing, UnmaskedAndIsInsecure) {
  // Order 0 "masking" leaves wires carrying secrets: one probe breaks it.
  const MaskedCircuit mc = mask_circuit(single_and_circuit(), 0);
  const auto report = check_probing_security(mc, 2, 1);
  EXPECT_FALSE(report.secure);
  EXPECT_EQ(report.probes.size(), 1u);
}

TEST(Probing, DomAndOrder1SecureAgainstOneProbe) {
  const MaskedCircuit mc = mask_circuit(single_and_circuit(), 1);
  const auto report = check_probing_security(mc, 2, 1);
  EXPECT_TRUE(report.secure);
  EXPECT_GT(report.probe_sets_checked, 0u);
}

TEST(Probing, DomAndOrder1BrokenByTwoProbes) {
  // Probing both shares of an input reconstructs it: order 1 cannot resist
  // two probes.
  const MaskedCircuit mc = mask_circuit(single_and_circuit(), 1);
  const auto report = check_probing_security(mc, 2, 2);
  EXPECT_FALSE(report.secure);
  EXPECT_EQ(report.probes.size(), 2u);
}

TEST(Probing, DomAndOrder2SecureAgainstTwoProbes) {
  const MaskedCircuit mc = mask_circuit(single_and_circuit(), 2);
  const auto report = check_probing_security(mc, 2, 2);
  EXPECT_TRUE(report.secure);
}

TEST(Probing, MaskedFullAdderOrder1Secure) {
  const MaskedCircuit mc = mask_circuit(full_adder_circuit(), 1);
  const auto report = check_probing_security(mc, 3, 1);
  EXPECT_TRUE(report.secure);
}

TEST(Probing, ReportsCountOfCheckedSets) {
  const MaskedCircuit mc = mask_circuit(single_and_circuit(), 1);
  const auto report = check_probing_security(mc, 2, 1);
  // One probe per gate.
  EXPECT_EQ(report.probe_sets_checked, mc.circuit.num_gates());
}

TEST(Probing, OversizedCircuitRejected) {
  // A masked 8-bit adder at order 2 has too much randomness to enumerate.
  const MaskedCircuit mc = mask_circuit(ripple_adder_circuit(8), 2);
  EXPECT_THROW(check_probing_security(mc, 16, 1), std::invalid_argument);
}

}  // namespace
}  // namespace convolve::masking
