#include "convolve/masking/masked_aes.hpp"

#include <gtest/gtest.h>

#include "convolve/crypto/aes.hpp"

namespace convolve::masking {
namespace {

class MaskedAesTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaskedAesTest, Fips197Aes128Vector) {
  const unsigned d = GetParam();
  RandomnessSource rnd(1);
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const MaskedAes aes(MaskedAes::KeySize::k128, key, d, rnd);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct, rnd);
  EXPECT_EQ(to_hex({ct, 16}), "69c4e0d86a7b0430d8cdb78070b4c55a")
      << "order " << d;
}

TEST_P(MaskedAesTest, Fips197Aes256Vector) {
  const unsigned d = GetParam();
  RandomnessSource rnd(2);
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const MaskedAes aes(MaskedAes::KeySize::k256, key, d, rnd);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct, rnd);
  EXPECT_EQ(to_hex({ct, 16}), "8ea2b7ca516745bfeafc49904b496089")
      << "order " << d;
}

TEST_P(MaskedAesTest, MatchesPlainAesOnRandomBlocks) {
  const unsigned d = GetParam();
  RandomnessSource rnd(3);
  Xoshiro256 values(4);
  Bytes key(32);
  values.fill_bytes(key);
  const MaskedAes masked(MaskedAes::KeySize::k256, key, d, rnd);
  const crypto::Aes plain(crypto::Aes::KeySize::k256, key);
  for (int trial = 0; trial < 5; ++trial) {
    std::uint8_t pt[16], expected[16], actual[16];
    for (auto& b : pt) b = static_cast<std::uint8_t>(values.uniform(256));
    plain.encrypt_block(pt, expected);
    masked.encrypt_block(pt, actual, rnd);
    EXPECT_EQ(Bytes(actual, actual + 16), Bytes(expected, expected + 16));
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, MaskedAesTest, ::testing::Values(0u, 1u, 2u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(MaskedAes, BlockRandomnessMatchesFormula) {
  for (unsigned d : {0u, 1u, 2u}) {
    RandomnessSource rnd(5);
    const Bytes key(32, 0x42);
    const MaskedAes aes(MaskedAes::KeySize::k256, key, d, rnd);
    rnd.reset_counter();
    std::uint8_t pt[16] = {}, ct[16];
    aes.encrypt_block(pt, ct, rnd);
    EXPECT_EQ(rnd.bits_drawn(),
              MaskedAes::block_random_bits(MaskedAes::KeySize::k256, d))
        << "order " << d;
  }
}

TEST(MaskedAes, RandomnessScalesAsDPairs) {
  // The Table II scaling law: fresh bits grow with d(d+1)/2.
  const auto r1 =
      MaskedAes::block_random_bits(MaskedAes::KeySize::k256, 1);
  const auto r2 =
      MaskedAes::block_random_bits(MaskedAes::KeySize::k256, 2);
  // Encode bits grow linearly, S-box bits with d(d+1)/2; the S-box part
  // dominates, so the ratio is close to (but below) 3.
  EXPECT_GT(static_cast<double>(r2) / static_cast<double>(r1), 2.8);
  EXPECT_LE(static_cast<double>(r2) / static_cast<double>(r1), 3.0);
}

TEST(MaskedAes, RejectsWrongKeyLength) {
  RandomnessSource rnd(6);
  EXPECT_THROW(MaskedAes(MaskedAes::KeySize::k128, Bytes(32, 0), 1, rnd),
               std::invalid_argument);
  EXPECT_THROW(MaskedAes(MaskedAes::KeySize::k256, Bytes(16, 0), 1, rnd),
               std::invalid_argument);
}

TEST(MaskedAes, DifferentMaskingsSameCiphertext) {
  // Two devices with different randomness streams must agree on the
  // functional output.
  const Bytes key(16, 0x24);
  RandomnessSource rnd_a(7), rnd_b(8);
  const MaskedAes a(MaskedAes::KeySize::k128, key, 2, rnd_a);
  const MaskedAes b(MaskedAes::KeySize::k128, key, 2, rnd_b);
  std::uint8_t pt[16] = {1, 2, 3}, ca[16], cb[16];
  a.encrypt_block(pt, ca, rnd_a);
  b.encrypt_block(pt, cb, rnd_b);
  EXPECT_EQ(Bytes(ca, ca + 16), Bytes(cb, cb + 16));
}

}  // namespace
}  // namespace convolve::masking
