#include "convolve/masking/circuit.hpp"

#include <gtest/gtest.h>

#include "convolve/common/rng.hpp"

namespace convolve::masking {
namespace {

TEST(Circuit, SingleAndTruthTable) {
  const Circuit c = single_and_circuit();
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const auto out = c.evaluate({static_cast<std::uint8_t>(a),
                                   static_cast<std::uint8_t>(b)});
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], a & b);
    }
  }
}

TEST(Circuit, FullAdderTruthTable) {
  const Circuit c = full_adder_circuit();
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int cin = 0; cin < 2; ++cin) {
        const auto out = c.evaluate({static_cast<std::uint8_t>(a),
                                     static_cast<std::uint8_t>(b),
                                     static_cast<std::uint8_t>(cin)});
        const int total = a + b + cin;
        EXPECT_EQ(out[0], total & 1);
        EXPECT_EQ(out[1], (total >> 1) & 1);
      }
    }
  }
}

TEST(Circuit, RippleAdderAddsCorrectly) {
  const int width = 8;
  const Circuit c = ripple_adder_circuit(width);
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.uniform(256));
    const std::uint32_t b = static_cast<std::uint32_t>(rng.uniform(256));
    std::vector<std::uint8_t> in;
    for (int i = 0; i < width; ++i) {
      in.push_back(static_cast<std::uint8_t>((a >> i) & 1));
    }
    for (int i = 0; i < width; ++i) {
      in.push_back(static_cast<std::uint8_t>((b >> i) & 1));
    }
    const auto out = c.evaluate(in);
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      sum |= static_cast<std::uint32_t>(out[i]) << i;
    }
    EXPECT_EQ(sum, a + b);
  }
}

TEST(Circuit, GateCounts) {
  const Circuit c = full_adder_circuit();
  EXPECT_EQ(c.and_count(), 2);
  EXPECT_EQ(c.xor_count(), 3);
  EXPECT_EQ(c.not_count(), 0);
  EXPECT_EQ(c.num_inputs(), 3);
}

TEST(Circuit, InvalidReferencesThrow) {
  Circuit c;
  const int a = c.add_input();
  EXPECT_THROW(c.add_and(a, 99), std::out_of_range);
  EXPECT_THROW(c.add_not(-1), std::out_of_range);
  EXPECT_THROW(c.mark_output(5), std::out_of_range);
}

TEST(Circuit, EvaluateChecksArity) {
  const Circuit c = single_and_circuit();
  EXPECT_THROW(c.evaluate({1}), std::invalid_argument);
  EXPECT_THROW(c.evaluate({1, 0}, {1}), std::invalid_argument);
}

class MaskedCircuitTest : public ::testing::TestWithParam<unsigned> {};

// The masked circuit must compute the same function for every masking of
// the inputs and every gadget randomness.
TEST_P(MaskedCircuitTest, MaskedSingleAndIsCorrect) {
  const unsigned order = GetParam();
  const Circuit plain = single_and_circuit();
  const MaskedCircuit mc = mask_circuit(plain, order);
  Xoshiro256 rng(5);
  const unsigned n_shares = order + 1;
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint8_t a = static_cast<std::uint8_t>(rng.next_bit());
    const std::uint8_t b = static_cast<std::uint8_t>(rng.next_bit());
    // Random sharing of a and b.
    std::vector<std::uint8_t> in(
        static_cast<std::size_t>(mc.circuit.num_inputs()));
    std::uint8_t acc_a = a, acc_b = b;
    for (unsigned s = 1; s < n_shares; ++s) {
      const std::uint8_t ma = static_cast<std::uint8_t>(rng.next_bit());
      const std::uint8_t mb = static_cast<std::uint8_t>(rng.next_bit());
      in[static_cast<std::size_t>(mc.input_share_base[0]) + s] = ma;
      in[static_cast<std::size_t>(mc.input_share_base[1]) + s] = mb;
      acc_a ^= ma;
      acc_b ^= mb;
    }
    in[static_cast<std::size_t>(mc.input_share_base[0])] = acc_a;
    in[static_cast<std::size_t>(mc.input_share_base[1])] = acc_b;
    std::vector<std::uint8_t> rnd(
        static_cast<std::size_t>(mc.circuit.num_randoms()));
    for (auto& r : rnd) r = static_cast<std::uint8_t>(rng.next_bit());

    const auto out = mc.circuit.evaluate(in, rnd);
    std::uint8_t result = 0;
    for (unsigned s = 0; s < n_shares; ++s) result ^= out[s];
    EXPECT_EQ(result, a & b);
  }
}

TEST_P(MaskedCircuitTest, MaskedAdderIsCorrect) {
  const unsigned order = GetParam();
  const Circuit plain = ripple_adder_circuit(4);
  const MaskedCircuit mc = mask_circuit(plain, order);
  Xoshiro256 rng(6);
  const unsigned n_shares = order + 1;
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.uniform(16));
    const std::uint32_t b = static_cast<std::uint32_t>(rng.uniform(16));
    std::vector<std::uint8_t> plain_bits;
    for (int i = 0; i < 4; ++i) {
      plain_bits.push_back(static_cast<std::uint8_t>((a >> i) & 1));
    }
    for (int i = 0; i < 4; ++i) {
      plain_bits.push_back(static_cast<std::uint8_t>((b >> i) & 1));
    }
    std::vector<std::uint8_t> in(
        static_cast<std::size_t>(mc.circuit.num_inputs()));
    for (std::size_t pi = 0; pi < plain_bits.size(); ++pi) {
      std::uint8_t acc = plain_bits[pi];
      const int base = mc.input_share_base[pi];
      for (unsigned s = 1; s < n_shares; ++s) {
        const std::uint8_t m = static_cast<std::uint8_t>(rng.next_bit());
        in[static_cast<std::size_t>(base) + s] = m;
        acc ^= m;
      }
      in[static_cast<std::size_t>(base)] = acc;
    }
    std::vector<std::uint8_t> rnd(
        static_cast<std::size_t>(mc.circuit.num_randoms()));
    for (auto& r : rnd) r = static_cast<std::uint8_t>(rng.next_bit());

    const auto out = mc.circuit.evaluate(in, rnd);
    std::uint32_t sum = 0;
    for (std::size_t o = 0; o < plain.outputs().size(); ++o) {
      std::uint8_t bit = 0;
      for (unsigned s = 0; s < n_shares; ++s) {
        bit ^= out[o * n_shares + s];
      }
      sum |= static_cast<std::uint32_t>(bit) << o;
    }
    EXPECT_EQ(sum, a + b);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, MaskedCircuitTest,
                         ::testing::Values(0u, 1u, 2u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(MaskedCircuit, RandomnessCountMatchesDomFormula) {
  // Masking a circuit with A ANDs at order d adds A*d(d+1)/2 random bits.
  const Circuit plain = toy_sbox_circuit();
  const int ands = plain.and_count();
  for (unsigned d : {0u, 1u, 2u, 3u}) {
    const MaskedCircuit mc = mask_circuit(plain, d);
    EXPECT_EQ(mc.circuit.num_randoms(),
              ands * static_cast<int>(d * (d + 1) / 2))
        << "order " << d;
  }
}

TEST(MaskedCircuit, GateBlowupIsQuadraticInOrder) {
  const Circuit plain = toy_sbox_circuit();
  const MaskedCircuit d1 = mask_circuit(plain, 1);
  const MaskedCircuit d3 = mask_circuit(plain, 3);
  // AND gadget gates grow ~ (d+1)^2; d=3 must cost well over 2x d=1.
  EXPECT_GT(d3.circuit.num_gates(), 2 * d1.circuit.num_gates());
}

}  // namespace
}  // namespace convolve::masking
