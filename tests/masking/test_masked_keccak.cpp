#include "convolve/masking/masked_keccak.hpp"

#include <gtest/gtest.h>

#include "convolve/common/rng.hpp"
#include "convolve/crypto/keccak.hpp"

namespace convolve::masking {
namespace {

std::array<std::uint64_t, 25> random_state(Xoshiro256& rng) {
  std::array<std::uint64_t, 25> s{};
  for (auto& lane : s) lane = rng.next_u64();
  return s;
}

class MaskedKeccakTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaskedKeccakTest, MatchesPlainPermutation) {
  const unsigned d = GetParam();
  Xoshiro256 rng(100 + d);
  RandomnessSource rnd(200 + d);
  for (int trial = 0; trial < 3; ++trial) {
    auto plain = random_state(rng);
    auto expected = plain;
    crypto::keccak_f1600(expected);

    auto masked = masked_keccak_encode(plain, d, rnd);
    masked_keccak_f1600(masked, rnd);
    EXPECT_EQ(masked_keccak_decode(masked), expected)
        << "order " << d << " trial " << trial;
  }
}

TEST_P(MaskedKeccakTest, EncodeDecodeRoundTrip) {
  const unsigned d = GetParam();
  Xoshiro256 rng(300 + d);
  RandomnessSource rnd(400 + d);
  const auto plain = random_state(rng);
  EXPECT_EQ(masked_keccak_decode(masked_keccak_encode(plain, d, rnd)), plain);
}

INSTANTIATE_TEST_SUITE_P(Orders, MaskedKeccakTest,
                         ::testing::Values(0u, 1u, 2u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(MaskedKeccak, RandomnessMatchesCostModelFormula) {
  // This is the formula the HADES Keccak template charges per permutation:
  // 24 rounds x 1600 chi AND gates x d(d+1)/2, drawn as 25 lane gadgets
  // of 64 bits each.
  for (unsigned d : {0u, 1u, 2u, 3u}) {
    Xoshiro256 rng(1);
    RandomnessSource rnd(2);
    auto masked = masked_keccak_encode(random_state(rng), d, rnd);
    rnd.reset_counter();
    masked_keccak_f1600(masked, rnd);
    EXPECT_EQ(rnd.bits_drawn(), masked_keccak_random_bits(d));
    EXPECT_EQ(rnd.bits_drawn(), 24ull * 1600 * d * (d + 1) / 2);
  }
}

TEST(MaskedKeccak, SharesAreRerandomizedAcrossRuns) {
  Xoshiro256 rng(5);
  RandomnessSource rnd(6);
  const auto plain = random_state(rng);
  auto a = masked_keccak_encode(plain, 1, rnd);
  auto b = masked_keccak_encode(plain, 1, rnd);
  masked_keccak_f1600(a, rnd);
  masked_keccak_f1600(b, rnd);
  // Same secret state, different shares.
  EXPECT_EQ(masked_keccak_decode(a), masked_keccak_decode(b));
  EXPECT_NE(a[0].shares(), b[0].shares());
}

TEST(MaskedKeccak, OrderZeroDegeneratesToPlain) {
  Xoshiro256 rng(7);
  RandomnessSource rnd(8);
  const auto plain = random_state(rng);
  auto masked = masked_keccak_encode(plain, 0, rnd);
  rnd.reset_counter();
  masked_keccak_f1600(masked, rnd);
  EXPECT_EQ(rnd.bits_drawn(), 0u);  // no masking randomness at order 0
}

}  // namespace
}  // namespace convolve::masking
