#include "convolve/framework/device.hpp"

#include <gtest/gtest.h>

#include "convolve/cim/attack.hpp"

namespace convolve::framework {
namespace {

Bytes entropy() { return Bytes(32, 0x61); }

TEST(Profile, PresetsAreSelfConsistent) {
  for (const auto& p :
       {speech_quality_enhancement(), acoustic_scene_analysis(),
        traffic_supervision(), satellite_imagery()}) {
    EXPECT_TRUE(p.validate().empty()) << p.name << ": " << p.validate();
  }
}

TEST(Profile, ValidationCatchesIncoherentChoices) {
  SecurityProfile p = speech_quality_enhancement();
  p.masking_order = 0;  // physical access without masking
  EXPECT_FALSE(p.validate().empty());

  SecurityProfile q = satellite_imagery();
  q.post_quantum_crypto = false;  // quantum adversary without PQC
  EXPECT_FALSE(q.validate().empty());

  SecurityProfile r = acoustic_scene_analysis();
  r.cim_countermeasures = false;
  EXPECT_FALSE(r.validate().empty());
}

TEST(Profile, SatelliteShedsSideChannelOverhead) {
  // The paper's own modularity example.
  const auto sat = satellite_imagery();
  EXPECT_FALSE(sat.physical_access);
  EXPECT_EQ(sat.masking_order, 0u);
  EXPECT_FALSE(sat.cim_countermeasures);
  EXPECT_TRUE(sat.post_quantum_crypto);
}

TEST(Device, RejectsInvalidProfile) {
  SecurityProfile bad = speech_quality_enhancement();
  bad.masking_order = 0;
  EXPECT_THROW(EdgeDevice(bad, entropy()), std::invalid_argument);
}

TEST(Device, SatelliteCheaperCryptoCoreThanTraffic) {
  const EdgeDevice sat(satellite_imagery(), entropy());
  const EdgeDevice traffic(traffic_supervision(), entropy());
  // Order-0 vs order-2 AES: the satellite sheds the masking overhead.
  EXPECT_LT(sat.cost().aes_area_ge, traffic.cost().aes_area_ge);
  EXPECT_DOUBLE_EQ(sat.cost().area_multiplier, 1.0);
  EXPECT_GT(traffic.cost().area_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(sat.cost().aes_rand_bits_per_cycle, 0.0);
}

TEST(Device, PqSelectionDrivesAttestationCosts) {
  const EdgeDevice speech(speech_quality_enhancement(), entropy());
  const EdgeDevice sat(satellite_imagery(), entropy());
  EXPECT_EQ(speech.cost().attestation_report_bytes, 1320u);
  EXPECT_EQ(sat.cost().attestation_report_bytes, 7472u);
  EXPECT_LT(speech.cost().bootrom_bytes, sat.cost().bootrom_bytes);
  EXPECT_EQ(speech.cost().sm_stack_bytes, 8u * 1024);
  EXPECT_EQ(sat.cost().sm_stack_bytes, 128u * 1024);
}

TEST(Device, TeeWorksEndToEndWhenSelected) {
  EdgeDevice device(acoustic_scene_analysis(), entropy());
  ASSERT_TRUE(device.has_tee());
  auto& sm = device.security_monitor();
  const int enclave = sm.create_enclave(Bytes(128, 0xE2), 8192);
  const auto report = sm.attest(enclave, as_bytes("scene-model-v1"));
  EXPECT_TRUE(tee::verify_report(report, sm.trust_anchor()));
  EXPECT_EQ(report.serialize().size(), tee::kPqReportSize);
}

TEST(Device, TeeAbsentWhenNotSelected) {
  SecurityProfile p = satellite_imagery();
  p.tee_enclaves = false;
  EdgeDevice device(p, entropy());
  EXPECT_FALSE(device.has_tee());
  EXPECT_THROW(device.security_monitor(), std::logic_error);
}

TEST(Device, CimCountermeasuresFollowProfile) {
  const EdgeDevice speech(speech_quality_enhancement(), entropy());
  std::vector<int> weights(64, 9);
  auto hardened = speech.make_cim_macro(weights);
  EXPECT_TRUE(hardened.config().shuffle_rows);
  EXPECT_GT(hardened.config().dummy_rows, 0);

  const EdgeDevice sat(satellite_imagery(), entropy());
  auto bare = sat.make_cim_macro(weights);
  EXPECT_FALSE(bare.config().shuffle_rows);
  EXPECT_EQ(bare.config().dummy_rows, 0);
}

TEST(Device, ProfileCountermeasuresActuallyStopTheAttack) {
  // End-to-end: the speech profile's macro resists the paper's attack;
  // the satellite profile's macro (no physical access assumed) does not.
  std::vector<int> weights(64);
  Xoshiro256 rng(4);
  for (auto& w : weights) w = static_cast<int>(rng.uniform(16));

  const EdgeDevice speech(speech_quality_enhancement(), entropy());
  auto protected_macro = speech.make_cim_macro(weights);
  cim::AttackConfig attack;
  auto protected_result = cim::run_attack(protected_macro, attack);
  cim::evaluate_against_ground_truth(protected_result, weights);
  EXPECT_LT(protected_result.accuracy, 0.5);

  const EdgeDevice sat(satellite_imagery(), entropy());
  auto exposed_macro = sat.make_cim_macro(weights);
  auto exposed_result = cim::run_attack(exposed_macro, attack);
  cim::evaluate_against_ground_truth(exposed_result, weights);
  EXPECT_DOUBLE_EQ(exposed_result.accuracy, 1.0);
}

}  // namespace
}  // namespace convolve::framework
