#include "convolve/compsoc/noc.hpp"

#include <gtest/gtest.h>

namespace convolve::compsoc {
namespace {

NocConfig tdm_noc() {
  NocConfig c;
  c.width = 4;
  c.height = 4;
  c.tdm_period = 8;
  c.policy = ArbitrationPolicy::kTdm;
  return c;
}

TEST(Noc, PacketReachesDestination) {
  NocMesh mesh(tdm_noc());
  mesh.assign_slots(0, {0, 1, 2, 3});
  mesh.inject({/*id=*/1, /*src=*/0, /*dst=*/15, /*flits=*/4, /*vep=*/0, 0});
  const auto deliveries = mesh.run(10000);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_TRUE(deliveries[0].delivered);
  EXPECT_EQ(deliveries[0].hops, 6);  // 3 in X + 3 in Y
}

TEST(Noc, HopCountIsManhattanDistance) {
  NocMesh mesh(tdm_noc());
  EXPECT_EQ(mesh.hop_count(0, 0), 0);
  EXPECT_EQ(mesh.hop_count(0, 3), 3);
  EXPECT_EQ(mesh.hop_count(0, 12), 3);
  EXPECT_EQ(mesh.hop_count(5, 10), 2);
}

TEST(Noc, SameTileDeliversImmediately) {
  NocMesh mesh(tdm_noc());
  mesh.assign_slots(0, {0});
  mesh.inject({7, 5, 5, 3, 0, 42});
  const auto deliveries = mesh.run(100);
  EXPECT_TRUE(deliveries[0].delivered);
  EXPECT_EQ(deliveries[0].delivery_cycle, 42u);
}

TEST(Noc, TdmLatencyIndependentOfCrossTraffic) {
  // The interconnect composability property: the real-time VEP's packet
  // latencies do not change when a best-effort VEP floods the mesh.
  auto run_rt = [&](bool with_interference) {
    NocMesh mesh(tdm_noc());
    mesh.assign_slots(0, {0, 1});   // real-time VEP
    mesh.assign_slots(1, {4, 5, 6, 7});  // best-effort VEP
    mesh.inject({1, 0, 15, 4, 0, 0});
    mesh.inject({2, 12, 3, 2, 0, 10});
    if (with_interference) {
      for (int i = 0; i < 30; ++i) {
        mesh.inject({100 + i, i % 16, (i * 7) % 16, 8, 1,
                     static_cast<std::uint64_t>(i)});
      }
    }
    return mesh.run(100000);
  };
  const auto solo = run_rt(false);
  const auto shared = run_rt(true);
  ASSERT_TRUE(solo[0].delivered && solo[1].delivered);
  EXPECT_EQ(solo[0].delivery_cycle, shared[0].delivery_cycle);
  EXPECT_EQ(solo[1].delivery_cycle, shared[1].delivery_cycle);
}

TEST(Noc, GreedyLatencyDependsOnCrossTraffic) {
  auto run_rt = [&](bool with_interference) {
    NocConfig c = tdm_noc();
    c.policy = ArbitrationPolicy::kGreedy;
    NocMesh mesh(c);
    // Interfering packets injected FIRST get lower flight indices and win
    // greedy arbitration.
    if (with_interference) {
      for (int i = 0; i < 10; ++i) {
        mesh.inject({100 + i, 0, 15, 8, 1, 0});
      }
    }
    mesh.inject({1, 0, 15, 4, 0, 0});
    return mesh.run(100000);
  };
  const auto solo = run_rt(false);
  const auto shared = run_rt(true);
  const auto& rt_solo = solo.back();
  const auto& rt_shared = shared.back();
  ASSERT_TRUE(rt_solo.delivered && rt_shared.delivered);
  EXPECT_GT(rt_shared.delivery_cycle, rt_solo.delivery_cycle);
}

TEST(Noc, WorstCaseLatencyBoundHolds) {
  NocMesh mesh(tdm_noc());
  mesh.assign_slots(0, {0, 3});
  mesh.assign_slots(1, {1, 2, 4, 5, 6, 7});
  // Saturate with interference; the bound must still hold for VEP 0.
  for (int i = 0; i < 40; ++i) {
    mesh.inject({200 + i, (3 * i) % 16, (5 * i + 1) % 16, 6, 1,
                 static_cast<std::uint64_t>(i % 7)});
  }
  mesh.inject({1, 0, 15, 4, 0, 0});
  const auto deliveries = mesh.run(100000);
  const auto& rt = deliveries.back();
  ASSERT_TRUE(rt.delivered);
  const auto bound = mesh.worst_case_latency(rt.hops, 4, 2);
  EXPECT_LE(rt.delivery_cycle, bound);
}

TEST(Noc, MoreSlotsDeliverFaster) {
  auto latency_with_slots = [&](const std::vector<int>& slots) {
    NocMesh mesh(tdm_noc());
    mesh.assign_slots(0, slots);
    mesh.inject({1, 0, 15, 8, 0, 0});
    return mesh.run(100000)[0].delivery_cycle;
  };
  EXPECT_LT(latency_with_slots({0, 1, 2, 3}), latency_with_slots({0}));
}

TEST(Noc, SlotPartitioningEnforced) {
  NocMesh mesh(tdm_noc());
  mesh.assign_slots(0, {0, 1});
  EXPECT_THROW(mesh.assign_slots(1, {1, 2}), std::invalid_argument);
  EXPECT_THROW(mesh.assign_slots(1, {8}), std::invalid_argument);
  EXPECT_NO_THROW(mesh.assign_slots(1, {2, 3}));
}

TEST(Noc, ValidatesPackets) {
  NocMesh mesh(tdm_noc());
  EXPECT_THROW(mesh.inject({1, -1, 0, 1, 0, 0}), std::invalid_argument);
  EXPECT_THROW(mesh.inject({1, 0, 16, 1, 0, 0}), std::invalid_argument);
  EXPECT_THROW(mesh.inject({1, 0, 1, 0, 0, 0}), std::invalid_argument);
}

TEST(Noc, UnownedVepNeverDeliversUnderTdm) {
  NocMesh mesh(tdm_noc());
  mesh.assign_slots(0, {0});
  mesh.inject({1, 0, 1, 1, /*vep=*/5, 0});  // VEP 5 owns nothing
  const auto deliveries = mesh.run(1000);
  EXPECT_FALSE(deliveries[0].delivered);
}

TEST(Noc, VepPacketsDeliveredInInjectionOrderPerLink) {
  NocMesh mesh(tdm_noc());
  mesh.assign_slots(0, {0});
  mesh.inject({1, 0, 3, 2, 0, 0});
  mesh.inject({2, 0, 3, 2, 0, 0});
  const auto deliveries = mesh.run(10000);
  ASSERT_TRUE(deliveries[0].delivered && deliveries[1].delivered);
  EXPECT_LT(deliveries[0].delivery_cycle, deliveries[1].delivery_cycle);
}

}  // namespace
}  // namespace convolve::compsoc
