#include "convolve/compsoc/admission.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace convolve::compsoc {
namespace {

TEST(TdmAdmission, ConfigValidation) {
  EXPECT_THROW(TdmAdmission({0, 8}), std::invalid_argument);
  EXPECT_THROW(TdmAdmission({8, 0}), std::invalid_argument);
  EXPECT_NO_THROW(TdmAdmission({8, 8}));
}

TEST(TdmAdmission, TenantSlotValidation) {
  TdmAdmission adm({8, 8});
  EXPECT_THROW(adm.add_tenant({}), std::invalid_argument);
  EXPECT_THROW(adm.add_tenant({8}), std::invalid_argument);
  EXPECT_THROW(adm.add_tenant({-1}), std::invalid_argument);
  EXPECT_EQ(adm.add_tenant({0, 1}), 0);
  // Collision with tenant 0's slots.
  EXPECT_THROW(adm.add_tenant({1, 2}), std::invalid_argument);
  EXPECT_EQ(adm.add_tenant({2, 3}), 1);
  EXPECT_EQ(adm.tenant_count(), 2);
}

TEST(TdmAdmission, UnknownTenantThrows) {
  TdmAdmission adm({8, 8});
  adm.add_tenant({0});
  EXPECT_THROW(adm.admit(1), std::out_of_range);
  EXPECT_THROW(adm.admit(-1), std::out_of_range);
}

TEST(TdmAdmission, SingleTenantOwningWholeWheelNeverWaits) {
  TdmAdmission adm({4, 4});
  const int t = adm.add_tenant({0, 1, 2, 3});
  for (int i = 0; i < 100; ++i) {
    const auto d = adm.admit(t);
    EXPECT_TRUE(d.admitted);
    EXPECT_EQ(d.wait_slots, 0);
  }
  EXPECT_EQ(adm.admitted_count(), 100u);
  EXPECT_EQ(adm.rejected_count(), 0u);
  EXPECT_DOUBLE_EQ(adm.admitted_fraction(), 1.0);
}

TEST(TdmAdmission, WaitSlotsCountSkippedForeignSlots) {
  // Wheel: [A, B, B, B] -- after A consumes slot 0, its next admission
  // must wait past B's three slots.
  TdmAdmission adm({4, 4});
  const int a = adm.add_tenant({0});
  adm.add_tenant({1, 2, 3});
  auto d = adm.admit(a);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.wait_slots, 0);
  d = adm.admit(a);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.wait_slots, 3);
}

TEST(TdmAdmission, RejectionLeavesCursorUntouched) {
  // Wheel: [A, A, B, B], max_wait 1: from slot 2, A is not reachable.
  TdmAdmission adm({4, 1});
  const int a = adm.add_tenant({0, 1});
  const int b = adm.add_tenant({2, 3});
  EXPECT_TRUE(adm.admit(a).admitted);  // consumes slot 0, cursor -> 1
  EXPECT_TRUE(adm.admit(a).admitted);  // consumes slot 1, cursor -> 2
  const auto rej = adm.admit(a);
  EXPECT_FALSE(rej.admitted);
  EXPECT_EQ(rej.wait_slots, 1);
  // The rejection consumed no wheel time: B's slot 2 is still current.
  const auto ok = adm.admit(b);
  EXPECT_TRUE(ok.admitted);
  EXPECT_EQ(ok.wait_slots, 0);
  EXPECT_EQ(adm.rejected_count(), 1u);
}

TEST(TdmAdmission, FloodingTenantCannotStarveTheOther) {
  // A owns 2 of 8 slots, B owns 6, and max_wait (2) is shorter than the
  // wheel, so admission only looks a little ahead. A floods; every B
  // request must still be admitted within max_wait slots -- the
  // composability property -- while A's extra requests bounce.
  TdmAdmission adm({8, 2});
  const int a = adm.add_tenant({0, 4});
  const int b = adm.add_tenant({1, 2, 3, 5, 6, 7});
  int a_admitted = 0;
  for (int round = 0; round < 50; ++round) {
    for (int burst = 0; burst < 10; ++burst) {
      if (adm.admit(a).admitted) ++a_admitted;
    }
    const auto d = adm.admit(b);
    EXPECT_TRUE(d.admitted);
    EXPECT_LT(d.wait_slots, 2);
  }
  // A got admissions too (its own slots), but far fewer than requested.
  EXPECT_GT(a_admitted, 0);
  EXPECT_LT(a_admitted, 500);
}

TEST(TdmAdmission, MaxWaitBoundsRejectionScan) {
  // max_wait larger than the period scans at most one full wheel.
  TdmAdmission adm({4, 100});
  adm.add_tenant({0});
  TdmAdmission::Config c{4, 100};
  TdmAdmission adm2(c);
  const int t = adm2.add_tenant({0});
  EXPECT_TRUE(adm2.admit(t).admitted);
  // Tenant 1 owns nothing... cannot exist; instead check rejection scan
  // via a second tenant-less wheel position: consume slot 0, then ask
  // again -- slot 0 is reachable after wrapping, within min(100, 4).
  const auto d = adm2.admit(t);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.wait_slots, 3);
}

TEST(TdmAdmission, PerTenantCountsPartitionTheTotals) {
  // Wheel: [A, A, B, B], max_wait 1 -- drive both tenants through mixed
  // admit/reject traffic and check the per-tenant ledgers sum to the
  // global ones while attributing each decision to the right tenant.
  TdmAdmission adm({4, 1});
  const int a = adm.add_tenant({0, 1});
  const int b = adm.add_tenant({2, 3});
  EXPECT_TRUE(adm.admit(a).admitted);   // slot 0
  EXPECT_TRUE(adm.admit(a).admitted);   // slot 1
  EXPECT_FALSE(adm.admit(a).admitted);  // slot 2/3 are B's, out of reach
  EXPECT_TRUE(adm.admit(b).admitted);   // slot 2
  EXPECT_TRUE(adm.admit(b).admitted);   // slot 3
  EXPECT_FALSE(adm.admit(b).admitted);  // back at A's slots

  EXPECT_EQ(adm.admitted_count(a), 2u);
  EXPECT_EQ(adm.rejected_count(a), 1u);
  EXPECT_EQ(adm.admitted_count(b), 2u);
  EXPECT_EQ(adm.rejected_count(b), 1u);
  EXPECT_EQ(adm.admitted_count(a) + adm.admitted_count(b),
            adm.admitted_count());
  EXPECT_EQ(adm.rejected_count(a) + adm.rejected_count(b),
            adm.rejected_count());
  // Unknown tenant ids throw, same contract as admit().
  EXPECT_THROW(adm.admitted_count(2), std::out_of_range);
  EXPECT_THROW(adm.rejected_count(-1), std::out_of_range);
}

TEST(TdmAdmission, DeterministicForFixedSubmissionOrder) {
  auto run = [] {
    TdmAdmission adm({8, 4});
    const int a = adm.add_tenant({0, 2, 4, 6});
    const int b = adm.add_tenant({1, 5});
    std::vector<int> waits;
    for (int i = 0; i < 64; ++i) {
      const auto d = adm.admit(i % 3 == 0 ? b : a);
      waits.push_back(d.admitted ? d.wait_slots : -1);
    }
    return waits;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace convolve::compsoc
