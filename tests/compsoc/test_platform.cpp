#include "convolve/compsoc/platform.hpp"

#include <gtest/gtest.h>

namespace convolve::compsoc {
namespace {

PlatformConfig tdm_config() {
  PlatformConfig c;
  c.policy = ArbitrationPolicy::kTdm;
  c.tdm_period = 8;
  return c;
}

// Build the canonical platform: a real-time VEP with slots {0,1,2} on every
// resource and a best-effort VEP with slots {4,5,6}.
int add_rt_vep(Platform& p) {
  return p.create_vep("rt", {0, 1, 2}, {0, 1, 2}, {0, 1, 2});
}
int add_be_vep(Platform& p) {
  return p.create_vep("be", {4, 5, 6}, {4, 5, 6}, {4, 5, 6});
}

TEST(Platform, AppRunsToCompletionAlone) {
  Platform p(tdm_config());
  const int rt = add_rt_vep(p);
  p.load_application(rt, make_realtime_app("rt", 4));
  const auto records = p.run(10000);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].finished);
  EXPECT_GT(records[0].finish_cycle, 0u);
}

TEST(Platform, ComposabilityGrantTraceIdenticalUnderInterference) {
  // The defining CompSOC property: the real-time app's cycle-exact grant
  // trace must not change when a best-effort app is added.
  Platform alone(tdm_config());
  const int rt1 = add_rt_vep(alone);
  alone.load_application(rt1, make_realtime_app("rt", 6));
  const auto solo = alone.run(100000);

  Platform shared(tdm_config());
  const int rt2 = add_rt_vep(shared);
  const int be = add_be_vep(shared);
  shared.load_application(rt2, make_realtime_app("rt", 6));
  shared.load_application(be, make_besteffort_app("be", 50));
  const auto both = shared.run(100000);

  ASSERT_TRUE(solo[0].finished);
  ASSERT_TRUE(both[0].finished);
  EXPECT_EQ(solo[0].finish_cycle, both[0].finish_cycle);
  EXPECT_EQ(solo[0].stall_cycles, both[0].stall_cycles);
  EXPECT_EQ(solo[0].grant_trace, both[0].grant_trace);  // bit-exact
}

TEST(Platform, GreedyArbitrationBreaksComposability) {
  PlatformConfig greedy;
  greedy.policy = ArbitrationPolicy::kGreedy;
  greedy.tdm_period = 8;

  Platform alone(greedy);
  const int rt1 = alone.create_vep("rt", {}, {}, {});
  alone.load_application(rt1, make_realtime_app("rt", 6));
  const auto solo = alone.run(100000);

  Platform shared(greedy);
  // The interferer is created FIRST, so it wins ties in the greedy arbiter.
  const int be = shared.create_vep("be", {}, {}, {});
  const int rt2 = shared.create_vep("rt", {}, {}, {});
  shared.load_application(be, make_besteffort_app("be", 50));
  shared.load_application(rt2, make_realtime_app("rt", 6));
  const auto both = shared.run(100000);

  ASSERT_TRUE(solo[0].finished);
  const auto& rt_shared = both[1];
  ASSERT_TRUE(rt_shared.finished);
  // The co-runner changes the real-time app's timing: not composable.
  EXPECT_NE(solo[0].finish_cycle, rt_shared.finish_cycle);
  EXPECT_GT(rt_shared.finish_cycle, solo[0].finish_cycle);
}

TEST(Platform, GreedyIsFasterInIsolationTdmPaysOverhead) {
  // The paper's stated drawback of composable execution: overhead.
  PlatformConfig greedy;
  greedy.policy = ArbitrationPolicy::kGreedy;
  Platform g(greedy);
  const int vg = g.create_vep("app", {}, {}, {});
  g.load_application(vg, make_realtime_app("app", 6));
  const auto greedy_run = g.run(100000);

  Platform t(tdm_config());
  const int vt = add_rt_vep(t);
  t.load_application(vt, make_realtime_app("app", 6));
  const auto tdm_run = t.run(100000);

  EXPECT_LT(greedy_run[0].finish_cycle, tdm_run[0].finish_cycle);
}

TEST(Platform, SlotPartitioningEnforced) {
  Platform p(tdm_config());
  p.create_vep("a", {0, 1}, {0}, {0});
  EXPECT_THROW(p.create_vep("b", {1, 2}, {1}, {1}), std::invalid_argument);
  EXPECT_NO_THROW(p.create_vep("c", {2, 3}, {1}, {1}));
}

TEST(Platform, SlotValidation) {
  Platform p(tdm_config());
  EXPECT_THROW(p.create_vep("bad", {8}, {}, {}), std::invalid_argument);
  EXPECT_THROW(p.create_vep("bad", {-1}, {}, {}), std::invalid_argument);
  EXPECT_THROW(p.create_vep("bad", {1, 1}, {}, {}), std::invalid_argument);
}

TEST(Platform, OneAppPerVep) {
  Platform p(tdm_config());
  const int v = add_rt_vep(p);
  p.load_application(v, make_realtime_app("a", 1));
  EXPECT_THROW(p.load_application(v, make_realtime_app("b", 1)),
               std::logic_error);
}

TEST(Platform, MoreSlotsFinishFaster) {
  Platform narrow(tdm_config());
  const int v1 = narrow.create_vep("app", {0}, {0}, {0});
  narrow.load_application(v1, make_realtime_app("app", 6));
  const auto slow = narrow.run(100000);

  Platform wide(tdm_config());
  const int v2 = wide.create_vep("app", {0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5},
                                 {0, 1, 2, 3, 4, 5});
  wide.load_application(v2, make_realtime_app("app", 6));
  const auto fast = wide.run(100000);

  EXPECT_LT(fast[0].finish_cycle, slow[0].finish_cycle);
}

TEST(Platform, IdleSlotFractionReflectsUnderuse) {
  Platform p(tdm_config());
  const int v = p.create_vep("tiny", {0}, {0}, {0});
  p.load_application(v, make_realtime_app("tiny", 1));
  p.run(100000);
  // Only 1 of 8 slots per resource is even owned; most slots idle.
  EXPECT_GT(p.idle_slot_fraction(), 0.5);
}

TEST(Platform, EmptyProgramFinishesImmediately) {
  Platform p(tdm_config());
  const int v = add_rt_vep(p);
  p.load_application(v, Application{"empty", {}});
  const auto records = p.run(100);
  EXPECT_TRUE(records[0].finished);
}

TEST(Platform, WcrtBoundHoldsAloneAndUnderInterference) {
  // The real-time guarantee: measured completion never exceeds the
  // analytic worst-case bound, with or without co-runners.
  for (bool interference : {false, true}) {
    Platform p(tdm_config());
    const int rt = add_rt_vep(p);
    p.load_application(rt, make_realtime_app("rt", 6));
    if (interference) {
      const int be = add_be_vep(p);
      p.load_application(be, make_besteffort_app("be", 50));
    }
    const auto bound = p.worst_case_completion_bound(rt);
    const auto records = p.run(1000000);
    ASSERT_TRUE(records[static_cast<std::size_t>(rt)].finished);
    EXPECT_LE(records[static_cast<std::size_t>(rt)].finish_cycle, bound)
        << "interference=" << interference;
  }
}

TEST(Platform, WcrtBoundShrinksWithMoreSlots) {
  Platform narrow(tdm_config());
  const int v1 = narrow.create_vep("a", {0}, {0}, {0});
  narrow.load_application(v1, make_realtime_app("a", 4));
  Platform wide(tdm_config());
  const int v2 = wide.create_vep("a", {0, 1, 2, 3}, {0, 1, 2, 3},
                                 {0, 1, 2, 3});
  wide.load_application(v2, make_realtime_app("a", 4));
  EXPECT_LT(wide.worst_case_completion_bound(v2),
            narrow.worst_case_completion_bound(v1));
}

TEST(Platform, WcrtBoundRejectsMissingResource) {
  Platform p(tdm_config());
  const int v = p.create_vep("a", {0}, {}, {0});  // no NoC slots
  p.load_application(v, make_realtime_app("a", 1));  // needs the NoC
  EXPECT_THROW(p.worst_case_completion_bound(v), std::logic_error);
}

TEST(Platform, WcrtBoundUndefinedForGreedy) {
  PlatformConfig c;
  c.policy = ArbitrationPolicy::kGreedy;
  Platform p(c);
  const int v = p.create_vep("a", {}, {}, {});
  p.load_application(v, make_realtime_app("a", 1));
  EXPECT_THROW(p.worst_case_completion_bound(v), std::logic_error);
}

TEST(Platform, RejectsBadPeriod) {
  PlatformConfig c;
  c.tdm_period = 0;
  EXPECT_THROW(Platform{c}, std::invalid_argument);
}

}  // namespace
}  // namespace convolve::compsoc
