#include "convolve/rtos/attacks.hpp"

#include <gtest/gtest.h>

namespace convolve::rtos {
namespace {

// Parameterized over the five scenarios: with PMP the attack must fail and
// the system must recover; without it, the attack must succeed.
class AttackSuite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AttackSuite, PmpContainsAttack) {
  const auto protected_run = run_attack_suite(true);
  const auto& r = protected_run[GetParam()];
  EXPECT_FALSE(r.attack_succeeded) << r.name;
  EXPECT_TRUE(r.system_recovered()) << r.name;
  EXPECT_TRUE(r.kernel_intact) << r.name;
}

TEST_P(AttackSuite, FlatMemoryModelIsVulnerable) {
  const auto exposed_run = run_attack_suite(false);
  const auto& r = exposed_run[GetParam()];
  // Every memory-based attack succeeds without PMP. The peripheral-DoS
  // scenario is contained by the watchdog regardless of PMP, so its
  // "attack succeeded" flag is false in both configurations.
  if (r.name == "peripheral-dos") {
    EXPECT_FALSE(r.attack_succeeded) << r.name;
  } else {
    EXPECT_TRUE(r.attack_succeeded) << r.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, AttackSuite,
                         ::testing::Range<std::size_t>(0, 5));

TEST(AttackSuite, MemoryAttacksTrapUnderPmp) {
  for (const auto& r : run_attack_suite(true)) {
    if (r.name == "stack-snoop" || r.name == "kernel-tamper" ||
        r.name == "cross-task-inject") {
      EXPECT_GE(r.faults, 1) << r.name;
      EXPECT_GE(r.kills, 1) << r.name;
    }
  }
}

TEST(AttackSuite, NoTrapsWithoutPmp) {
  for (const auto& r : run_attack_suite(false)) {
    EXPECT_EQ(r.faults, 0) << r.name;  // attacks proceed silently
  }
}

TEST(AttackSuite, KernelTamperDetectedOnlyWhenUnprotected) {
  const auto with = scenario_kernel_tamper(true);
  const auto without = scenario_kernel_tamper(false);
  EXPECT_TRUE(with.kernel_intact);
  EXPECT_FALSE(without.kernel_intact);
}

TEST(AttackSuite, VictimDeadlinesMetUnderAllProtectedScenarios) {
  for (const auto& r : run_attack_suite(true)) {
    EXPECT_TRUE(r.victim_completed) << r.name;
  }
}

}  // namespace
}  // namespace convolve::rtos
