#include <gtest/gtest.h>

#include <memory>

#include "convolve/rtos/kernel.hpp"

namespace convolve::rtos {
namespace {

struct World {
  Machine machine{1 << 20};
  std::unique_ptr<Kernel> kernel;
  World() { kernel = std::make_unique<Kernel>(machine, KernelConfig{}); }
};

TEST(Mutex, BasicLockUnlock) {
  World w;
  const int m = w.kernel->create_mutex("m");
  auto got = std::make_shared<std::vector<bool>>();
  w.kernel->add_task("t", 1, 4096, [=](TaskApi& api) {
    got->push_back(api.mutex_lock(m));
    got->push_back(api.mutex_lock(m));  // re-entrant for the owner
    api.mutex_unlock(m);
    return StepResult::done();
  });
  w.kernel->run(4);
  EXPECT_EQ(*got, (std::vector<bool>{true, true}));
}

TEST(Mutex, ContendedLockRefused) {
  World w;
  const int m = w.kernel->create_mutex("m");
  auto holder_locked = std::make_shared<bool>(false);
  auto second_got = std::make_shared<std::vector<bool>>();
  w.kernel->add_task("holder", 1, 4096, [=](TaskApi& api) {
    api.mutex_lock(m);
    *holder_locked = true;
    return StepResult::yield();  // holds forever
  });
  w.kernel->add_task("waiter", 1, 4096, [=](TaskApi& api) {
    if (!*holder_locked) return StepResult::yield();
    second_got->push_back(api.mutex_lock(m));
    return StepResult::done();
  });
  w.kernel->run(8);
  ASSERT_FALSE(second_got->empty());
  EXPECT_FALSE(second_got->front());
}

TEST(Mutex, PriorityInversionBoundedByInheritance) {
  // Classic scenario: LOW holds the mutex, HIGH wants it, MID would
  // otherwise starve LOW and invert priorities. With inheritance, LOW
  // runs at HIGH's priority until it releases.
  World w;
  const int m = w.kernel->create_mutex("m");
  auto order = std::make_shared<std::vector<std::string>>();

  auto low_done = std::make_shared<bool>(false);
  auto low_holds = std::make_shared<bool>(false);
  auto low_ticks = std::make_shared<int>(0);
  w.kernel->add_task("LOW", 1, 4096, [=](TaskApi& api) {
    if (*low_ticks == 0) {
      api.mutex_lock(m);
      *low_holds = true;
    }
    order->push_back("LOW");
    if (++*low_ticks >= 3) {  // critical section takes 3 ticks
      api.mutex_unlock(m);
      *low_done = true;
      return StepResult::done();
    }
    return StepResult::yield();
  });

  // MID and HIGH arrive after LOW has entered its critical section
  // (sleeping until then). Without inheritance, MID would then preempt
  // LOW indefinitely while HIGH waits on the mutex: unbounded inversion.
  auto mid_runs = std::make_shared<int>(0);
  w.kernel->add_task("MID", 2, 4096, [=](TaskApi&) {
    if (!*low_holds) return StepResult::delay(4);
    order->push_back("MID");
    ++*mid_runs;
    return *low_done ? StepResult::done() : StepResult::yield();
  });

  auto high_got_lock = std::make_shared<bool>(false);
  w.kernel->add_task("HIGH", 3, 4096, [=](TaskApi& api) {
    if (!*low_holds) return StepResult::delay(4);
    order->push_back("HIGH");
    if (api.mutex_lock(m)) {
      *high_got_lock = true;
      api.mutex_unlock(m);
      return StepResult::done();
    }
    return StepResult::yield();
  });

  w.kernel->run(64);
  EXPECT_TRUE(*high_got_lock);
  EXPECT_TRUE(*low_done);
  // While HIGH was blocked on the mutex, LOW must have been scheduled
  // ahead of MID (it inherited priority 3 > 2): count MID runs before
  // LOW finished -- with inheritance LOW finishes after at most a few
  // ticks of HIGH/LOW alternation, so MID runs very little before that.
  int mid_before_low_done = 0;
  bool seen_low_third = false;
  int low_count = 0;
  for (const auto& name : *order) {
    if (name == "LOW" && ++low_count == 3) seen_low_third = true;
    if (name == "MID" && !seen_low_third) ++mid_before_low_done;
  }
  EXPECT_LE(mid_before_low_done, 1);
}

TEST(Mutex, KilledOwnerReleasesLock) {
  World w;
  const int m = w.kernel->create_mutex("m");
  auto second_got_it = std::make_shared<bool>(false);
  w.kernel->add_task("rogue", 2, 4096, [=](TaskApi& api) {
    api.mutex_lock(m);
    api.read(0x100, 4);  // PMP violation -> killed
    return StepResult::yield();
  });
  w.kernel->add_task("next", 1, 4096, [=](TaskApi& api) {
    if (api.mutex_lock(m)) {
      *second_got_it = true;
      return StepResult::done();
    }
    return StepResult::yield();
  });
  w.kernel->run(16);
  EXPECT_TRUE(*second_got_it);
}

TEST(Mutex, InheritanceClearsOnRelease) {
  World w;
  const int m = w.kernel->create_mutex("m");
  auto low_ran_after_release = std::make_shared<int>(0);
  auto phase = std::make_shared<int>(0);  // 0: holding, 1: released

  w.kernel->add_task("LOW", 1, 4096, [=](TaskApi& api) {
    if (*phase == 0) {
      api.mutex_lock(m);
      *phase = 1;
      api.mutex_unlock(m);
      return StepResult::yield();
    }
    ++*low_ran_after_release;
    return StepResult::yield();
  });
  w.kernel->add_task("MID", 2, 4096, [=](TaskApi&) {
    return StepResult::yield();  // always ready, priority 2
  });
  w.kernel->run(32);
  // After releasing, LOW is back at priority 1 and MID (2) starves it.
  EXPECT_EQ(*low_ran_after_release, 0);
}

}  // namespace
}  // namespace convolve::rtos
