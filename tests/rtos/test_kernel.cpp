#include "convolve/rtos/kernel.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace convolve::rtos {
namespace {

struct World {
  Machine machine{1 << 20};
  std::unique_ptr<Kernel> kernel;
  explicit World(KernelConfig config = {}) {
    kernel = std::make_unique<Kernel>(machine, config);
  }
};

TEST(Kernel, TaskRunsToCompletion) {
  World w;
  auto steps = std::make_shared<int>(0);
  const int id = w.kernel->add_task("t", 1, 4096, [=](TaskApi&) {
    return (++*steps == 3) ? StepResult::done() : StepResult::yield();
  });
  w.kernel->run(16);
  EXPECT_EQ(*steps, 3);
  EXPECT_EQ(w.kernel->task_state(id), TaskState::kDone);
}

TEST(Kernel, HigherPriorityPreempts) {
  World w;
  auto order = std::make_shared<std::vector<int>>();
  w.kernel->add_task("low", 1, 4096, [=](TaskApi& api) {
    order->push_back(api.self());
    return StepResult::done();
  });
  w.kernel->add_task("high", 5, 4096, [=](TaskApi& api) {
    order->push_back(api.self());
    return StepResult::done();
  });
  w.kernel->run(8);
  ASSERT_EQ(order->size(), 2u);
  EXPECT_EQ((*order)[0], 1);  // high first
  EXPECT_EQ((*order)[1], 0);
}

TEST(Kernel, RoundRobinWithinPriority) {
  World w;
  auto order = std::make_shared<std::vector<int>>();
  for (int i = 0; i < 3; ++i) {
    w.kernel->add_task("t" + std::to_string(i), 1, 4096, [=](TaskApi& api) {
      order->push_back(api.self());
      return order->size() >= 9 ? StepResult::done() : StepResult::yield();
    });
  }
  w.kernel->run(9);
  // Each task ran 3 times, interleaved.
  ASSERT_EQ(order->size(), 9u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(std::count(order->begin(), order->end(), i), 3);
  }
  EXPECT_NE((*order)[0], (*order)[1]);
}

TEST(Kernel, DelayWakesAtRightTick) {
  World w;
  auto wake_times = std::make_shared<std::vector<std::uint64_t>>();
  w.kernel->add_task("sleeper", 1, 4096, [=](TaskApi& api) {
    wake_times->push_back(api.now());
    if (wake_times->size() >= 3) return StepResult::done();
    return StepResult::delay(5);
  });
  w.kernel->run(32);
  ASSERT_EQ(wake_times->size(), 3u);
  EXPECT_GE((*wake_times)[1] - (*wake_times)[0], 5u);
  EXPECT_GE((*wake_times)[2] - (*wake_times)[1], 5u);
}

TEST(Kernel, TaskOwnsItsRegion) {
  World w;
  auto ok = std::make_shared<bool>(false);
  w.kernel->add_task("t", 1, 4096, [=](TaskApi& api) {
    api.write(api.region_base() + 16, Bytes{1, 2, 3});
    *ok = (api.read(api.region_base() + 16, 3) == Bytes{1, 2, 3});
    return StepResult::done();
  });
  w.kernel->run(4);
  EXPECT_TRUE(*ok);
}

TEST(Kernel, PmpTrapsKillOffendingTask) {
  World w;
  const int id = w.kernel->add_task("rogue", 1, 4096, [](TaskApi& api) {
    api.read(0x100, 4);  // kernel region
    return StepResult::done();
  });
  w.kernel->run(4);
  EXPECT_EQ(w.kernel->task_state(id), TaskState::kKilled);
  EXPECT_EQ(w.kernel->count_events(EventType::kFault), 1);
  EXPECT_EQ(w.kernel->count_events(EventType::kTaskKilled), 1);
}

TEST(Kernel, RestartPolicyRevivesKilledTask) {
  KernelConfig config;
  config.restart_killed_tasks = true;
  World w(config);
  auto attempts = std::make_shared<int>(0);
  const int id = w.kernel->add_task("flaky", 1, 4096, [=](TaskApi& api) {
    if (++*attempts == 1) {
      api.read(0x100, 4);  // first run: violates, gets killed+restarted
    }
    return StepResult::done();  // second run: behaves
  });
  w.kernel->run(8);
  EXPECT_EQ(*attempts, 2);
  EXPECT_EQ(w.kernel->task_state(id), TaskState::kDone);
  EXPECT_EQ(w.kernel->count_events(EventType::kTaskRestarted), 1);
}

TEST(Kernel, QueueFifoSemantics) {
  World w;
  const int q = w.kernel->create_queue(4);
  auto received = std::make_shared<std::vector<Bytes>>();
  w.kernel->add_task("producer", 1, 4096, [=](TaskApi& api) {
    api.queue_send(q, Bytes{1});
    api.queue_send(q, Bytes{2});
    return StepResult::done();
  });
  w.kernel->add_task("consumer", 1, 4096, [=](TaskApi& api) {
    while (auto m = api.queue_receive(q)) received->push_back(*m);
    return received->size() >= 2 ? StepResult::done() : StepResult::yield();
  });
  w.kernel->run(16);
  ASSERT_EQ(received->size(), 2u);
  EXPECT_EQ((*received)[0], Bytes{1});
  EXPECT_EQ((*received)[1], Bytes{2});
}

TEST(Kernel, QueueDepthEnforced) {
  World w;
  const int q = w.kernel->create_queue(2);
  auto sends = std::make_shared<std::vector<bool>>();
  w.kernel->add_task("p", 1, 4096, [=](TaskApi& api) {
    for (int i = 0; i < 3; ++i) sends->push_back(api.queue_send(q, Bytes{0}));
    return StepResult::done();
  });
  w.kernel->run(4);
  ASSERT_EQ(sends->size(), 3u);
  EXPECT_TRUE((*sends)[0]);
  EXPECT_TRUE((*sends)[1]);
  EXPECT_FALSE((*sends)[2]);
  EXPECT_EQ(w.kernel->count_events(EventType::kQueueRejected), 1);
}

TEST(Kernel, QueueQuotaLimitsOneSender) {
  World w;
  const int q = w.kernel->create_queue(8, /*per_task_quota=*/2);
  auto result = std::make_shared<std::vector<bool>>();
  w.kernel->add_task("p", 1, 4096, [=](TaskApi& api) {
    for (int i = 0; i < 4; ++i) result->push_back(api.queue_send(q, Bytes{0}));
    return StepResult::done();
  });
  w.kernel->run(4);
  EXPECT_EQ(*result, (std::vector<bool>{true, true, false, false}));
}

TEST(Kernel, PeripheralWatchdogRevokesStaleLock) {
  KernelConfig config;
  config.watchdog_ticks = 4;
  World w(config);
  const int p = w.kernel->create_peripheral("uart");
  auto second_task_got_it = std::make_shared<bool>(false);
  w.kernel->add_task("holder", 1, 4096, [=](TaskApi& api) {
    api.peripheral_acquire(p);
    return StepResult::yield();  // holds forever
  });
  w.kernel->add_task("waiter", 1, 4096, [=](TaskApi& api) {
    if (api.peripheral_acquire(p)) {
      *second_task_got_it = true;
      return StepResult::done();
    }
    return StepResult::yield();
  });
  w.kernel->run(64);
  EXPECT_TRUE(*second_task_got_it);
  EXPECT_GE(w.kernel->count_events(EventType::kWatchdogRevoke), 1);
}

TEST(Kernel, KilledTaskReleasesPeripherals) {
  World w;
  const int p = w.kernel->create_peripheral("dma");
  auto got = std::make_shared<bool>(false);
  w.kernel->add_task("rogue", 2, 4096, [=](TaskApi& api) {
    api.peripheral_acquire(p);
    api.write(0x100, Bytes{9});  // violates -> killed
    return StepResult::yield();
  });
  w.kernel->add_task("next", 1, 4096, [=](TaskApi& api) {
    if (api.peripheral_acquire(p)) {
      *got = true;
      return StepResult::done();
    }
    return StepResult::yield();
  });
  w.kernel->run(16);
  EXPECT_TRUE(*got);
}


TEST(Kernel, MachineTaskRunsToCompletion) {
  namespace rv = tee::rv32asm;
  World w;
  // Program: write 0xAB to offset 0x100 of its own region, then ecall.
  const Bytes binary = rv::assemble({
      rv::auipc(1, 0),         // x1 = region base (entry pc)
      rv::addi(2, 0, 0xAB),
      rv::sb(2, 1, 0x100),
      rv::ecall(),
  });
  const int id = w.kernel->add_machine_task("mc", 1, 8192, binary);
  w.kernel->run(16);
  EXPECT_EQ(w.kernel->task_state(id), TaskState::kDone);
}

TEST(Kernel, MachineTaskTimeSlicesAcrossTicks) {
  namespace rv = tee::rv32asm;
  World w;
  // Long loop: 1000 iterations of 2 instructions >> one 64-instruction
  // slice, so the task must yield and resume across ticks.
  const Bytes binary = rv::assemble({
      rv::addi(1, 0, 1000),
      // loop:
      rv::addi(1, 1, -1),
      rv::bne(1, 0, -4),
      rv::ecall(),
  });
  const int id = w.kernel->add_machine_task("loop", 1, 8192, binary, 64);
  w.kernel->run(4);
  EXPECT_EQ(w.kernel->task_state(id), TaskState::kReady);  // still going
  w.kernel->run(64);
  EXPECT_EQ(w.kernel->task_state(id), TaskState::kDone);
}

TEST(Kernel, RogueMachineTaskKilledByPmp) {
  namespace rv = tee::rv32asm;
  World w;
  // Read the kernel's canary at 0x100: PMP violation in machine code.
  const Bytes binary = rv::assemble({
      rv::addi(1, 0, 0x100),
      rv::lw(2, 1, 0),
      rv::ecall(),
  });
  const int id = w.kernel->add_machine_task("rogue", 1, 8192, binary);
  w.kernel->run(8);
  EXPECT_EQ(w.kernel->task_state(id), TaskState::kKilled);
  EXPECT_EQ(w.kernel->count_events(EventType::kFault), 1);
  EXPECT_TRUE(w.kernel->kernel_integrity_ok());
}

TEST(Kernel, MachineAndLambdaTasksCoexist) {
  namespace rv = tee::rv32asm;
  World w;
  const Bytes binary = rv::assemble({
      rv::addi(1, 0, 5),
      rv::addi(1, 1, 5),
      rv::ecall(),
  });
  const int mc = w.kernel->add_machine_task("mc", 1, 8192, binary);
  auto ran = std::make_shared<int>(0);
  const int soft = w.kernel->add_task("soft", 1, 4096, [=](TaskApi&) {
    return (++*ran >= 2) ? StepResult::done() : StepResult::yield();
  });
  w.kernel->run(16);
  EXPECT_EQ(w.kernel->task_state(mc), TaskState::kDone);
  EXPECT_EQ(w.kernel->task_state(soft), TaskState::kDone);
  EXPECT_EQ(*ran, 2);
}

TEST(Kernel, StopsEarlyWhenAllTasksDone) {
  World w;
  w.kernel->add_task("t", 1, 4096, [](TaskApi&) { return StepResult::done(); });
  w.kernel->run(1000000);
  EXPECT_LT(w.kernel->now(), 10u);
}

TEST(Kernel, IntegrityCanaryDetectsMachineModeTamper) {
  World w;
  EXPECT_TRUE(w.kernel->kernel_integrity_ok());
  // Simulate a successful kernel-data attack (M-mode write for test setup).
  w.machine.store(w.kernel->kernel_data_addr(), Bytes{0xBD},
                  PrivMode::kMachine);
  EXPECT_FALSE(w.kernel->kernel_integrity_ok());
}

}  // namespace
}  // namespace convolve::rtos
