// Integration: real RV32 code executing inside PMP-isolated enclaves.
//
// The paper's demonstrator milestone -- "run a demonstrator enclave that
// succeeds in generating a signed attestation report" -- with actual
// machine code: the enclave binary computes over its own memory, requests
// exit via ecall, and any attempt to reach beyond the enclave (OS memory,
// the SM, another enclave) traps without disturbing the rest of the system.
#include <gtest/gtest.h>

#include "convolve/crypto/keccak.hpp"
#include "convolve/tee/security_monitor.hpp"

namespace convolve::tee {
namespace {

namespace rv = rv32asm;

struct World {
  Machine machine{1 << 20};
  BootRecord boot;
  std::unique_ptr<SecurityMonitor> sm;

  World() {
    const Bootrom rom({false}, DeviceKeys::from_entropy(Bytes(32, 0x11)));
    boot = rom.boot(Bytes(4096, 0xAB));
    sm = std::make_unique<SecurityMonitor>(machine, boot, SmConfig{});
  }
};

TEST(EnclaveExecution, ProgramComputesInsideEnclaveAndExits) {
  World w;
  // Program: sum 1..100 into x5, store at offset 0x800, ecall.
  // x6 holds the enclave base (via auipc at entry, pc == base).
  const Bytes binary = rv::assemble({
      rv::auipc(6, 0),      // x6 = enclave base
      rv::addi(5, 0, 0),
      rv::addi(7, 0, 1),
      rv::addi(8, 0, 101),
      // loop:
      rv::add(5, 5, 7),
      rv::addi(7, 7, 1),
      rv::bne(7, 8, -8),
      rv::sw(5, 6, 0x700),  // store result inside the enclave
      rv::ecall(),
  });
  const int id = w.sm->create_enclave(binary, 8192);
  const auto result = w.sm->run_enclave_program(id, 10000);
  ASSERT_TRUE(result.trap.has_value());
  EXPECT_EQ(result.trap->cause, TrapCause::kEcall);
  // The result is in enclave memory (SM can read it in M-mode).
  const Bytes stored =
      w.machine.load(w.sm->enclave(id).base + 0x700, 4, PrivMode::kMachine);
  EXPECT_EQ(load_le32(stored.data()), 5050u);
}

TEST(EnclaveExecution, EscapeAttemptLoadTraps) {
  World w;
  // Try to read OS memory at 0x80000 from inside the enclave.
  const Bytes binary = rv::assemble({
      rv::lui(1, 0x80),
      rv::lw(2, 1, 0),
      rv::ecall(),
  });
  const int id = w.sm->create_enclave(binary, 8192);
  const auto result = w.sm->run_enclave_program(id, 100);
  ASSERT_TRUE(result.trap.has_value());
  EXPECT_EQ(result.trap->cause, TrapCause::kLoadAccessFault);
  EXPECT_EQ(result.trap->tval, 0x80000u);
  // The OS view is restored after the contained violation.
  w.machine.store(0x80000, Bytes{1}, PrivMode::kSupervisor);
}

TEST(EnclaveExecution, EscapeAttemptJumpTraps) {
  World w;
  // Jump to the security monitor's memory (address 0x100).
  const Bytes binary = rv::assemble({
      rv::addi(1, 0, 0x100),
      rv::jalr(0, 1, 0),
  });
  const int id = w.sm->create_enclave(binary, 8192);
  const auto result = w.sm->run_enclave_program(id, 100);
  ASSERT_TRUE(result.trap.has_value());
  EXPECT_EQ(result.trap->cause, TrapCause::kInstructionAccessFault);
  EXPECT_EQ(result.trap->pc, 0x100u);
}

TEST(EnclaveExecution, CrossEnclaveStoreTraps) {
  World w;
  const int victim = w.sm->create_enclave(Bytes(64, 0x7E), 8192);
  const std::uint32_t victim_base =
      static_cast<std::uint32_t>(w.sm->enclave(victim).base);
  // Attacker enclave writes into the victim's region.
  const Bytes binary = rv::assemble({
      rv::lui(1, victim_base >> 12),
      rv::sw(0, 1, static_cast<std::int32_t>(victim_base & 0xfff)),
      rv::ecall(),
  });
  const int attacker = w.sm->create_enclave(binary, 8192);
  const auto result = w.sm->run_enclave_program(attacker, 100);
  ASSERT_TRUE(result.trap.has_value());
  EXPECT_EQ(result.trap->cause, TrapCause::kStoreAccessFault);
  // Victim's memory untouched.
  EXPECT_EQ(w.machine.load(victim_base, 1, PrivMode::kMachine)[0], 0x7E);
}

TEST(EnclaveExecution, RunawayProgramBoundedBySteps) {
  World w;
  // Infinite loop: jal x0, 0 (jump to self).
  const Bytes binary = rv::assemble({rv::jal(0, 0)});
  const int id = w.sm->create_enclave(binary, 8192);
  const auto result = w.sm->run_enclave_program(id, 500);
  EXPECT_FALSE(result.trap.has_value());
  EXPECT_EQ(result.steps, 500u);
}

TEST(EnclaveExecution, MeasurementCoversTheExecutedCode) {
  World w;
  const Bytes binary = rv::assemble({rv::addi(1, 0, 1), rv::ecall()});
  const int id = w.sm->create_enclave(binary, 8192);
  const auto report = w.sm->attest(id, {});
  EXPECT_EQ(report.enclave_measurement, crypto::sha3_512(binary));
  EXPECT_TRUE(verify_report(report, w.sm->trust_anchor()));
  // Same code, same measurement; different code, different measurement.
  const Bytes other = rv::assemble({rv::addi(1, 0, 2), rv::ecall()});
  const int id2 = w.sm->create_enclave(other, 8192);
  EXPECT_NE(w.sm->enclave(id2).measurement, report.enclave_measurement);
}

}  // namespace
}  // namespace convolve::tee
