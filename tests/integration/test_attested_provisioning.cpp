// Integration: provisioning model IP to an attested enclave.
//
// The full CONVOLVE deployment story across modules:
//   1. PQ measured boot; security monitor walls itself off.
//   2. The enclave generates an ML-KEM-512 key pair and publishes the
//      encapsulation key through the signed attestation report (the 800-byte
//      ek fits the report's 992-byte user-data field).
//   3. The model owner verifies the report chain (hybrid Ed25519+ML-DSA),
//      encapsulates, and wraps the model with the shared secret.
//   4. The enclave decapsulates, recovers the model, and seals it to its
//      own measurement for storage.
// Negative paths: a tampered report, a wrong enclave, and a tampered
// ciphertext must all fail to obtain the model.
#include <gtest/gtest.h>

#include "convolve/crypto/aead.hpp"
#include "convolve/crypto/keccak.hpp"
#include "convolve/crypto/kyber.hpp"
#include "convolve/tee/security_monitor.hpp"

namespace convolve {
namespace {

using namespace convolve::tee;

struct Deployment {
  Machine machine{1 << 20};
  BootRecord boot;
  std::unique_ptr<SecurityMonitor> sm;
  int enclave = -1;
  crypto::kyber::KeyPair enclave_kem;

  Deployment() {
    const Bootrom rom({true}, DeviceKeys::from_entropy(Bytes(32, 0x99)));
    boot = rom.boot(Bytes(8192, 0xAD));
    SmConfig config;
    config.stack_bytes = 128 * 1024;
    sm = std::make_unique<SecurityMonitor>(machine, boot, config);
    enclave = sm->create_enclave(Bytes(2048, 0xE3), 64 * 1024);
    // Inside the enclave: derive the KEM key pair (seed would come from
    // the SM's sealing hierarchy in a real deployment).
    enclave_kem = crypto::kyber::keygen(Bytes(64, 0x17));
  }

  AttestationReport attested_ek() {
    return sm->attest(enclave, enclave_kem.ek);
  }
};

// The model owner's side: verify, encapsulate, wrap.
struct WrappedModel {
  Bytes kem_ciphertext;
  Bytes sealed_model;  // AEAD under the shared secret
};

std::optional<WrappedModel> provision_model(
    const AttestationReport& report, const VerifierTrustAnchor& anchor,
    const Bytes& expected_enclave_measurement, ByteView model) {
  if (!verify_report(report, anchor, nullptr,
                     &expected_enclave_measurement)) {
    return std::nullopt;
  }
  if (report.enclave_data.size() != crypto::kyber::kEkBytes) {
    return std::nullopt;
  }
  const auto enc = crypto::kyber::encaps(report.enclave_data, Bytes(32, 0x2A));
  WrappedModel out;
  out.kem_ciphertext = enc.ciphertext;
  const Bytes nonce(12, 0x01);
  out.sealed_model = crypto::aead_serialize(crypto::aead_seal(
      {enc.shared_secret.data(), enc.shared_secret.size()}, nonce, model,
      report.enclave_measurement));
  return out;
}

TEST(AttestedProvisioning, HappyPathDeliversModel) {
  Deployment dep;
  const auto report = dep.attested_ek();
  const Bytes expected_measurement = crypto::sha3_512(Bytes(2048, 0xE3));
  const auto model_view = as_bytes("8-bit quantized detector weights v3");
  const Bytes model(model_view.begin(), model_view.end());

  const auto wrapped = provision_model(report, dep.sm->trust_anchor(),
                                       expected_measurement, model);
  ASSERT_TRUE(wrapped.has_value());

  // Enclave side: decapsulate and unwrap.
  const auto ss = crypto::kyber::decaps(dep.enclave_kem.dk,
                                        wrapped->kem_ciphertext);
  const auto box = crypto::aead_deserialize(wrapped->sealed_model);
  ASSERT_TRUE(box.has_value());
  const auto recovered = crypto::aead_open(
      {ss.data(), ss.size()}, *box,
      dep.sm->enclave(dep.enclave).measurement);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, model);

  // The enclave then seals the model to its identity for storage.
  const Bytes stored = dep.sm->seal(dep.enclave, *recovered);
  const auto unsealed = dep.sm->unseal(dep.enclave, stored);
  ASSERT_TRUE(unsealed.has_value());
  EXPECT_EQ(*unsealed, model);
}

TEST(AttestedProvisioning, TamperedReportRefused) {
  Deployment dep;
  auto report = dep.attested_ek();
  report.enclave_data[17] ^= 0x01;  // flip a byte of the published ek
  const Bytes expected = crypto::sha3_512(Bytes(2048, 0xE3));
  EXPECT_FALSE(provision_model(report, dep.sm->trust_anchor(), expected,
                               as_bytes("m"))
                   .has_value());
}

TEST(AttestedProvisioning, WrongEnclaveMeasurementRefused) {
  Deployment dep;
  const auto report = dep.attested_ek();
  const Bytes wrong = crypto::sha3_512(Bytes(2048, 0xE4));
  EXPECT_FALSE(provision_model(report, dep.sm->trust_anchor(), wrong,
                               as_bytes("m"))
                   .has_value());
}

TEST(AttestedProvisioning, WrongDeviceRefused) {
  Deployment dep;
  const auto report = dep.attested_ek();
  const Bytes expected = crypto::sha3_512(Bytes(2048, 0xE3));
  // A different device's trust anchor.
  const Bootrom other({true}, DeviceKeys::from_entropy(Bytes(32, 0x98)));
  const BootRecord other_boot = other.boot(Bytes(8192, 0xAD));
  VerifierTrustAnchor anchor;
  anchor.device_ed25519_pk = other_boot.device_ed25519_pk;
  anchor.device_mldsa_pk = other_boot.device_mldsa_pk;
  EXPECT_FALSE(
      provision_model(report, anchor, expected, as_bytes("m")).has_value());
}

TEST(AttestedProvisioning, TamperedKemCiphertextYieldsGarbageSecret) {
  Deployment dep;
  const auto report = dep.attested_ek();
  const Bytes expected = crypto::sha3_512(Bytes(2048, 0xE3));
  const auto wrapped = provision_model(report, dep.sm->trust_anchor(),
                                       expected, as_bytes("model"));
  ASSERT_TRUE(wrapped.has_value());
  Bytes bad_ct = wrapped->kem_ciphertext;
  bad_ct[50] ^= 0x01;
  // Implicit rejection: decapsulation returns a secret, but the AEAD
  // under it cannot open the wrapped model.
  const auto ss = crypto::kyber::decaps(dep.enclave_kem.dk, bad_ct);
  const auto box = crypto::aead_deserialize(wrapped->sealed_model);
  ASSERT_TRUE(box.has_value());
  EXPECT_FALSE(crypto::aead_open({ss.data(), ss.size()}, *box,
                                 dep.sm->enclave(dep.enclave).measurement)
                   .has_value());
}

TEST(AttestedProvisioning, StolenSealedBlobUselessOnOtherEnclave) {
  Deployment dep;
  const Bytes model = {9, 9, 9};
  const Bytes stored = dep.sm->seal(dep.enclave, model);
  const int other = dep.sm->create_enclave(Bytes(2048, 0x77), 64 * 1024);
  EXPECT_FALSE(dep.sm->unseal(other, stored).has_value());
}

}  // namespace
}  // namespace convolve
