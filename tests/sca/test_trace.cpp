#include "convolve/sca/trace.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "convolve/common/parallel.hpp"
#include "convolve/sca/target.hpp"

namespace convolve::sca {
namespace {

using masking::Circuit;
using masking::GateKind;

TEST(PowerTrace, DepthGroupsFollowCombinationalDepth) {
  const Circuit fa = masking::full_adder_circuit();
  PowerTraceSimulator sim(fa, {});
  // Inputs sit at depth 0; every gate is one past its deepest fan-in.
  const auto& gates = fa.gates();
  for (std::size_t g = 0; g < gates.size(); ++g) {
    const int d = sim.depth_of(static_cast<int>(g));
    switch (gates[g].kind) {
      case GateKind::kInput:
      case GateKind::kRandom:
      case GateKind::kConst:
        EXPECT_EQ(d, 0);
        break;
      case GateKind::kNot:
      case GateKind::kReg:
        EXPECT_EQ(d, sim.depth_of(gates[g].a) + 1);
        break;
      default:
        EXPECT_EQ(d, std::max(sim.depth_of(gates[g].a),
                              sim.depth_of(gates[g].b)) +
                         1);
    }
    EXPECT_LT(d, sim.samples_per_trace());
  }
  EXPECT_GE(sim.samples_per_trace(), 2);
}

TEST(PowerTrace, HammingWeightSamplesMatchManualAccumulation) {
  const Circuit fa = masking::full_adder_circuit();
  PowerTraceSimulator sim(fa, {PowerModel::kHammingWeight, 0.0});
  TraceScratch scratch = sim.make_scratch();
  Xoshiro256 rng(1);
  const std::vector<std::uint8_t> inputs = {1, 0, 1};
  std::vector<double> trace(static_cast<std::size_t>(sim.samples_per_trace()));
  sim.capture(inputs, rng, scratch, trace);

  const std::vector<std::uint8_t> wire = fa.evaluate_all(inputs, {});
  std::vector<double> expected(trace.size(), 0.0);
  for (std::size_t g = 0; g < wire.size(); ++g) {
    expected[static_cast<std::size_t>(sim.depth_of(static_cast<int>(g)))] +=
        wire[g];
  }
  EXPECT_EQ(trace, expected);
}

TEST(PowerTrace, SeededCaptureIsReproducible) {
  auto masked = masking::mask_circuit(masking::full_adder_circuit(), 1);
  PowerTraceSimulator sim(masked.circuit, {PowerModel::kHammingWeight, 0.5});
  TraceScratch scratch = sim.make_scratch();
  const std::vector<std::uint8_t> inputs(
      static_cast<std::size_t>(masked.circuit.num_inputs()), 1);
  std::vector<double> a(static_cast<std::size_t>(sim.samples_per_trace()));
  std::vector<double> b(a.size());
  Xoshiro256 rng_a(42), rng_b(42), rng_c(43);
  sim.capture(inputs, rng_a, scratch, a);
  sim.capture(inputs, rng_b, scratch, b);
  EXPECT_EQ(a, b);  // bit-identical: same seed, same trace
  sim.capture(inputs, rng_c, scratch, b);
  EXPECT_NE(a, b);  // fresh noise / gadget randomness
}

TEST(PowerTrace, TransitionModelCountsToggles) {
  const Circuit fa = masking::full_adder_circuit();
  PowerTraceSimulator sim(fa, {PowerModel::kHammingDistance, 0.0});
  TraceScratch scratch = sim.make_scratch();
  Xoshiro256 rng(7);
  const std::vector<std::uint8_t> zeros = {0, 0, 0};
  const std::vector<std::uint8_t> ones = {1, 1, 1};
  std::vector<double> trace(static_cast<std::size_t>(sim.samples_per_trace()));

  // No randomness in the plain adder: identical inputs, zero toggles.
  sim.capture_transition(ones, ones, rng, scratch, trace);
  for (double s : trace) EXPECT_EQ(s, 0.0);

  // 0 -> 1 on every input flips at least the three input wires.
  sim.capture_transition(zeros, ones, rng, scratch, trace);
  EXPECT_EQ(trace[0], 3.0);
  double total = 0.0;
  for (double s : trace) total += s;
  EXPECT_GT(total, 3.0);
}

TEST(PowerTrace, OrderZeroAveragedEqualsSingleCapture) {
  auto masked = masking::mask_circuit(masking::full_adder_circuit(), 0);
  MaskedTraceTarget target(std::move(masked), 3,
                           {PowerModel::kHammingWeight, 0.0});
  TraceScratch scratch = target.make_scratch();
  Xoshiro256 rng(9);
  std::vector<double> one(static_cast<std::size_t>(target.samples()));
  target.capture(0b101, rng, scratch, one);
  // Order 0, no noise: every repetition is identical, so the mean is too.
  const std::vector<double> avg = target.capture_averaged(0b101, rng, scratch, 8);
  EXPECT_EQ(one, avg);
}

TEST(PowerTrace, BatchCaptureBitIdenticalAcrossThreadCounts) {
  auto masked = masking::mask_circuit(masking::full_adder_circuit(), 1);
  MaskedTraceTarget target(std::move(masked), 3,
                           {PowerModel::kHammingWeight, 1.0});
  const Xoshiro256 base(0xBA7C4);
  const auto plain = [](std::uint64_t, Xoshiro256& rng) {
    return static_cast<std::uint32_t>(rng.next_u64() & 7);
  };

  TraceBatch reference;
  {
    par::ScopedThreadCount one(1);
    reference = capture_batch(target, 1000, plain, base);
  }
  EXPECT_EQ(reference.n, 1000u);
  EXPECT_EQ(reference.samples, target.samples());
  for (int threads : {2, 4, 7}) {
    par::ScopedThreadCount scope(threads);
    const TraceBatch batch = capture_batch(target, 1000, plain, base);
    EXPECT_EQ(batch.data, reference.data) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace convolve::sca
