// Directed edge cases of the bitsliced lane model: campaign sizes that
// straddle the 64-lane block width, degenerate netlists (inputs only, one
// gate), tail-lane masking in the packed accumulators, and counter-plane
// counts that force every fallback path (register CSA <= 4 planes, ripple
// 5..8, exact fold disabled > 8).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "convolve/common/rng.hpp"
#include "convolve/masking/circuit.hpp"
#include "convolve/sca/target.hpp"
#include "convolve/sca/tvla.hpp"

namespace convolve::sca {
namespace {

constexpr std::uint64_t kL =
    static_cast<std::uint64_t>(PowerTraceSimulator::kLanes);

MaskedTraceTarget wrap(masking::Circuit plain, unsigned order, double sigma,
                       int n_inputs) {
  auto masked = masking::mask_circuit(plain, order);
  return MaskedTraceTarget(std::move(masked), n_inputs,
                           {PowerModel::kHammingWeight, sigma});
}

/// Inputs only -- every wire is at depth 0, one sample per trace.
masking::Circuit inputs_only_circuit(int n) {
  masking::Circuit c;
  int last = 0;
  for (int i = 0; i < n; ++i) last = c.add_input();
  c.mark_output(last);
  return c;
}

/// `width` XOR gates all in one depth group: counter_planes ==
/// bit_width(width), the knob that selects the counter and fold paths.
masking::Circuit wide_group_circuit(int width) {
  masking::Circuit c;
  const int a = c.add_input();
  const int b = c.add_input();
  for (int i = 0; i < width; ++i) c.mark_output(c.add_xor(a, b));
  return c;
}

PlainValueFn mix_fn(std::uint32_t mask) {
  return [mask](std::uint64_t i, Xoshiro256& r) {
    return (static_cast<std::uint32_t>(r.next_u64()) +
            static_cast<std::uint32_t>(i)) &
           mask;
  };
}

void expect_lanes_agree(const MaskedTraceTarget& target, std::uint64_t n,
                        std::uint32_t mask) {
  const Xoshiro256 base(0xED6E ^ n);
  const TraceBatch wide = capture_batch(target, n, mix_fn(mask), base, 64);
  const TraceBatch narrow = capture_batch(target, n, mix_fn(mask), base, 1);
  EXPECT_EQ(wide.data, narrow.data) << "n=" << n;
}

TEST(BitsliceSmoke, TraceCountsAroundTheBlockWidth) {
  const auto target = wrap(masking::toy_sbox_circuit(), 1, 0.0, 4);
  for (std::uint64_t n : {1ull, 63ull, 64ull, 65ull, 127ull}) {
    expect_lanes_agree(target, n, 0xF);
  }
}

TEST(BitsliceLanes, InputsOnlyCircuitHasOneSampleAndAgrees) {
  const auto target = wrap(inputs_only_circuit(5), 0, 0.0, 5);
  EXPECT_EQ(target.samples(), 1);
  for (std::uint64_t n : {1ull, 64ull, 65ull}) {
    expect_lanes_agree(target, n, 0x1F);
  }
}

TEST(BitsliceLanes, SingleGateCircuitAgreesAtEveryOrder) {
  for (unsigned order : {0u, 1u, 2u}) {
    const auto target = wrap(masking::single_and_circuit(), order, 0.0, 2);
    expect_lanes_agree(target, 127, 0x3);
  }
}

TEST(BitsliceLanes, NoisyTailBlocksAgree) {
  // sigma > 0 exercises the per-lane noise draws on short tail blocks.
  const auto target = wrap(masking::full_adder_circuit(), 1, 0.9, 3);
  for (std::uint64_t n : {1ull, 63ull, 65ull, 130ull}) {
    expect_lanes_agree(target, n, 0x7);
  }
}

TEST(BitsliceLanes, RippleCounterFallbackAgrees) {
  // 40 gates in one depth group -> 6 counter planes: past the 4-plane
  // register-CSA limit, still within the exact fold's 8.
  const auto target = wrap(wide_group_circuit(40), 0, 0.0, 2);
  EXPECT_EQ(target.simulator().counter_planes(), 6);
  expect_lanes_agree(target, 200, 0x3);
  TvlaConfig w, n;
  w.lanes = 64;
  n.lanes = 1;
  const TvlaReport rw = tvla_fixed_vs_random(target, 1, 500, w);
  const TvlaReport rn = tvla_fixed_vs_random(target, 1, 500, n);
  EXPECT_EQ(rw.t1, rn.t1);
  EXPECT_EQ(rw.t2, rn.t2);
}

TEST(BitsliceLanes, WideGroupBeyondExactFoldStillAgrees) {
  // 300 gates in one group -> 9 counter planes: the exact integer fold is
  // off (counts would overflow its packed fields), TVLA takes the double
  // path, and the engines must still match bit-for-bit.
  const auto target = wrap(wide_group_circuit(300), 0, 0.0, 2);
  EXPECT_GT(target.simulator().counter_planes(), 8);
  EXPECT_TRUE(target.supports_block_capture());
  expect_lanes_agree(target, 100, 0x3);
  TvlaConfig w, n;
  w.lanes = 64;
  n.lanes = 1;
  const TvlaReport rw = tvla_fixed_vs_random(target, 1, 420, w);
  const TvlaReport rn = tvla_fixed_vs_random(target, 1, 420, n);
  EXPECT_EQ(rw.t1, rn.t1);
  EXPECT_EQ(rw.t2, rn.t2);
}

TEST(BitsliceLanes, SampleMajorLayoutIsATranspose) {
  const auto target = wrap(masking::toy_sbox_circuit(), 0, 0.0, 4);
  const std::size_t n_act = 37;  // partial block on purpose
  const std::size_t samples = static_cast<std::size_t>(target.samples());
  const Xoshiro256 base(0x11AA);
  std::array<Xoshiro256, 64> rngs;
  std::array<std::uint32_t, 64> values;
  for (std::size_t j = 0; j < n_act; ++j) {
    rngs[j] = base.split(j);
    values[j] = static_cast<std::uint32_t>(rngs[j].next_u64() & 0xF);
  }
  auto fresh_rngs = [&] {
    std::array<Xoshiro256, 64> r;
    for (std::size_t j = 0; j < n_act; ++j) {
      r[j] = base.split(j);
      (void)r[j].next_u64();  // re-consume the value draw
    }
    return r;
  };
  BlockScratch scratch = target.make_block_scratch();
  std::vector<double> tmajor(n_act * samples), smajor(n_act * samples);
  auto r1 = fresh_rngs();
  target.capture_block({values.data(), n_act}, {r1.data(), n_act}, scratch,
                       tmajor, BlockLayout::kTraceMajor);
  auto r2 = fresh_rngs();
  target.capture_block({values.data(), n_act}, {r2.data(), n_act}, scratch,
                       smajor, BlockLayout::kSampleMajor);
  for (std::size_t j = 0; j < n_act; ++j) {
    for (std::size_t s = 0; s < samples; ++s) {
      EXPECT_EQ(tmajor[j * samples + s], smajor[s * n_act + j]);
    }
  }
}

TEST(BitsliceLanes, BlockCountsMatchDoubleCapture) {
  const auto target = wrap(masking::toy_sbox_circuit(), 1, 0.0, 4);
  const std::size_t n_act = 51;
  const std::size_t samples = static_cast<std::size_t>(target.samples());
  const Xoshiro256 base(0x22BB);
  std::array<Xoshiro256, 64> rngs;
  std::array<std::uint32_t, 64> values;
  for (std::size_t j = 0; j < n_act; ++j) {
    rngs[j] = base.split(j);
    values[j] = static_cast<std::uint32_t>(rngs[j].next_u64() & 0xF);
  }
  BlockScratch scratch = target.make_block_scratch();
  std::vector<double> doubles(n_act * samples);
  std::vector<std::uint8_t> bytes(n_act * samples);
  {
    auto r = rngs;
    target.capture_block({values.data(), n_act}, {r.data(), n_act}, scratch,
                         doubles, BlockLayout::kSampleMajor);
  }
  {
    auto r = rngs;
    target.capture_block_counts({values.data(), n_act}, {r.data(), n_act},
                                scratch, bytes);
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(static_cast<double>(bytes[i]), doubles[i]) << "i=" << i;
  }
}

TEST(BitsliceLanes, BlockSumsMatchPerLaneFoldWithTailMasking) {
  // The subset-popcount accumulator against brute force: fold two partial
  // blocks (37 then 22 active lanes, odd class masks) into one accumulator
  // and check the finalized packed sums against per-lane integer sums of
  // the same traces captured through capture_block. Tail lanes beyond
  // n_act must not contaminate either class.
  const auto target = wrap(masking::toy_sbox_circuit(), 1, 0.0, 4);
  const std::size_t samples = static_cast<std::size_t>(target.samples());
  const Xoshiro256 base(0x33CC);
  const std::size_t acts[2] = {37, 22};
  const std::uint64_t class_masks[2] = {0x5555555555555555ull & ((1ull << 37) - 1),
                                        0x0F0F0F0F0F0F0F0Full & ((1ull << 22) - 1)};

  BlockScratch scratch = target.make_block_scratch();
  BlockSumsAccum accum = target.make_block_sums_accum();
  // Reference sums, accumulated per lane from capture_block doubles.
  std::vector<std::uint64_t> in_s(4 * samples), out_s(4 * samples);

  for (int blk = 0; blk < 2; ++blk) {
    const std::size_t n_act = acts[blk];
    const std::uint64_t cmask = class_masks[blk];
    std::array<Xoshiro256, 64> rngs;
    std::array<std::uint32_t, 64> values;
    for (std::size_t j = 0; j < n_act; ++j) {
      rngs[j] = base.split(static_cast<std::uint64_t>(blk) * kL + j);
      values[j] = static_cast<std::uint32_t>(rngs[j].next_u64() & 0xF);
    }
    {
      auto r = rngs;
      target.accumulate_block_sums({values.data(), n_act}, {r.data(), n_act},
                                   scratch, cmask, accum);
    }
    std::vector<double> traces(n_act * samples);
    {
      auto r = rngs;
      target.capture_block({values.data(), n_act}, {r.data(), n_act}, scratch,
                           traces, BlockLayout::kSampleMajor);
    }
    for (std::size_t s = 0; s < samples; ++s) {
      for (std::size_t j = 0; j < n_act; ++j) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(traces[s * n_act + j]);
        auto* sums = ((cmask >> j) & 1) ? in_s.data() : out_s.data();
        std::uint64_t p = 1;
        for (int m = 0; m < 4; ++m) {
          p *= v;
          sums[s * 4 + static_cast<std::size_t>(m)] += p;
        }
      }
    }
  }

  std::vector<PackedMoments> in_pm(samples), out_pm(samples);
  target.finalize_block_sums(accum, in_pm, out_pm);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::uint64_t* exp_in = in_s.data() + s * 4;
    const std::uint64_t* exp_out = out_s.data() + s * 4;
    EXPECT_EQ(in_pm[s].s13 & 0xFFFF, exp_in[0]) << "S1 in, s=" << s;
    EXPECT_EQ(in_pm[s].s24 & 0xFFFFFF, exp_in[1]) << "S2 in, s=" << s;
    EXPECT_EQ(in_pm[s].s13 >> 16, exp_in[2]) << "S3 in, s=" << s;
    EXPECT_EQ(in_pm[s].s24 >> 24, exp_in[3]) << "S4 in, s=" << s;
    EXPECT_EQ(out_pm[s].s13 & 0xFFFF, exp_out[0]) << "S1 out, s=" << s;
    EXPECT_EQ(out_pm[s].s24 & 0xFFFFFF, exp_out[1]) << "S2 out, s=" << s;
    EXPECT_EQ(out_pm[s].s13 >> 16, exp_out[2]) << "S3 out, s=" << s;
    EXPECT_EQ(out_pm[s].s24 >> 24, exp_out[3]) << "S4 out, s=" << s;
  }
  // finalize_block_sums zeroes the accumulator: a second drain is empty.
  std::vector<PackedMoments> in2(samples), out2(samples);
  target.finalize_block_sums(accum, in2, out2);
  for (std::size_t s = 0; s < samples; ++s) {
    EXPECT_EQ(in2[s].s13, 0u);
    EXPECT_EQ(in2[s].s24, 0u);
    EXPECT_EQ(out2[s].s13, 0u);
    EXPECT_EQ(out2[s].s24, 0u);
  }
}

TEST(BitsliceLanes, TvlaTailChunksAgreeAtOddGrain) {
  // grain=96 (not a multiple of 64) forces partial blocks inside interior
  // chunks, not just at the campaign tail.
  const auto target = wrap(masking::toy_sbox_circuit(), 0, 0.0, 4);
  TvlaConfig w, n;
  w.grain = n.grain = 96;
  w.lanes = 64;
  n.lanes = 1;
  const TvlaReport rw = tvla_fixed_vs_random(target, 5, 1000, w);
  const TvlaReport rn = tvla_fixed_vs_random(target, 5, 1000, n);
  EXPECT_EQ(rw.t1, rn.t1);
  EXPECT_EQ(rw.t2, rn.t2);
}

}  // namespace
}  // namespace convolve::sca
