// Static-vs-empirical agreement matrix: the PR-1 symbolic probing verifier
// and a noiseless TVLA must grade DOM-AND identically at masking orders
// 0, 1 and 2 -- each oracle independently, then `agree` ties them together.
#include "convolve/analysis/empirical.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace convolve::analysis {
namespace {

CrossCheckReport check(unsigned masking_order, unsigned statistical_order) {
  const auto masked =
      masking::mask_circuit(masking::single_and_circuit(), masking_order);
  return cross_check_probing_vs_tvla(masked, 2, statistical_order, {});
}

TEST(CrossCheck, UnmaskedAndLeaksAndBothOraclesSeeIt) {
  const CrossCheckReport report = check(0, 1);
  EXPECT_FALSE(report.static_secure);
  EXPECT_TRUE(report.empirical_leak);
  EXPECT_GT(report.max_abs_t, 4.5);
  EXPECT_TRUE(report.agree);
}

TEST(CrossCheck, Order1DomSecureAtFirstOrderBothOracles) {
  const CrossCheckReport report = check(1, 1);
  EXPECT_TRUE(report.static_secure);
  EXPECT_FALSE(report.empirical_leak);
  EXPECT_LT(report.max_abs_t, 4.5);
  EXPECT_TRUE(report.agree);
}

TEST(CrossCheck, Order1DomLeaksAtSecondOrderBothOracles) {
  const CrossCheckReport report = check(1, 2);
  EXPECT_FALSE(report.static_secure);
  EXPECT_TRUE(report.empirical_leak);
  EXPECT_TRUE(report.agree);
}

TEST(CrossCheck, Order2DomSecureAtSecondOrderBothOracles) {
  const CrossCheckReport report = check(2, 2);
  EXPECT_TRUE(report.static_secure);
  EXPECT_FALSE(report.empirical_leak);
  EXPECT_TRUE(report.agree);
}

TEST(CrossCheck, Hpc2GadgetAgreesToo) {
  const auto hpc2 = masking::hpc2_and_gadget(1);
  const CrossCheckReport report = cross_check_probing_vs_tvla(hpc2, 2, 1, {});
  EXPECT_TRUE(report.static_secure);
  EXPECT_FALSE(report.empirical_leak);
  EXPECT_TRUE(report.agree);
}

TEST(CrossCheck, RejectsUnsupportedStatisticalOrder) {
  const auto masked = masking::mask_circuit(masking::single_and_circuit(), 1);
  EXPECT_THROW(cross_check_probing_vs_tvla(masked, 2, 0, {}),
               std::invalid_argument);
  EXPECT_THROW(cross_check_probing_vs_tvla(masked, 2, 3, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace convolve::analysis
