// Property-test harness for the bitsliced capture engine: the scalar
// (lanes=1) path is the differential oracle, and randomized circuits x
// secrets x noise seeds must agree with the 64-lane engine bit-for-bit --
// raw trace batches, TVLA statistics (every checkpoint of the curve) and
// CPA correlations alike, at every thread count.
//
// Case budget (a "case" is one random circuit/secret/seed triple pushed
// through both engines): 640 capture + 320 TVLA + 48 thread-sweep + 8 CPA
// + 32 smoke = 1048 randomized cases per run, on top of the directed
// edge-case suite in test_bitslice_lanes.cpp.
//
// The BitsliceSmoke-prefixed tests are a seconds-fast subset registered
// under the `sca_fast` ctest label (the check_sca_fast lane); the Bitslice
// tests are the full harness.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "convolve/analysis/aes_sbox.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/common/rng.hpp"
#include "convolve/sca/cpa.hpp"
#include "convolve/sca/target.hpp"
#include "convolve/sca/tvla.hpp"

namespace convolve::sca {
namespace {

// Random plain netlist: a topological DAG of XOR/AND/NOT/REG/CONST gates
// over n_inputs primary inputs. Every gate picks earlier wires uniformly,
// so depth-group shapes (and thus counter-plane counts) vary across cases.
masking::Circuit random_plain_circuit(Xoshiro256& rng, int n_inputs,
                                      int n_body) {
  masking::Circuit c;
  std::vector<int> wires;
  for (int i = 0; i < n_inputs; ++i) wires.push_back(c.add_input());
  auto pick = [&](std::size_t n) {
    return static_cast<std::size_t>(rng.next_u64() % n);
  };
  for (int g = 0; g < n_body; ++g) {
    const int a = wires[pick(wires.size())];
    const int b = wires[pick(wires.size())];
    switch (rng.next_u64() % 8) {
      case 0:
      case 1:
      case 2:
        wires.push_back(c.add_xor(a, b));
        break;
      case 3:
      case 4:
        wires.push_back(c.add_and(a, b));
        break;
      case 5:
        wires.push_back(c.add_not(a));
        break;
      case 6:
        wires.push_back(c.add_reg(a));
        break;
      default:
        wires.push_back(c.add_const(static_cast<int>(rng.next_u64() & 1)));
        break;
    }
  }
  c.mark_output(wires.back());
  return c;
}

struct Case {
  int n_inputs;
  unsigned order;
  double sigma;
  MaskedTraceTarget target;
};

// One random device under test: random netlist, random masking order
// (0..2), random bit order, noise on or off. Drawn entirely from `rng` so
// the sweep seed enumerates the case space.
Case random_case(Xoshiro256& rng) {
  const int n_inputs = 1 + static_cast<int>(rng.next_u64() % 10);
  const int n_body = 4 + static_cast<int>(rng.next_u64() % 44);
  const unsigned order = static_cast<unsigned>(rng.next_u64() % 3);
  const double sigma = (rng.next_u64() & 1) ? 0.0 : 0.7;
  const BitOrder bits =
      (rng.next_u64() & 1) ? BitOrder::kLsbFirst : BitOrder::kMsbFirst;
  auto masked = masking::mask_circuit(random_plain_circuit(rng, n_inputs,
                                                           n_body),
                                      order);
  return Case{n_inputs, order, sigma,
              MaskedTraceTarget(std::move(masked), n_inputs,
                                {PowerModel::kHammingWeight, sigma}, bits)};
}

// Random plain-value function mixing a per-case secret into rng-drawn
// values, so both engines must agree on data-dependent inputs too.
PlainValueFn random_plain_fn(std::uint32_t secret, int n_inputs) {
  const std::uint32_t mask =
      n_inputs >= 32 ? 0xFFFFFFFFu : ((1u << n_inputs) - 1u);
  return [secret, mask](std::uint64_t, Xoshiro256& r) {
    return (static_cast<std::uint32_t>(r.next_u64()) ^ secret) & mask;
  };
}

// One capture differential: batch the same campaign through the 64-lane
// engine and the scalar oracle; the double buffers must be bit-identical
// (operator== on the vectors -- no tolerance).
void expect_batch_identical(const Case& c, std::uint64_t n_traces,
                            std::uint64_t seed) {
  const std::uint32_t secret = static_cast<std::uint32_t>(seed * 0x9E37u);
  const auto plain = random_plain_fn(secret, c.n_inputs);
  const Xoshiro256 base(seed);
  const TraceBatch wide = capture_batch(c.target, n_traces, plain, base, 64);
  const TraceBatch narrow = capture_batch(c.target, n_traces, plain, base, 1);
  ASSERT_EQ(wide.n, narrow.n);
  ASSERT_EQ(wide.samples, narrow.samples);
  EXPECT_EQ(wide.data, narrow.data)
      << "inputs=" << c.n_inputs << " order=" << c.order
      << " sigma=" << c.sigma << " n=" << n_traces << " seed=" << seed;
}

// One TVLA differential: identical config except the engine; reports must
// match exactly (t vectors and every curve checkpoint). Exercises the
// exact integer fold (sigma=0, few counter planes) and the double fold
// (sigma>0) depending on the drawn case.
void expect_tvla_identical(const Case& c, int n_traces, std::uint64_t seed) {
  const std::uint32_t fixed = static_cast<std::uint32_t>(seed & 0x3F);
  TvlaConfig wide_cfg;
  wide_cfg.seed = seed;
  wide_cfg.lanes = 64;
  TvlaConfig narrow_cfg = wide_cfg;
  narrow_cfg.lanes = 1;
  const TvlaReport w = tvla_fixed_vs_random(c.target, fixed, n_traces,
                                            wide_cfg);
  const TvlaReport n = tvla_fixed_vs_random(c.target, fixed, n_traces,
                                            narrow_cfg);
  EXPECT_EQ(w.t1, n.t1) << "order=" << c.order << " sigma=" << c.sigma
                        << " seed=" << seed;
  EXPECT_EQ(w.t2, n.t2);
  ASSERT_EQ(w.curve.size(), n.curve.size());
  for (std::size_t i = 0; i < w.curve.size(); ++i) {
    EXPECT_EQ(w.curve[i].max_abs_t1, n.curve[i].max_abs_t1);
    EXPECT_EQ(w.curve[i].max_abs_t2, n.curve[i].max_abs_t2);
  }
  EXPECT_EQ(w.first_order_leak, n.first_order_leak);
  EXPECT_EQ(w.second_order_leak, n.second_order_leak);
}

MaskedTraceTarget sbox_target(unsigned order, double sigma) {
  auto masked = masking::mask_circuit(analysis::aes_sbox_circuit(), order);
  return MaskedTraceTarget(std::move(masked), 8,
                           {PowerModel::kHammingWeight, sigma},
                           BitOrder::kMsbFirst);
}

// --- Full harness ---------------------------------------------------------

TEST(BitsliceDifferential, CaptureBatchMatchesScalarOracle) {
  // 640 cases: 160 random circuits x 4 (trace count, campaign seed)
  // pairs. Trace counts straddle block boundaries so full blocks, tail
  // blocks and sub-block campaigns all appear.
  Xoshiro256 sweep(0xD1FFE2E47 ^ 1);
  const std::uint64_t counts[4] = {96, 128, 137, 256};
  for (int i = 0; i < 160; ++i) {
    const Case c = random_case(sweep);
    for (int k = 0; k < 4; ++k) {
      expect_batch_identical(c, counts[static_cast<std::size_t>(k)],
                             sweep.next_u64());
      if (HasFatalFailure()) return;
    }
  }
}

TEST(BitsliceDifferential, TvlaStatisticsMatchScalarEngine) {
  // 320 cases: 80 random circuits x 4 noise seeds each. n_traces is not a
  // multiple of 64 or of the chunk grain, so tail blocks inside tail
  // chunks are part of every case.
  Xoshiro256 sweep(0x7E57ED ^ 0xB17);
  for (int i = 0; i < 80; ++i) {
    const Case c = random_case(sweep);
    for (int k = 0; k < 4; ++k) {
      expect_tvla_identical(c, 420, sweep.next_u64());
      if (HasFatalFailure()) return;
    }
  }
}

TEST(BitsliceDifferential, ThreadCountNeverChangesEitherEngine) {
  // 48 cases: 6 random circuits x both engines x threads {1,2,4,7} must
  // all produce one bit-identical TVLA report.
  Xoshiro256 sweep(0x5EED5CA);
  for (int i = 0; i < 6; ++i) {
    const Case c = random_case(sweep);
    const std::uint64_t seed = sweep.next_u64();
    for (int lanes : {64, 1}) {
      TvlaConfig cfg;
      cfg.seed = seed;
      cfg.lanes = lanes;
      TvlaReport reference;
      {
        par::ScopedThreadCount one(1);
        reference = tvla_fixed_vs_random(c.target, 0x2A, 500, cfg);
      }
      for (int threads : {2, 4, 7}) {
        par::ScopedThreadCount scope(threads);
        const TvlaReport report =
            tvla_fixed_vs_random(c.target, 0x2A, 500, cfg);
        EXPECT_EQ(report.t1, reference.t1)
            << "lanes=" << lanes << " threads=" << threads;
        EXPECT_EQ(report.t2, reference.t2)
            << "lanes=" << lanes << " threads=" << threads;
      }
    }
  }
}

TEST(BitsliceDifferential, CpaMatchesScalarEngineOnSbox) {
  // 8 cases: the S-box CPA campaign across masking orders, noise levels
  // and keys; correlations and key ranking must agree exactly.
  const std::uint8_t keys[2] = {0x3C, 0xA7};
  int cases = 0;
  for (unsigned order : {0u, 1u}) {
    for (double sigma : {0.0, 0.8}) {
      const auto target = sbox_target(order, sigma);
      for (std::uint8_t key : keys) {
        CpaConfig wide_cfg;
        wide_cfg.seed = 0xC0FFEE ^ (order * 7919u) ^ key;
        wide_cfg.lanes = 64;
        CpaConfig narrow_cfg = wide_cfg;
        narrow_cfg.lanes = 1;
        const CpaReport w = cpa_sbox_attack(target, key, 768, wide_cfg);
        const CpaReport n = cpa_sbox_attack(target, key, 768, narrow_cfg);
        EXPECT_EQ(w.correlation, n.correlation)
            << "order=" << order << " sigma=" << sigma;
        EXPECT_EQ(w.rank, n.rank);
        EXPECT_EQ(w.recovered_key, n.recovered_key);
        ++cases;
      }
    }
  }
  EXPECT_EQ(cases, 8);
}

// --- sca_fast smoke subset ------------------------------------------------

TEST(BitsliceSmoke, CaptureBatchMatchesScalarOracle) {
  // 24 quick cases over small circuits; same property as the full sweep.
  Xoshiro256 sweep(0xFA57);
  for (int i = 0; i < 12; ++i) {
    const Case c = random_case(sweep);
    expect_batch_identical(c, 64, sweep.next_u64());
    expect_batch_identical(c, 70, sweep.next_u64());
    if (HasFatalFailure()) return;
  }
}

TEST(BitsliceSmoke, TvlaStatisticsMatchScalarEngine) {
  // 8 quick TVLA differentials.
  Xoshiro256 sweep(0xFA57 ^ 0xB17);
  for (int i = 0; i < 8; ++i) {
    const Case c = random_case(sweep);
    expect_tvla_identical(c, 200, sweep.next_u64());
    if (HasFatalFailure()) return;
  }
}

TEST(BitsliceSmoke, UnmaskedSboxSpeedupPathStillLeaks) {
  // The bench's 1M-trace campaign in miniature: the noiseless unmasked
  // S-box must fail first-order TVLA on both engines with the same curve.
  const auto target = sbox_target(0, 0.0);
  for (int lanes : {64, 1}) {
    TvlaConfig cfg;
    cfg.lanes = lanes;
    const TvlaReport r = tvla_fixed_vs_random(target, 0x52, 4096, cfg);
    EXPECT_TRUE(r.first_order_leak) << "lanes=" << lanes;
  }
}

}  // namespace
}  // namespace convolve::sca
