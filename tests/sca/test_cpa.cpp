// CPA key recovery against the AES S-box: works against the unmasked
// netlist, collapses against order-1 DOM -- the measured (not asserted)
// side of the masking-order security claim.
#include "convolve/sca/cpa.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "convolve/analysis/aes_sbox.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/common/stats.hpp"

namespace convolve::sca {
namespace {

MaskedTraceTarget sbox_target(unsigned order, double sigma) {
  auto masked = masking::mask_circuit(analysis::aes_sbox_circuit(), order);
  return MaskedTraceTarget(std::move(masked), 8,
                           {PowerModel::kHammingWeight, sigma},
                           BitOrder::kMsbFirst);
}

TEST(Cpa, RecoversKeyFromUnmaskedTraces) {
  const auto target = sbox_target(0, 1.0);
  const CpaReport report = cpa_sbox_attack(target, 0x3C, 1024);
  EXPECT_EQ(report.true_key, 0x3C);
  EXPECT_EQ(report.recovered_key, 0x3C);
  EXPECT_EQ(report.rank, 0);
  ASSERT_GE(report.traces_to_rank0, 0);
  EXPECT_LE(report.traces_to_rank0, 1024);
  ASSERT_EQ(report.correlation.size(), 256u);
  EXPECT_EQ(argmax(report.correlation), 0x3Cu);
}

TEST(Cpa, RecoversEveryTestedKeyByte) {
  const auto target = sbox_target(0, 0.5);
  for (std::uint8_t key : {0x00, 0x52, 0xA7, 0xFF}) {
    const CpaReport report = cpa_sbox_attack(target, key, 1024);
    EXPECT_EQ(report.recovered_key, key);
    EXPECT_EQ(report.rank, 0);
  }
}

TEST(Cpa, Order1MaskingDefeatsFirstOrderCpa) {
  const auto target = sbox_target(1, 1.0);
  const CpaReport report = cpa_sbox_attack(target, 0x3C, 2048);
  // Per-sample means are secret-independent under order-1 DOM: the correct
  // key never reaches the top of the ranking.
  EXPECT_EQ(report.traces_to_rank0, -1);
  EXPECT_GT(report.rank, 8);
}

TEST(Cpa, ReportBitIdenticalAcrossThreadCounts) {
  const auto target = sbox_target(0, 1.0);
  CpaConfig config;
  config.checkpoints = {256, 512};

  CpaReport reference;
  {
    par::ScopedThreadCount one(1);
    reference = cpa_sbox_attack(target, 0x77, 512, config);
  }
  for (int threads : {2, 4, 7}) {
    par::ScopedThreadCount scope(threads);
    const CpaReport report = cpa_sbox_attack(target, 0x77, 512, config);
    EXPECT_EQ(report.correlation, reference.correlation)
        << "threads=" << threads;
    ASSERT_EQ(report.curve.size(), reference.curve.size());
    for (std::size_t i = 0; i < report.curve.size(); ++i) {
      EXPECT_EQ(report.curve[i].rank, reference.curve[i].rank);
      EXPECT_EQ(report.curve[i].best_corr, reference.curve[i].best_corr);
    }
  }
}

TEST(Cpa, RejectsNonByteTargets) {
  auto masked = masking::mask_circuit(masking::full_adder_circuit(), 0);
  const MaskedTraceTarget target(std::move(masked), 3,
                                 {PowerModel::kHammingWeight, 0.0});
  EXPECT_THROW(cpa_sbox_attack(target, 0x3C, 256), std::invalid_argument);
}

}  // namespace
}  // namespace convolve::sca
