// TVLA transitions across masking orders: the empirical half of the
// acceptance matrix. Trace counts follow the calibration runs recorded in
// DESIGN.md section 5e -- the unmasked S-box fails first-order TVLA within
// the first checkpoint, order-1 DOM holds first order but collapses at
// second order, order-2 DOM holds both.
#include "convolve/sca/tvla.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "convolve/analysis/aes_sbox.hpp"
#include "convolve/common/parallel.hpp"

namespace convolve::sca {
namespace {

MaskedTraceTarget sbox_target(unsigned order, double sigma) {
  auto masked = masking::mask_circuit(analysis::aes_sbox_circuit(), order);
  return MaskedTraceTarget(std::move(masked), 8,
                           {PowerModel::kHammingWeight, sigma},
                           BitOrder::kMsbFirst);
}

TEST(Tvla, UnmaskedSboxFailsFirstOrderFast) {
  const auto target = sbox_target(0, 1.0);
  const TvlaReport report = tvla_fixed_vs_random(target, 0x52, 2048);
  EXPECT_TRUE(report.first_order_leak);
  EXPECT_GT(report.max_abs_t1, 4.5);
  ASSERT_GE(report.traces_to_first_order_fail, 0);
  EXPECT_LE(report.traces_to_first_order_fail, 2048);
}

TEST(Tvla, Order1DomPassesFirstOrderFailsSecondOrder) {
  const auto target = sbox_target(1, 0.0);
  const TvlaReport report = tvla_fixed_vs_random(target, 0x52, 8192);
  // First-order marginals of every wire are secret-independent.
  EXPECT_FALSE(report.first_order_leak);
  EXPECT_LT(report.max_abs_t1, 4.5);
  // The variance of the depth-group sums (both shares of one bit land in
  // the same sample) is not: centered squares separate the classes.
  EXPECT_TRUE(report.second_order_leak);
  ASSERT_GE(report.traces_to_second_order_fail, 0);
  EXPECT_LE(report.traces_to_second_order_fail, 2048);
}

TEST(Tvla, Order2DomPassesBothOrders) {
  const auto target = sbox_target(2, 0.0);
  const TvlaReport report = tvla_fixed_vs_random(target, 0x52, 16384);
  EXPECT_FALSE(report.first_order_leak);
  EXPECT_FALSE(report.second_order_leak);
  EXPECT_LT(report.max_abs_t1, 4.5);
  EXPECT_LT(report.max_abs_t2, 4.5);
}

TEST(Tvla, CurveIsMonotoneInCheckpointsAndEndsAtFullCount) {
  const auto target = sbox_target(0, 1.0);
  TvlaConfig config;
  config.checkpoints = {500, 1000, 1500};
  const TvlaReport report = tvla_fixed_vs_random(target, 0xAB, 1500, config);
  ASSERT_EQ(report.curve.size(), 3u);
  EXPECT_EQ(report.curve[0].traces, 500);
  EXPECT_EQ(report.curve[1].traces, 1000);
  EXPECT_EQ(report.curve[2].traces, 1500);
  EXPECT_EQ(report.curve.back().max_abs_t1, report.max_abs_t1);
  EXPECT_EQ(report.curve.back().max_abs_t2, report.max_abs_t2);
}

TEST(Tvla, ReportBitIdenticalAcrossThreadCounts) {
  const auto target = sbox_target(1, 1.0);
  TvlaConfig config;
  config.checkpoints = {512, 2000};

  TvlaReport reference;
  {
    par::ScopedThreadCount one(1);
    reference = tvla_fixed_vs_random(target, 0x52, 2000, config);
  }
  for (int threads : {2, 4, 7}) {
    par::ScopedThreadCount scope(threads);
    const TvlaReport report = tvla_fixed_vs_random(target, 0x52, 2000, config);
    EXPECT_EQ(report.t1, reference.t1) << "threads=" << threads;
    EXPECT_EQ(report.t2, reference.t2) << "threads=" << threads;
    ASSERT_EQ(report.curve.size(), reference.curve.size());
    for (std::size_t i = 0; i < report.curve.size(); ++i) {
      EXPECT_EQ(report.curve[i].max_abs_t1, reference.curve[i].max_abs_t1);
      EXPECT_EQ(report.curve[i].max_abs_t2, reference.curve[i].max_abs_t2);
    }
  }
}

TEST(Tvla, RejectsDegenerateRuns) {
  const auto target = sbox_target(0, 0.0);
  EXPECT_THROW(tvla_fixed_vs_random(target, 0, 2), std::invalid_argument);
  TvlaConfig config;
  config.checkpoints = {100000};  // no checkpoint within the budget
  EXPECT_THROW(tvla_fixed_vs_random(target, 0, 512, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace convolve::sca
