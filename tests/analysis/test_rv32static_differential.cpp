// Differential soundness harness for the static RV32 analyzer.
//
// Fuzzed programs execute on the reference interpreter (Rv32Cpu::step)
// under a taint-tracking shadow state (dynamic_oracle). The contract:
//
//   SOUNDNESS (hard gate, zero tolerance): every dynamically observed
//   secret-dependent branch/load/store/jump and every PMP / fetch /
//   illegal-instruction fault must have been flagged by the static pass
//   at the corresponding pc (fetch-type faults may instead be explained
//   at the pc of the transfer that produced the bad target). A pc the
//   static pass marked clean must never exhibit a hazard dynamically.
//
//   PRECISION (reported, not gated): the fraction of static secret/PMP
//   findings that some dynamic run confirmed. Over-approximation is
//   expected (that is what makes the pass sound); the ratio makes the
//   imprecision visible so it can be tracked across changes.
//
// The generator biases programs toward interesting shapes: secret-base
// materialization, table lookups, short loops, calls/returns, raw random
// words for illegal coverage. Both PMP'd U-mode and unprotected M-mode
// configurations are exercised.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <utility>

#include "convolve/analysis/rv32static/analyze.hpp"
#include "convolve/analysis/rv32static/dynamic_oracle.hpp"
#include "convolve/common/rng.hpp"
#include "convolve/tee/rv32.hpp"

namespace {

using namespace convolve;
using namespace convolve::analysis::rv32static;
namespace rv = tee::rv32asm;

constexpr std::uint64_t kMemBytes = 1 << 16;       // 64 KiB machine
constexpr std::uint32_t kCodeLimit = 0x4000;       // rx region
constexpr std::uint32_t kSecretBase = 0x8000;      // inside rw region
constexpr std::uint32_t kSecretSize = 0x40;
constexpr std::uint64_t kMaxSteps = 512;

struct FuzzProgram {
  std::vector<std::uint32_t> words;
  bool machine_mode = false;  // no PMP, M-mode
};

int reg_of(Xoshiro256& rng) { return 1 + static_cast<int>(rng.next_u64() % 7); }

FuzzProgram generate(Xoshiro256& rng) {
  FuzzProgram prog;
  prog.machine_mode = rng.next_u64() % 4 == 0;
  const int count = 12 + static_cast<int>(rng.next_u64() % 36);
  for (int i = 0; i < count; ++i) {
    const int rd = reg_of(rng);
    const int rs1 = reg_of(rng);
    const int rs2 = reg_of(rng);
    switch (rng.next_u64() % 16) {
      case 0:  // materialize the secret base and read a secret byte
        prog.words.push_back(rv::lui(rd, kSecretBase >> 12));
        prog.words.push_back(
            rv::lbu(rd, rd, static_cast<std::int32_t>(rng.next_u64() %
                                                      kSecretSize)));
        break;
      case 1:  // materialize a public data address
        prog.words.push_back(rv::lui(rd, 4 + static_cast<std::uint32_t>(
                                              rng.next_u64() % 4)));
        break;
      case 2:  // table lookup: rd = mem[rs1 + rs2]
        prog.words.push_back(rv::add(rd, rs1, rs2));
        prog.words.push_back(
            rv::lbu(rd, rd, static_cast<std::int32_t>(rng.next_u64() % 64)));
        break;
      case 3:
        prog.words.push_back(rv::lw(
            rd, rs1, static_cast<std::int32_t>(rng.next_u64() % 128) * 4));
        break;
      case 4:
        prog.words.push_back(rv::sw(
            rs2, rs1, static_cast<std::int32_t>(rng.next_u64() % 128) * 4));
        break;
      case 5: {  // short forward branch
        const int skip = 1 + static_cast<int>(rng.next_u64() % 4);
        switch (rng.next_u64() % 4) {
          case 0: prog.words.push_back(rv::beq(rs1, rs2, 4 * (skip + 1))); break;
          case 1: prog.words.push_back(rv::bne(rs1, rs2, 4 * (skip + 1))); break;
          case 2: prog.words.push_back(rv::bltu(rs1, rs2, 4 * (skip + 1))); break;
          default: prog.words.push_back(rv::bge(rs1, rs2, 4 * (skip + 1))); break;
        }
        break;
      }
      case 6: {  // bounded counting loop
        const std::int32_t bound =
            4 + static_cast<std::int32_t>(rng.next_u64() % 12);
        prog.words.push_back(rv::addi(rd, 0, 0));
        prog.words.push_back(rv::addi(rd, rd, 1));
        prog.words.push_back(rv::bltu(rd, rs1 == rd ? 6 : rs1, -4));
        (void)bound;
        break;
      }
      case 7:  // small constants
        prog.words.push_back(rv::addi(
            rd, 0, static_cast<std::int32_t>(rng.next_u64() % 2048)));
        break;
      case 8:
      case 9:  // ALU mix
        switch (rng.next_u64() % 6) {
          case 0: prog.words.push_back(rv::add(rd, rs1, rs2)); break;
          case 1: prog.words.push_back(rv::xor_(rd, rs1, rs2)); break;
          case 2: prog.words.push_back(rv::and_(rd, rs1, rs2)); break;
          case 3: prog.words.push_back(rv::sltu(rd, rs1, rs2)); break;
          case 4: prog.words.push_back(rv::mul(rd, rs1, rs2)); break;
          default: prog.words.push_back(rv::divu(rd, rs1, rs2)); break;
        }
        break;
      case 10:
        prog.words.push_back(rv::andi(
            rd, rs1, static_cast<std::int32_t>(rng.next_u64() % 256)));
        break;
      case 11:
        prog.words.push_back(rv::srli(
            rd, rs1, static_cast<int>(rng.next_u64() % 32)));
        break;
      case 12: {  // call / return pair shape
        prog.words.push_back(rv::jal(1, 8));
        prog.words.push_back(rv::nop());
        prog.words.push_back(rv::jalr(0, 1, 0));
        break;
      }
      case 13:
        prog.words.push_back(rv::ecall());
        break;
      case 14:  // raw random word: decodes or not, sweep must cope
        prog.words.push_back(static_cast<std::uint32_t>(rng.next_u64()));
        break;
      default:  // far/odd jump targets for target-check coverage
        prog.words.push_back(
            rv::jal(0, static_cast<std::int32_t>(rng.next_u64() % 0x100) * 2 -
                           0x80));
        break;
    }
  }
  prog.words.push_back(rv::ecall());
  return prog;
}

void program_pmp(tee::PmpUnit& pmp) {
  tee::PmpEntry e;
  e.mode = tee::PmpAddressMode::kOff;
  e.address = 0;
  pmp.set_entry(0, e);
  e.mode = tee::PmpAddressMode::kTor;
  e.address = kCodeLimit >> 2;
  e.read = e.execute = true;
  e.write = false;
  pmp.set_entry(1, e);
  e.mode = tee::PmpAddressMode::kOff;
  e.address = kCodeLimit >> 2;
  e.read = e.write = e.execute = false;
  pmp.set_entry(2, e);
  e.mode = tee::PmpAddressMode::kTor;
  e.address = kMemBytes >> 2;
  e.read = e.write = true;
  e.execute = false;
  pmp.set_entry(3, e);
}

/// Explanations the static pass may give for a fetch-type fault at
/// `target` caused by the transfer at `from_pc`.
bool fetch_fault_explained(const StaticReport& report, std::uint32_t from_pc,
                           std::uint32_t target, const ImageSpec& image) {
  if (image.in_image(target) &&
      report.flagged(target, FindingKind::kPmpFetch)) {
    return true;
  }
  return report.flagged(from_pc, FindingKind::kOutOfImageTarget) ||
         report.flagged(from_pc, FindingKind::kMisalignedTarget) ||
         report.flagged(from_pc, FindingKind::kUnresolvedJump) ||
         report.flagged(from_pc, FindingKind::kSecretJump);
}

TEST(Rv32StaticDifferential, FuzzedProgramsNeverBeatTheStaticPass) {
  Xoshiro256 rng(0xc0ffee5eedull);

  std::uint64_t programs = 0;
  std::uint64_t events = 0;
  std::uint64_t soundness_violations = 0;
  // Precision bookkeeping: static secret/PMP findings vs dynamically
  // confirmed ones, keyed by (program, pc, kind) identity per run.
  std::uint64_t static_findings = 0;
  std::uint64_t confirmed_findings = 0;

  constexpr int kPrograms = 1100;
  for (int iter = 0; iter < kPrograms; ++iter) {
    const FuzzProgram prog = generate(rng);
    ++programs;

    ImageSpec image;
    image.code = rv::assemble(prog.words);
    image.base = 0;
    image.entry = 0;
    image.mode =
        prog.machine_mode ? tee::PrivMode::kMachine : tee::PrivMode::kUser;
    image.secret.push_back({kSecretBase, kSecretBase + kSecretSize});
    image.memory_size = kMemBytes;

    tee::Machine machine(kMemBytes);
    if (!prog.machine_mode) program_pmp(machine.pmp());
    // Code + data: code at 0, pseudo-random data everywhere else, so
    // loads see varied values and jalr targets are "interesting".
    auto ram = machine.raw_memory();
    for (std::size_t i = 0; i < image.code.size(); ++i) {
      ram[i] = image.code[i];
    }
    for (std::size_t a = kCodeLimit; a < kMemBytes; a += 8) {
      const std::uint64_t v = rng.next_u64();
      for (std::size_t b = 0; b < 8; ++b) {
        ram[a + b] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }

    AnalyzeOptions options;
    tee::PmpUnit policy;
    if (!prog.machine_mode) {
      program_pmp(policy);
      options.pmp_policy = &policy;
    }
    const AnalysisResult analysis = analyze(image, options);
    const StaticReport& report = analysis.report;
    ASSERT_TRUE(report.converged) << "fixpoint cap hit on program " << iter;

    const OracleResult oracle = run_oracle(machine, image, kMaxSteps);

    // --- Soundness: reachability ---
    for (const std::uint32_t pc : oracle.visited) {
      if (!analysis.absint.reachable[image.index_of(pc)]) {
        ++soundness_violations;
        ADD_FAILURE() << "program " << iter << ": executed pc 0x" << std::hex
                      << pc << " statically unreachable";
      }
    }

    // --- Soundness: every dynamic event is statically flagged ---
    std::set<std::pair<std::uint32_t, int>> confirmed;
    for (const OracleEvent& ev : oracle.events) {
      ++events;
      bool explained = false;
      FindingKind kind = FindingKind::kSecretBranch;
      std::uint32_t anchor = ev.pc;
      switch (ev.kind) {
        case EventKind::kSecretBranch:
          kind = FindingKind::kSecretBranch;
          explained = report.flagged(ev.pc, kind);
          break;
        case EventKind::kSecretLoad:
          kind = FindingKind::kSecretLoad;
          explained = report.flagged(ev.pc, kind);
          break;
        case EventKind::kSecretStore:
          kind = FindingKind::kSecretStore;
          explained = report.flagged(ev.pc, kind);
          break;
        case EventKind::kSecretJump:
          kind = FindingKind::kSecretJump;
          explained = report.flagged(ev.pc, kind);
          break;
        case EventKind::kFault:
          switch (ev.cause) {
            case tee::TrapCause::kLoadAccessFault:
              // trap.pc is the faulting load itself.
              kind = FindingKind::kPmpLoad;
              explained = report.flagged(ev.pc, kind);
              break;
            case tee::TrapCause::kStoreAccessFault:
              kind = FindingKind::kPmpStore;
              explained = report.flagged(ev.pc, kind);
              break;
            case tee::TrapCause::kIllegalInstruction:
              kind = FindingKind::kIllegalInsn;
              explained =
                  (image.in_image(ev.pc) && report.flagged(ev.pc, kind)) ||
                  fetch_fault_explained(report, ev.from_pc, ev.pc, image);
              break;
            case tee::TrapCause::kInstructionAccessFault:
            case tee::TrapCause::kMisalignedFetch:
              // trap.pc is the *target*; the responsible instruction is
              // the transfer at from_pc.
              kind = FindingKind::kPmpFetch;
              anchor = ev.from_pc;
              explained =
                  fetch_fault_explained(report, ev.from_pc, ev.pc, image);
              break;
            default:
              explained = true;  // ecall/ebreak never reach here
              break;
          }
          break;
      }
      if (explained) {
        confirmed.insert({anchor, static_cast<int>(kind)});
      } else {
        ++soundness_violations;
        ADD_FAILURE() << "program " << iter << ": dynamic event kind "
                      << static_cast<int>(ev.kind) << " cause "
                      << static_cast<int>(ev.cause) << " at pc 0x" << std::hex
                      << ev.pc << " (from 0x" << ev.from_pc
                      << ") not statically flagged";
        std::printf("  program %d words:\n", iter);
        for (std::size_t w = 0; w < prog.words.size(); ++w) {
          std::printf("    0x%04zx: 0x%08x\n", w * 4, prog.words[w]);
        }
        std::printf("  findings:\n");
        for (const Finding& f : report.findings) {
          std::printf("    0x%04x %s\n", f.pc, finding_name(f.kind));
        }
      }
    }

    // --- Precision bookkeeping ---
    for (const Finding& f : report.findings) {
      switch (f.kind) {
        case FindingKind::kSecretBranch:
        case FindingKind::kSecretLoad:
        case FindingKind::kSecretStore:
        case FindingKind::kSecretJump:
        case FindingKind::kPmpLoad:
        case FindingKind::kPmpStore:
          ++static_findings;
          if (confirmed.count({f.pc, static_cast<int>(f.kind)}) != 0) {
            ++confirmed_findings;
          }
          break;
        default:
          break;
      }
    }
  }

  EXPECT_EQ(soundness_violations, 0u);
  EXPECT_GE(programs, 1000u);
  // The corpus must actually exercise the contract, not vacuously pass.
  EXPECT_GT(events, 100u);

  const double precision =
      static_findings == 0
          ? 1.0
          : static_cast<double>(confirmed_findings) /
                static_cast<double>(static_findings);
  std::printf(
      "[rv32static-differential] programs=%llu events=%llu "
      "static_findings=%llu confirmed=%llu precision=%.3f\n",
      static_cast<unsigned long long>(programs),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(static_findings),
      static_cast<unsigned long long>(confirmed_findings), precision);
  // Sanity floor: the analyzer must not be uselessly imprecise on this
  // corpus (every finding dynamically unconfirmed would indicate the
  // domain collapsed to "flag everything").
  EXPECT_GT(precision, 0.02);
}

}  // namespace
