// Unit tests for the static RV32 analyzer: interval domain algebra, CFG
// recovery (blocks, edge kinds, call/return classification), finding
// extraction (secret-dependent control flow and accesses, PMP lint,
// unreachable code) and the PMP interval walk.
#include <gtest/gtest.h>

#include "convolve/analysis/rv32static/analyze.hpp"
#include "convolve/tee/rv32.hpp"

namespace {

using namespace convolve;
using namespace convolve::analysis::rv32static;
namespace rv = tee::rv32asm;

ImageSpec make_image(const std::vector<std::uint32_t>& words,
                     std::vector<AddrRange> secret = {},
                     std::uint32_t base = 0) {
  ImageSpec image;
  image.code = rv::assemble(words);
  image.base = base;
  image.entry = base;
  image.secret = std::move(secret);
  image.memory_size = 1 << 16;
  return image;
}

// --- Interval domain ---

TEST(Rv32StaticDomain, JoinAndWiden) {
  const Interval a{4, 10};
  const Interval b{8, 20};
  const Interval j = Interval::join(a, b);
  EXPECT_EQ(j.lo, 4u);
  EXPECT_EQ(j.hi, 20u);

  const Interval w = Interval::widen(a, j);
  EXPECT_EQ(w.lo, 4u);             // lower bound unchanged -> kept
  EXPECT_EQ(w.hi, 0xffffffffu);    // upper bound moved -> extreme
  EXPECT_EQ(Interval::widen(a, a), a);
}

TEST(Rv32StaticDomain, ArithmeticOverApproximates) {
  const Interval a{10, 20};
  const Interval b{1, 5};
  const Interval sum = Interval::add(a, b);
  EXPECT_EQ(sum.lo, 11u);
  EXPECT_EQ(sum.hi, 25u);
  const Interval diff = Interval::sub(a, b);
  EXPECT_EQ(diff.lo, 5u);
  EXPECT_EQ(diff.hi, 19u);
  // Potential wrap in either direction degrades to top, never to a lie.
  EXPECT_TRUE(Interval::add({0xfffffffe, 0xffffffff}, {1, 2}).is_top());
  EXPECT_TRUE(Interval::sub({0, 1}, {2, 2}).is_top());
  EXPECT_TRUE(Interval::shift_left({0x10000000, 0x20000000}, 4).is_top());
  const Interval sr = Interval::shift_right({0x100, 0x1ff}, 4);
  EXPECT_EQ(sr.lo, 0x10u);
  EXPECT_EQ(sr.hi, 0x1fu);
}

TEST(Rv32StaticDomain, IntersectReportsEmpty) {
  bool empty = false;
  const Interval i = Interval::intersect({0, 10}, {5, 20}, empty);
  EXPECT_FALSE(empty);
  EXPECT_EQ(i.lo, 5u);
  EXPECT_EQ(i.hi, 10u);
  (void)Interval::intersect({0, 4}, {5, 20}, empty);
  EXPECT_TRUE(empty);
}

TEST(Rv32StaticDomain, RegStatePinsX0) {
  RegState s;
  s.set_reg(0, AbsVal::top(true));
  EXPECT_TRUE(s.reg(0).iv.singleton());
  EXPECT_EQ(s.reg(0).iv.lo, 0u);
  EXPECT_FALSE(s.reg(0).taint);
}

// --- CFG recovery ---

TEST(Rv32StaticCfg, BlocksEdgesAndCallReturn) {
  // 0x00 jal ra, +12   -> call the "function" at 0x0c
  // 0x04 nop           <- return site
  // 0x08 ecall
  // 0x0c jalr x0, ra   -> return (ra = 4, resolved by the fixpoint)
  const ImageSpec image = make_image({
      rv::jal(1, 12),
      rv::nop(),
      rv::ecall(),
      rv::jalr(0, 1, 0),
  });
  const AnalysisResult r = analyze(image);

  EXPECT_TRUE(r.report.converged);
  ASSERT_EQ(r.cfg.blocks.size(), 3u);
  EXPECT_EQ(r.report.cfg.reachable_blocks, 3u);

  ASSERT_NE(r.cfg.block_at(0x0c), nullptr);
  EXPECT_TRUE(r.cfg.block_at(0x0c)->reachable);

  bool saw_call = false;
  bool saw_return = false;
  bool saw_resume = false;
  for (const auto& e : r.cfg.edges) {
    if (e.from_pc == 0x00 && e.to_pc == 0x0c && e.kind == EdgeKind::kCall) {
      saw_call = true;
    }
    if (e.from_pc == 0x0c && e.to_pc == 0x04 && e.kind == EdgeKind::kReturn) {
      saw_return = true;
    }
    if (e.from_pc == 0x08 && e.to_pc == 0x0c && e.kind == EdgeKind::kResume) {
      saw_resume = true;
    }
  }
  EXPECT_TRUE(saw_call);
  EXPECT_TRUE(saw_return);
  EXPECT_TRUE(saw_resume);

  const auto it = r.cfg.indirect_targets.find(0x0c);
  ASSERT_NE(it, r.cfg.indirect_targets.end());
  ASSERT_EQ(it->second.size(), 1u);
  EXPECT_EQ(it->second[0], 0x04u);
}

TEST(Rv32StaticCfg, UnreachableBlockIsFlagged) {
  // jal jumps over the middle instruction.
  const ImageSpec image = make_image({
      rv::jal(0, 8),
      rv::addi(5, 0, 1),  // dead
      rv::ecall(),
  });
  const AnalysisResult r = analyze(image);
  EXPECT_TRUE(r.report.flagged(0x04, FindingKind::kUnreachableCode));
  // Informational: the image still counts as clean at other pcs.
  EXPECT_TRUE(r.report.clean(0x00));
}

TEST(Rv32StaticCfg, UnresolvedIndirectMakesEverythingReachable) {
  const ImageSpec image = make_image({
      rv::lw(5, 0, 0x100),  // unknown value
      rv::jalr(0, 5, 0),    // unbounded target
      rv::addi(6, 0, 1),    // only reachable via the sound fallback
      rv::ecall(),
  });
  const AnalysisResult r = analyze(image);
  EXPECT_TRUE(r.report.has_unresolved_indirect);
  EXPECT_TRUE(r.report.flagged(0x04, FindingKind::kUnresolvedJump));
  for (const auto& block : r.cfg.blocks) EXPECT_TRUE(block.reachable);
}

// --- Abstract interpretation precision ---

TEST(Rv32StaticAbsint, EqualityRefinementNarrowsTakenEdge) {
  // x6 unknown; the beq-taken edge must know x6 == 7. The not-taken
  // path parks in a self-loop so no unrefined state joins the target.
  const ImageSpec image = make_image({
      rv::addi(5, 0, 7),
      rv::lw(6, 0, 0x100),
      rv::beq(6, 5, 12),  // taken -> 0x14
      rv::nop(),
      rv::jal(0, 0),      // not-taken path spins here
      rv::addi(7, 6, 0),  // taken target @0x14: x7 = x6 = 7
      rv::ecall(),
  });
  const AnalysisResult r = analyze(image);
  ASSERT_TRUE(r.absint.reachable[5]);
  const Interval x6 = r.absint.in_state[5].reg(6).iv;
  EXPECT_EQ(x6.lo, 7u);
  EXPECT_EQ(x6.hi, 7u);
}

TEST(Rv32StaticAbsint, LoopWidensAndExitRefines) {
  // for (x5 = 0; x5 < 100; ++x5) {}  -- exit knows x5 >= 100.
  const ImageSpec image = make_image({
      rv::addi(6, 0, 100),
      rv::addi(5, 0, 0),
      rv::addi(5, 5, 1),
      rv::bltu(5, 6, -4),
      rv::ecall(),
  });
  const AnalysisResult r = analyze(image);
  EXPECT_TRUE(r.report.converged);
  EXPECT_LT(r.report.fixpoint_iterations, 1000u);
  ASSERT_TRUE(r.absint.reachable[4]);
  EXPECT_GE(r.absint.in_state[4].reg(5).iv.lo, 100u);
}

// --- Secret findings ---

TEST(Rv32StaticFindings, SecretBranchAndLoad) {
  // x6 <- secret byte; table lookup indexed by it; branch on it.
  const ImageSpec image = make_image(
      {
          rv::addi(5, 0, 0x600),  // secret base
          rv::lbu(6, 5, 0),       // tainted
          rv::addi(7, 0, 0x400),  // public table
          rv::add(8, 7, 6),
          rv::lbu(9, 8, 0),       // secret-indexed load @0x10
          rv::beq(6, 0, 8),       // secret branch        @0x14
          rv::nop(),
          rv::ecall(),
      },
      {{0x600, 0x610}});
  const AnalysisResult r = analyze(image);
  EXPECT_TRUE(r.report.flagged(0x10, FindingKind::kSecretLoad));
  EXPECT_TRUE(r.report.flagged(0x14, FindingKind::kSecretBranch));
  // The public accesses stay clean.
  EXPECT_TRUE(r.report.clean(0x04));
  EXPECT_FALSE(r.report.any(FindingKind::kSecretStore));
}

TEST(Rv32StaticFindings, TaintFlowsThroughMemory) {
  // Secret -> store to public scratch -> reload -> branch: the
  // flow-insensitive memory taint must carry it.
  const ImageSpec image = make_image(
      {
          rv::addi(5, 0, 0x600),
          rv::lw(6, 5, 0),       // tainted
          rv::addi(7, 0, 0x400),
          rv::sw(6, 7, 0),       // taints [0x400, 0x404)
          rv::lw(8, 7, 0),       // reload: tainted again
          rv::bne(8, 0, 8),      // secret branch @0x14
          rv::nop(),
          rv::ecall(),
      },
      {{0x600, 0x604}});
  const AnalysisResult r = analyze(image);
  EXPECT_TRUE(r.report.flagged(0x14, FindingKind::kSecretBranch));
}

TEST(Rv32StaticFindings, SecretJumpFlagged) {
  const ImageSpec image = make_image(
      {
          rv::addi(5, 0, 0x600),
          rv::lw(6, 5, 0),    // tainted
          rv::jalr(0, 6, 0),  // secret-dependent target @0x08
          rv::ecall(),
      },
      {{0x600, 0x604}});
  const AnalysisResult r = analyze(image);
  EXPECT_TRUE(r.report.flagged(0x08, FindingKind::kSecretJump));
  EXPECT_TRUE(r.report.flagged(0x08, FindingKind::kUnresolvedJump));
}

TEST(Rv32StaticFindings, MisalignedAndOutOfImageTargets) {
  // x5/x6 are unknown at entry, so both branch edges stay feasible.
  const ImageSpec image = make_image({
      rv::beq(5, 6, 6),   // in-image but misaligned target (pc + 6)
      rv::jal(0, 0x400),  // far outside the image
      rv::ecall(),
  });
  const AnalysisResult r = analyze(image);
  EXPECT_TRUE(r.report.flagged(0x00, FindingKind::kMisalignedTarget));
  EXPECT_TRUE(r.report.flagged(0x04, FindingKind::kOutOfImageTarget));
}

TEST(Rv32StaticFindings, FallthroughOffImageEnd) {
  // The last slot is a plain addi: execution runs off the end.
  const ImageSpec image = make_image({
      rv::addi(5, 0, 1),
      rv::addi(6, 0, 2),
  });
  const AnalysisResult r = analyze(image);
  EXPECT_TRUE(r.report.flagged(0x04, FindingKind::kOutOfImageTarget));
}

TEST(Rv32StaticFindings, ReachableIllegalFlagged) {
  const ImageSpec image = make_image({
      rv::addi(5, 0, 1),
      0x00000000u,  // illegal
      rv::ecall(),  // unreachable: execution traps at 0x04
  });
  const AnalysisResult r = analyze(image);
  EXPECT_TRUE(r.report.flagged(0x04, FindingKind::kIllegalInsn));
  EXPECT_TRUE(r.report.flagged(0x08, FindingKind::kUnreachableCode));
}

// --- PMP lint ---

tee::PmpUnit rwx_policy() {
  // [0, 0x1000) rx ; [0x1000, 0x2000) rw
  tee::PmpUnit pmp;
  tee::PmpEntry e;
  e.mode = tee::PmpAddressMode::kOff;
  e.address = 0;
  pmp.set_entry(0, e);
  e.mode = tee::PmpAddressMode::kTor;
  e.address = 0x1000 >> 2;
  e.read = e.execute = true;
  e.write = false;
  pmp.set_entry(1, e);
  e.mode = tee::PmpAddressMode::kOff;
  e.address = 0x1000 >> 2;
  e.read = e.write = e.execute = false;
  pmp.set_entry(2, e);
  e.mode = tee::PmpAddressMode::kTor;
  e.address = 0x2000 >> 2;
  e.read = e.write = true;
  e.execute = false;
  pmp.set_entry(3, e);
  return pmp;
}

TEST(Rv32StaticPmp, IntervalWalkMatchesPolicy) {
  const tee::PmpUnit pmp = rwx_policy();
  const auto mode = tee::PrivMode::kUser;
  EXPECT_TRUE(interval_access_allowed(pmp, 0x1000, 0x1ffc, 4, mode,
                                      tee::AccessType::kWrite, 1 << 16));
  // Crossing the rx/rw boundary: some access straddles both regions.
  EXPECT_FALSE(interval_access_allowed(pmp, 0xff0, 0x1010, 4, mode,
                                       tee::AccessType::kWrite, 1 << 16));
  // No matching entry at all in U-mode: denied.
  EXPECT_FALSE(interval_access_allowed(pmp, 0x3000, 0x3000, 4, mode,
                                       tee::AccessType::kRead, 1 << 16));
  // Out of physical memory even though the policy would allow it.
  EXPECT_FALSE(interval_access_allowed(pmp, 0x1ff0, 0x1ffe, 4, mode,
                                       tee::AccessType::kWrite, 0x2000));
  EXPECT_TRUE(interval_access_allowed(pmp, 0x1ff0, 0x1ffc, 4, mode,
                                      tee::AccessType::kWrite, 0x2000));
}

TEST(Rv32StaticPmp, PolicyViolationsBecomeFindings) {
  const tee::PmpUnit pmp = rwx_policy();
  ImageSpec image = make_image({
      rv::lui(5, 1),       // x5 = 0x1000
      rv::sw(0, 5, 16),    // write inside rw region: allowed
      rv::lui(6, 3),       // x6 = 0x3000
      rv::lw(7, 6, 0),     // read with no matching entry @0x0c: denied
      rv::ecall(),
  });
  AnalyzeOptions options;
  options.pmp_policy = &pmp;
  const AnalysisResult r = analyze(image, options);
  EXPECT_FALSE(r.report.any(FindingKind::kPmpStore));
  EXPECT_TRUE(r.report.flagged(0x0c, FindingKind::kPmpLoad));
  // Code runs at [0, 0x14) inside the rx region: no fetch findings.
  EXPECT_FALSE(r.report.any(FindingKind::kPmpFetch));
}

TEST(Rv32StaticPmp, FetchOutsideExecutableRegionFlagged) {
  const tee::PmpUnit pmp = rwx_policy();
  // Image loaded at 0x1000 (the rw, non-x region).
  ImageSpec image = make_image({rv::ecall()}, {}, 0x1000);
  AnalyzeOptions options;
  options.pmp_policy = &pmp;
  const AnalysisResult r = analyze(image, options);
  EXPECT_TRUE(r.report.flagged(0x1000, FindingKind::kPmpFetch));
}

TEST(Rv32StaticPmp, NoPolicyStillBoundsPhysicalMemory) {
  ImageSpec image = make_image({
      rv::lui(5, 0x10),  // x5 = 0x10000 = memory_size
      rv::lw(6, 5, 0),   // reads past the end of physical memory @0x04
      rv::ecall(),
  });
  const AnalysisResult r = analyze(image);
  EXPECT_TRUE(r.report.flagged(0x04, FindingKind::kPmpLoad));
}

}  // namespace
