// Tests for the secret-taint constant-time lint: the Tainted<T> tracker
// itself (propagation + hazard detection) and the lint verdicts over the
// production crypto templates.
#include <gtest/gtest.h>

#include <cstdint>

#include "convolve/analysis/ct_taint.hpp"
#include "convolve/crypto/aes.hpp"

namespace convolve::analysis {
namespace {

using T8 = Tainted<std::uint8_t>;
using T32 = Tainted<std::uint32_t>;

TEST(Tainted, PropagatesThroughArithmetic) {
  const T8 s = T8::secret(0x5a);
  const T8 p(0x0f);

  EXPECT_TRUE((s ^ p).tainted());
  EXPECT_TRUE((p & s).tainted());
  EXPECT_TRUE((s + s).tainted());
  EXPECT_TRUE((~s).tainted());
  EXPECT_FALSE((p | p).tainted());
  EXPECT_EQ((s ^ p).value(), 0x55);

  // Width conversion keeps the flag.
  EXPECT_TRUE(T32(s).tainted());
  EXPECT_FALSE(T32(p).tainted());
  // Declassification clears it.
  EXPECT_FALSE(s.declassified().tainted());
}

TEST(Tainted, PublicOperationsRecordNothing) {
  ScopedTaintSink guard;
  T8 p(0x33);
  p = p ^ T8(0x11);
  p = p << 2;
  if (p == T8(0x88)) p = p | T8(1);          // public branch
  volatile auto unused = (p % T8(7)).value();  // public division
  (void)unused;
  EXPECT_EQ(guard.sink().total(), 0u);
}

TEST(Tainted, SecretBranchIsReported) {
  ScopedTaintSink guard;
  const T8 s = T8::secret(1);
  if (s == T8(1)) {
    // The *conversion to bool* is the hazard, regardless of the branch arm.
  }
  ASSERT_EQ(guard.sink().total(), 1u);
  EXPECT_EQ(guard.sink().findings()[0].kind, Hazard::kBranch);
}

TEST(Tainted, SecretTableIndexIsReported) {
  ScopedTaintSink guard;
  const auto v =
      tainted_lookup(crypto::aes_sbox_table(), T8::secret(0x42));
  EXPECT_TRUE(v.tainted());
  EXPECT_EQ(v.value(), crypto::aes_sbox_table()[0x42]);
  ASSERT_EQ(guard.sink().total(), 1u);
  EXPECT_EQ(guard.sink().findings()[0].kind, Hazard::kTableIndex);

  // A public index is fine.
  const auto w = tainted_lookup(crypto::aes_sbox_table(), T8(0x42));
  EXPECT_FALSE(w.tainted());
  EXPECT_EQ(guard.sink().total(), 1u);
}

TEST(Tainted, SecretShiftAmountIsReported) {
  ScopedTaintSink guard;
  const T32 x(0xdeadbeef);
  const auto y = x << T32::secret(4);
  EXPECT_TRUE(y.tainted());
  ASSERT_EQ(guard.sink().total(), 1u);
  EXPECT_EQ(guard.sink().findings()[0].kind, Hazard::kVariableShift);
}

TEST(Tainted, SecretDivisionIsReported) {
  ScopedTaintSink guard;
  const T32 s = T32::secret(1000);
  volatile auto unused = (s % T32(3329)).value();
  (void)unused;
  EXPECT_EQ(guard.sink().total(), 1u);
  EXPECT_EQ(guard.sink().findings()[0].kind, Hazard::kDivision);
}

TEST(Tainted, ContextLabelsNestInFindings) {
  ScopedTaintSink guard;
  {
    TaintScope outer("aes");
    TaintScope inner("key-expand");
    (void)tainted_lookup(crypto::aes_sbox_table(), T8::secret(1));
  }
  const auto findings = guard.sink().findings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].context, "aes/key-expand");
  EXPECT_EQ(findings[0].count, 1u);
}

// Lint verdicts over the production templates ------------------------------

TEST(CtLint, Aes256IsConstantTime) {
  const auto r = lint_aes256();
  EXPECT_EQ(r.hazard_count, 0u) << "shipped AES-256 recorded timing hazards";
  EXPECT_TRUE(r.output_matches);
  EXPECT_TRUE(r.clean());
}

TEST(CtLint, Chacha20IsConstantTime) {
  const auto r = lint_chacha20();
  EXPECT_EQ(r.hazard_count, 0u);
  EXPECT_TRUE(r.output_matches);
}

TEST(CtLint, KeccakIsConstantTime) {
  const auto r = lint_keccak_f1600();
  EXPECT_EQ(r.hazard_count, 0u);
  EXPECT_TRUE(r.output_matches);
}

TEST(CtLint, HmacSha512IsConstantTime) {
  const auto r = lint_hmac_sha512();
  EXPECT_EQ(r.hazard_count, 0u);
  EXPECT_TRUE(r.output_matches);
}

/// The reference NTTs reduce with `%` plus a sign test: the lint must
/// surface exactly those hazard classes (this is a detection test -- the
/// hazards are real properties of the reference implementation).
TEST(CtLint, KyberNttHazardsAreDetected) {
  const auto r = lint_kyber_ntt();
  EXPECT_TRUE(r.output_matches) << "tainted NTT diverged from plain NTT";
  EXPECT_GT(r.hazard_count, 0u);
  bool saw_division = false;
  bool saw_branch = false;
  for (const auto& f : r.findings) {
    saw_division = saw_division || f.kind == Hazard::kDivision;
    saw_branch = saw_branch || f.kind == Hazard::kBranch;
  }
  EXPECT_TRUE(saw_division);
  EXPECT_TRUE(saw_branch);
}

TEST(CtLint, DilithiumNttHazardsAreDetected) {
  const auto r = lint_dilithium_ntt();
  EXPECT_TRUE(r.output_matches);
  EXPECT_GT(r.hazard_count, 0u);
}

TEST(CtLint, LintAllCoversEverySuite) {
  const auto all = lint_all();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].suite, "aes256");
  EXPECT_EQ(all[1].suite, "chacha20");
  EXPECT_EQ(all[2].suite, "keccak");
  EXPECT_EQ(all[3].suite, "hmac");
  EXPECT_EQ(all[4].suite, "kyber-ntt");
  EXPECT_EQ(all[5].suite, "dilithium-ntt");
  for (const auto& r : all) EXPECT_TRUE(r.output_matches) << r.suite;
}

}  // namespace
}  // namespace convolve::analysis
