// Differential and semantic tests for the symbolic probing verifier: every
// verdict the symbolic engine can reach on exhaustively checkable circuits
// must agree with the ground-truth enumerator, and confirmed leaks must
// replay through the exhaustive machinery.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "convolve/analysis/aes_sbox.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/analysis/design_check.hpp"
#include "convolve/analysis/leakage_verify.hpp"
#include "convolve/common/rng.hpp"
#include "convolve/crypto/aes.hpp"
#include "convolve/hades/library.hpp"
#include "convolve/masking/circuit.hpp"
#include "convolve/masking/probing.hpp"

namespace convolve::analysis {
namespace {

using masking::Circuit;
using masking::MaskedCircuit;

/// Run the symbolic verifier and the exhaustive checker on the same masked
/// circuit and require identical secure/insecure verdicts. Confirmed leaks
/// must carry a replayable counterexample.
void expect_agreement(const MaskedCircuit& masked, int plain_inputs,
                      unsigned probe_order) {
  const SymbolicReport sym =
      verify_probing_symbolic(masked, plain_inputs, probe_order);
  const masking::ProbingReport exact =
      masking::check_probing_security(masked, plain_inputs, probe_order);

  // The symbolic engine must never be *unresolved* on circuits small
  // enough for ground truth, so verdicts are binary here.
  ASSERT_NE(sym.verdict, Verdict::kPotentialLeak)
      << "fallback budget too small for a ground-truth-checkable circuit";
  EXPECT_EQ(sym.secure, exact.secure)
      << "symbolic and exhaustive verdicts disagree at d=" << probe_order;

  if (sym.verdict == Verdict::kLeak) {
    EXPECT_TRUE(masking::replay_counterexample(masked, sym.to_probing_report()))
        << "symbolic counterexample did not replay";
  }
}

TEST(LeakageVerifyDifferential, DomSingleAndOrder1) {
  const auto masked = masking::mask_circuit(masking::single_and_circuit(), 1);
  expect_agreement(masked, 2, 1);
  expect_agreement(masked, 2, 2);
}

TEST(LeakageVerifyDifferential, DomSingleAndOrder2) {
  const auto masked = masking::mask_circuit(masking::single_and_circuit(), 2);
  expect_agreement(masked, 2, 1);
  expect_agreement(masked, 2, 2);
}

TEST(LeakageVerifyDifferential, FullAdderOrder1) {
  const auto masked = masking::mask_circuit(masking::full_adder_circuit(), 1);
  expect_agreement(masked, 3, 1);
}

TEST(LeakageVerifyDifferential, FullAdderOrder2) {
  const auto masked = masking::mask_circuit(masking::full_adder_circuit(), 2);
  expect_agreement(masked, 3, 1);
}

TEST(LeakageVerifyDifferential, ToySboxOrder1) {
  const auto masked = masking::mask_circuit(masking::toy_sbox_circuit(), 1);
  expect_agreement(masked, 4, 1);
}

TEST(LeakageVerifyDifferential, Hpc2Order1) {
  const auto gadget = masking::hpc2_and_gadget(1);
  expect_agreement(gadget, 2, 1);
}

TEST(LeakageVerifyDifferential, Hpc2Order2) {
  const auto gadget = masking::hpc2_and_gadget(2);
  expect_agreement(gadget, 2, 1);
  expect_agreement(gadget, 2, 2);
}

/// Small random circuits: structural diversity the fixed gadgets miss.
Circuit random_circuit(std::uint64_t seed, int n_inputs, int n_gates) {
  Xoshiro256 rng(seed);
  Circuit c;
  std::vector<int> wires;
  for (int i = 0; i < n_inputs; ++i) wires.push_back(c.add_input());
  for (int g = 0; g < n_gates; ++g) {
    const int a = wires[rng.uniform(wires.size())];
    const int b = wires[rng.uniform(wires.size())];
    switch (rng.uniform(3)) {
      case 0:
        wires.push_back(c.add_and(a, b));
        break;
      case 1:
        wires.push_back(c.add_xor(a, b));
        break;
      default:
        wires.push_back(c.add_not(a));
        break;
    }
  }
  c.mark_output(wires.back());
  return c;
}

TEST(LeakageVerifyDifferential, RandomCircuitsOrder1) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Circuit plain = random_circuit(seed, 3, 6);
    const auto masked = masking::mask_circuit(plain, 1);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_agreement(masked, 3, 1);
    expect_agreement(masked, 3, 2);
  }
}

// Glitch-extended mode ----------------------------------------------------

/// (a0 ^ r) ^ a1 recombines both shares in one combinational cloud: secure
/// against standard probes, first-order insecure once glitches are modeled.
TEST(LeakageVerifyGlitch, UnregisteredRecombinerLeaks) {
  Circuit c;
  const int a0 = c.add_input();
  const int a1 = c.add_input();
  const int r = c.add_random();
  const int w1 = c.add_xor(a0, r);
  const int w2 = c.add_xor(w1, a1);
  c.mark_output(w2);

  MaskedCircuit mc;
  mc.circuit = c;
  mc.order = 1;
  mc.input_share_base = {0};  // inputs 0,1 are the two shares of secret 0

  SymbolicOptions standard;
  EXPECT_EQ(verify_probing_symbolic(mc, 1, 1, standard).verdict,
            Verdict::kSecure);

  SymbolicOptions glitch;
  glitch.glitch_extended = true;
  const auto report = verify_probing_symbolic(mc, 1, 1, glitch);
  EXPECT_EQ(report.verdict, Verdict::kLeak);
  EXPECT_FALSE(report.secure);
}

/// Registering the blinded partial sum stops the glitch: reg(a0 ^ r) ^ a1
/// never exposes both shares in one cloud.
TEST(LeakageVerifyGlitch, RegisterBarrierRestoresSecurity) {
  Circuit c;
  const int a0 = c.add_input();
  const int a1 = c.add_input();
  const int r = c.add_random();
  const int w1 = c.add_reg(c.add_xor(a0, r));
  const int w2 = c.add_xor(w1, a1);
  c.mark_output(w2);

  MaskedCircuit mc;
  mc.circuit = c;
  mc.order = 1;
  mc.input_share_base = {0};

  SymbolicOptions glitch;
  glitch.glitch_extended = true;
  EXPECT_EQ(verify_probing_symbolic(mc, 1, 1, glitch).verdict,
            Verdict::kSecure);
}

/// The DOM gadget emitted by mask_circuit registers each blinded cross term,
/// which is exactly what makes it robust under glitch-extended probing.
TEST(LeakageVerifyGlitch, DomAndOrder1GlitchRobust) {
  const auto masked = masking::mask_circuit(masking::single_and_circuit(), 1);
  SymbolicOptions glitch;
  glitch.glitch_extended = true;
  EXPECT_EQ(verify_probing_symbolic(masked, 2, 1, glitch).verdict,
            Verdict::kSecure);
}

// AES S-box netlist -------------------------------------------------------

TEST(AesSboxCircuit, MatchesProductionTable) {
  const Circuit sbox = aes_sbox_circuit();
  EXPECT_EQ(sbox.num_inputs(), 8);
  EXPECT_EQ(sbox.and_count(), 36);
  const std::uint8_t* table = crypto::aes_sbox_table();
  for (int x = 0; x < 256; ++x) {
    EXPECT_EQ(aes_sbox_circuit_eval(sbox, static_cast<std::uint8_t>(x)),
              table[x])
        << "S-box netlist diverges from production at input " << x;
  }
}

/// AGEMA-style gate-by-gate DOM masking is NOT trivially composable: a
/// cross-domain product whose operands share upstream gadget randomness can
/// leak even at first order. The verifier must terminate with a sound
/// verdict -- kSecure only if every probe was discharged, otherwise a
/// confirmed or potential leak with the offending probe set.
TEST(AesSboxCircuit, MaskedOrder1SymbolicVerdict) {
  const auto masked = masking::mask_circuit(aes_sbox_circuit(), 1);
  const auto report = verify_probing_symbolic(masked, 8, 1);
  EXPECT_GT(report.probe_sets_checked, 0u);
  EXPECT_EQ(report.secure, report.verdict == Verdict::kSecure);
  if (report.verdict != Verdict::kSecure) {
    EXPECT_FALSE(report.probes.empty());
  }
  // Every probe must have gone through one of the three discharge stages
  // or the fallback; the counters must account for the whole scan.
  EXPECT_GE(report.probe_sets_checked,
            report.coverage_rejected + report.simplified_away);
}

/// The ISSUE acceptance gate: a complete order-2 verdict on the AGEMA-style
/// masked AES S-box in well under a minute (the ctest timeout enforces the
/// wall-clock bound; second-order security of naive DOM composition is not
/// expected).
TEST(AesSboxCircuit, MaskedOrder2SymbolicVerdictCompletes) {
  const auto masked = masking::mask_circuit(aes_sbox_circuit(), 2);
  const auto report = verify_probing_symbolic(masked, 8, 2);
  EXPECT_GT(report.probe_sets_checked, 0u);
  EXPECT_EQ(report.secure, report.verdict == Verdict::kSecure);
  if (report.verdict != Verdict::kSecure) {
    EXPECT_FALSE(report.probes.empty());
  }
}

// HADES bridge ------------------------------------------------------------

TEST(DesignCheck, VerifiesExploredDesignAtItsOrder) {
  // Explore any small component; the bridge only consumes result.order.
  const auto comp = hades::library::adder_core();
  const auto result = hades::exhaustive_search(*comp, 1, hades::Goal::kArea);
  EXPECT_EQ(result.order, 1u);

  const auto report =
      verify_explored_design(masking::single_and_circuit(), result);
  EXPECT_EQ(report.order, 1u);
  EXPECT_EQ(report.probe_order, 1u);
  EXPECT_GT(report.masked_gates, 0u);
  EXPECT_TRUE(report.verified());
}

// Parallel discharge: determinism and soundness under concurrency ---------

void expect_reports_identical(const SymbolicReport& a, const SymbolicReport& b,
                              const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.secure, b.secure);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.secret_a, b.secret_a);
  EXPECT_EQ(a.secret_b, b.secret_b);
  EXPECT_EQ(a.probe_sets_checked, b.probe_sets_checked);
  EXPECT_EQ(a.coverage_rejected, b.coverage_rejected);
  EXPECT_EQ(a.simplified_away, b.simplified_away);
  EXPECT_EQ(a.fallback_checked, b.fallback_checked);
}

/// The determinism contract: with ample budget, the sharded parallel scan
/// must reproduce the serial report field for field (counters, witness
/// probe set, secrets) at every thread count.
TEST(LeakageVerifyParallel, ReportIdenticalAcrossThreadCounts) {
  struct Case {
    const char* name;
    MaskedCircuit masked;
    int plain_inputs;
  };
  std::vector<Case> cases;
  cases.push_back({"dom-and-d1",
                   masking::mask_circuit(masking::single_and_circuit(), 1), 2});
  cases.push_back({"dom-and-d2",
                   masking::mask_circuit(masking::single_and_circuit(), 2), 2});
  cases.push_back({"hpc2-d1", masking::hpc2_and_gadget(1), 2});
  cases.push_back({"hpc2-d2", masking::hpc2_and_gadget(2), 2});
  cases.push_back({"adder-d1",
                   masking::mask_circuit(masking::full_adder_circuit(), 1), 3});
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    cases.push_back(
        {"random", masking::mask_circuit(random_circuit(seed, 3, 6), 1), 3});
  }

  for (const auto& kase : cases) {
    for (unsigned order = 1; order <= 2; ++order) {
      for (const bool glitch : {false, true}) {
        SymbolicOptions options;
        options.glitch_extended = glitch;
        SymbolicReport serial;
        {
          par::ScopedThreadCount t(1);
          serial = verify_probing_symbolic(kase.masked, kase.plain_inputs,
                                           order, options);
        }
        for (int threads : {2, 4, 7}) {
          par::ScopedThreadCount t(threads);
          const SymbolicReport parallel = verify_probing_symbolic(
              kase.masked, kase.plain_inputs, order, options);
          const std::string what = std::string(kase.name) + " order " +
                                   std::to_string(order) +
                                   (glitch ? " glitch" : "") + " threads " +
                                   std::to_string(threads);
          expect_reports_identical(serial, parallel, what.c_str());
        }
      }
    }
  }
}

/// Confirmed leaks found by the parallel scan must still replay through the
/// exhaustive machinery (the witness is real, not a merge artifact).
TEST(LeakageVerifyParallel, ParallelLeakWitnessesReplay) {
  par::ScopedThreadCount t(4);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto masked = masking::mask_circuit(random_circuit(seed, 3, 6), 1);
    for (unsigned order = 1; order <= 2; ++order) {
      const auto report = verify_probing_symbolic(masked, 3, order);
      if (report.verdict == Verdict::kLeak) {
        EXPECT_TRUE(
            masking::replay_counterexample(masked, report.to_probing_report()))
            << "seed=" << seed << " order=" << order;
      }
    }
  }
}

/// Soundness under budget exhaustion: once the cumulative fallback budget
/// runs dry, sets degrade to kPotentialLeak -- the verdict may depend on
/// the schedule, but it must NEVER be kSecure when the full-budget verdict
/// was not, and never a confirmed kLeak on a circuit whose full-budget scan
/// proves secure. Repeated runs stress different interleavings.
TEST(LeakageVerifyParallel, BudgetExhaustionDegradesSoundly) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto masked = masking::mask_circuit(random_circuit(seed, 3, 6), 1);
    SymbolicReport full;
    {
      par::ScopedThreadCount t(1);
      full = verify_probing_symbolic(masked, 3, 2);
    }
    for (const int total_bits : {0, 4, 8}) {
      SymbolicOptions starved;
      starved.fallback_total_bits = total_bits;
      for (const int threads : {1, 2, 7}) {
        par::ScopedThreadCount t(threads);
        for (int rep = 0; rep < 3; ++rep) {
          const auto report = verify_probing_symbolic(masked, 3, 2, starved);
          SCOPED_TRACE("seed=" + std::to_string(seed) + " bits=" +
                       std::to_string(total_bits) + " threads=" +
                       std::to_string(threads));
          if (full.verdict != Verdict::kSecure) {
            // A starved scan must not upgrade an insecure circuit.
            EXPECT_NE(report.verdict, Verdict::kSecure);
          }
          if (full.verdict == Verdict::kSecure) {
            // A starved scan cannot fabricate a counterexample.
            EXPECT_NE(report.verdict, Verdict::kLeak);
          }
          if (report.verdict == Verdict::kLeak) {
            EXPECT_TRUE(masking::replay_counterexample(
                masked, report.to_probing_report()));
          }
        }
      }
    }
  }
}

/// The glitch recombiner leak (a confirmed, fallback-verified leak) must be
/// found identically at every thread count.
TEST(LeakageVerifyParallel, GlitchLeakStableAcrossThreadCounts) {
  Circuit c;
  const int a0 = c.add_input();
  const int a1 = c.add_input();
  const int r = c.add_random();
  c.mark_output(c.add_xor(c.add_xor(a0, r), a1));
  MaskedCircuit mc;
  mc.circuit = c;
  mc.order = 1;
  mc.input_share_base = {0};
  SymbolicOptions glitch;
  glitch.glitch_extended = true;

  SymbolicReport serial;
  {
    par::ScopedThreadCount t(1);
    serial = verify_probing_symbolic(mc, 1, 1, glitch);
  }
  ASSERT_EQ(serial.verdict, Verdict::kLeak);
  for (int threads : {2, 4, 7}) {
    par::ScopedThreadCount t(threads);
    const auto parallel = verify_probing_symbolic(mc, 1, 1, glitch);
    expect_reports_identical(serial, parallel, "glitch recombiner");
  }
}

}  // namespace
}  // namespace convolve::analysis
