// Telemetry layer: registry semantics, histogram bucketing, deterministic
// counters under every supported thread count, chrome-trace export
// round-trip, concurrent span recording vs export (the tsan lane), and the
// kill-switch macros.
//
// The file compiles in both build flavors: with CONVOLVE_TELEMETRY=OFF only
// the macro no-op tests remain, which is itself the test -- the macros must
// vanish without dragging any telemetry symbol into the binary (pinned by
// the nm check in telemetry_off_smoke).
#include "convolve/common/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "convolve/common/json.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/tee/machine.hpp"
#include "convolve/tee/rv32.hpp"

namespace convolve {
namespace {

// --- Kill-switch macros (both build flavors) ---------------------------
// In OFF builds the operands are never evaluated, so referencing an
// undefined entity inside CONVOLVE_TELEMETRY_ONLY must compile.
TEST(TelemetryMacros, CompileToNoOpsWhenDisabled) {
  int evaluated = 0;
  CONVOLVE_TELEMETRY_ONLY(evaluated += 1;)
  {
    CONVOLVE_TRACE_SPAN("test.macro_span");
  }
#if CONVOLVE_TELEMETRY_ENABLED
  EXPECT_EQ(evaluated, 1);
#else
  EXPECT_EQ(evaluated, 0);
#endif
}

// The event and span-arg macros follow the same discipline: in OFF
// builds both expand to ((void)0) and their operands are never
// evaluated (the side effect below must not fire).
TEST(TelemetryMacros, EventMacrosCompileBothFlavors) {
  RequestContext ctx;
  ctx.tenant = 3;
  ctx.seq = 41;
  int evaluated = 0;
  CONVOLVE_RECORD_EVENT(kCowBurst, ctx, 0, (evaluated += 1, 7));
  {
    CONVOLVE_TRACE_SPAN_ARG("test.macro_span_arg", "seq", ctx.seq);
  }
#if CONVOLVE_TELEMETRY_ENABLED
  EXPECT_EQ(evaluated, 1);
  telemetry::reset_events();
  telemetry::reset_trace();
#else
  EXPECT_EQ(evaluated, 0);
#endif
}

#if CONVOLVE_TELEMETRY_ENABLED

telemetry::Counter t_test_counter{"test.counter"};
telemetry::Gauge t_test_gauge{"test.gauge"};
telemetry::Histogram t_test_hist{"test.histogram"};

TEST(TelemetryRegistry, CounterAddAndSnapshot) {
  const std::uint64_t before =
      telemetry::snapshot().counter_value("test.counter");
  t_test_counter.add();
  t_test_counter.add(41);
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(snap.counter_value("test.counter"), before + 42);
  const auto* entry = snap.find("test.counter");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, telemetry::MetricKind::kCounter);
}

TEST(TelemetryRegistry, GaugeHoldsLastValue) {
  t_test_gauge.set(-7);
  t_test_gauge.set(1234);
  const auto snap = telemetry::snapshot();
  const auto* entry = snap.find("test.gauge");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, telemetry::MetricKind::kGauge);
  EXPECT_EQ(entry->gauge, 1234);
}

TEST(TelemetryRegistry, SnapshotIsSortedByName) {
  const auto snap = telemetry::snapshot();
  ASSERT_GE(snap.entries.size(), 2u);
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  }
}

TEST(TelemetryHistogram, BucketBoundaries) {
  using H = telemetry::Histogram;
  // Bucket 0 is exactly {0}; bucket b >= 1 covers [2^(b-1), 2^b).
  EXPECT_EQ(H::bucket_index(0), 0);
  EXPECT_EQ(H::bucket_index(1), 1);
  EXPECT_EQ(H::bucket_index(2), 2);
  EXPECT_EQ(H::bucket_index(3), 2);
  EXPECT_EQ(H::bucket_index(4), 3);
  EXPECT_EQ(H::bucket_index(1023), 10);
  EXPECT_EQ(H::bucket_index(1024), 11);
  EXPECT_EQ(H::bucket_index(~0ull), 64);
  for (int b = 0; b < H::kBuckets; ++b) {
    EXPECT_EQ(H::bucket_index(H::bucket_lo(b)), b) << "lo of bucket " << b;
    EXPECT_EQ(H::bucket_index(H::bucket_hi(b)), b) << "hi of bucket " << b;
  }
  EXPECT_EQ(H::bucket_lo(1), 1u);
  EXPECT_EQ(H::bucket_hi(1), 1u);
  EXPECT_EQ(H::bucket_lo(11), 1024u);
  EXPECT_EQ(H::bucket_hi(11), 2047u);
}

TEST(TelemetryHistogram, RecordAccumulatesCountSumBuckets) {
  t_test_hist.reset();
  for (std::uint64_t v : {0ull, 1ull, 5ull, 5ull, 1024ull}) {
    t_test_hist.record(v);
  }
  EXPECT_EQ(t_test_hist.count(), 5u);
  EXPECT_EQ(t_test_hist.sum(), 1035u);
  EXPECT_EQ(t_test_hist.bucket(0), 1u);   // {0}
  EXPECT_EQ(t_test_hist.bucket(1), 1u);   // {1}
  EXPECT_EQ(t_test_hist.bucket(3), 2u);   // [4,8)
  EXPECT_EQ(t_test_hist.bucket(11), 1u);  // [1024,2048)

  const auto snap = telemetry::snapshot();
  const auto* entry = snap.find("test.histogram");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 5u);
  EXPECT_EQ(entry->sum, 1035u);
  // Snapshot keeps only nonzero buckets, each tagged with its range.
  ASSERT_EQ(entry->buckets.size(), 4u);
  EXPECT_EQ(entry->buckets[2].lo, 4u);
  EXPECT_EQ(entry->buckets[2].hi, 7u);
  EXPECT_EQ(entry->buckets[2].count, 2u);
}

TEST(TelemetrySnapshot, JsonParsesWithExpectedSections) {
  t_test_counter.add(1);
  const std::string text = telemetry::snapshot().to_json();
  const auto root = json::parse(text);
  ASSERT_TRUE(root.is_object());
  for (const char* key : {"counters", "gauges", "histograms"}) {
    const auto* section = root.find(key);
    ASSERT_NE(section, nullptr) << key;
    EXPECT_TRUE(section->is_object()) << key;
  }
  const auto* c = root.find("counters")->find("test.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->is_number());
  const auto* h = root.find("histograms")->find("test.histogram");
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->is_object());
  EXPECT_NE(h->find("count"), nullptr);
  EXPECT_NE(h->find("buckets"), nullptr);
}

// The pool counts one pool.tasks per executed chunk, on both the serial
// and the work-stealing path, so the delta for a fixed workload must be
// identical at every thread count (steal balance may differ; totals not).
TEST(TelemetryPool, TaskCountDeterministicAcrossThreadCounts) {
  constexpr std::uint64_t kItems = 300;
  constexpr std::uint64_t kGrain = 4;
  std::vector<std::uint64_t> deltas;
  for (int threads : {1, 2, 4, 7}) {
    par::ScopedThreadCount scope(threads);
    const std::uint64_t before =
        telemetry::snapshot().counter_value("pool.tasks");
    std::atomic<std::uint64_t> sink{0};
    par::parallel_for(
        kItems,
        [&](std::uint64_t i) {
          sink.fetch_add(i, std::memory_order_relaxed);
        },
        kGrain);
    deltas.push_back(telemetry::snapshot().counter_value("pool.tasks") -
                     before);
  }
  ASSERT_EQ(deltas.size(), 4u);
  EXPECT_GT(deltas[0], 0u);
  for (std::size_t i = 1; i < deltas.size(); ++i) {
    EXPECT_EQ(deltas[i], deltas[0]) << "thread count variant " << i;
  }
}

TEST(TelemetryTrace, ChromeTraceRoundTrip) {
  telemetry::reset_trace();
  {
    CONVOLVE_TRACE_SPAN("test.roundtrip_span");
  }
  telemetry::record_span("test.explicit_span", telemetry::trace_now_ns(), 250);

  const auto root = json::parse(telemetry::chrome_trace_json());
  ASSERT_TRUE(root.is_object());
  const auto* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool saw_thread_name = false;
  bool saw_roundtrip = false;
  bool saw_explicit = false;
  for (const auto& ev : events->arr) {
    ASSERT_TRUE(ev.is_object());
    const auto* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    const auto* name = ev.find("name");
    ASSERT_NE(name, nullptr);
    if (ph->str == "M" && name->str == "thread_name") saw_thread_name = true;
    if (ph->str == "X") {
      EXPECT_NE(ev.find("ts"), nullptr);
      EXPECT_NE(ev.find("dur"), nullptr);
      EXPECT_NE(ev.find("tid"), nullptr);
      if (name->str == "test.roundtrip_span") saw_roundtrip = true;
      if (name->str == "test.explicit_span") saw_explicit = true;
    }
  }
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_roundtrip);
  EXPECT_TRUE(saw_explicit);
}

// Workers recording pool.task spans while another thread exports the trace:
// the append (release count store) / export (acquire load) pair is the
// race tsan_smoke is pointed at.
TEST(TelemetryTrace, ExportConcurrentWithSpanRecording) {
  telemetry::reset_trace();
  par::ScopedThreadCount scope(4);
  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string text = telemetry::chrome_trace_json();
      EXPECT_FALSE(text.empty());
    }
  });
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::uint64_t> sink{0};
    par::parallel_for(
        200,
        [&](std::uint64_t i) {
          CONVOLVE_TRACE_SPAN("test.concurrent_span");
          sink.fetch_add(i, std::memory_order_relaxed);
        },
        2);
  }
  stop.store(true, std::memory_order_release);
  exporter.join();
  // The final export parses and contains at least one recorded span.
  const auto root = json::parse(telemetry::chrome_trace_json());
  ASSERT_TRUE(root.find("traceEvents") != nullptr);
  EXPECT_GT(root.find("traceEvents")->arr.size(), 0u);
}

TEST(TelemetryTrace, FullRingBufferDropsAndCounts) {
  const std::uint64_t dropped_before = telemetry::dropped_span_count();
  // A fresh thread gets a fresh ring buffer; overflow it by 100 spans.
  std::thread victim([] {
    constexpr int kOverflow = 16384 + 100;
    for (int i = 0; i < kOverflow; ++i) {
      telemetry::record_span("test.overflow", 0, 1);
    }
  });
  victim.join();
  EXPECT_GE(telemetry::dropped_span_count(), dropped_before + 100);
  telemetry::reset_trace();
}

// Rv32Cpu batches retired-instruction counts locally and publishes on
// flush/destruction -- the counter delta must equal the executed steps.
TEST(TelemetryRv32, RetiredCounterFlushedOnDestruction) {
  const std::uint64_t before =
      telemetry::snapshot().counter_value("rv32.instructions_retired");
  std::uint64_t steps = 0;
  {
    namespace rv = tee::rv32asm;
    tee::Machine machine{1 << 16};
    // addi x1,x1,1; jal x0,-4 -- a 2-instruction infinite loop.
    machine.store(0x1000, rv::assemble({rv::addi(1, 1, 1), rv::jal(0, -4)}),
                  tee::PrivMode::kMachine);
    tee::Rv32Cpu cpu(machine, 0x1000, tee::PrivMode::kMachine);
    steps = cpu.run(5000).steps;
  }
  EXPECT_EQ(steps, 5000u);
  const std::uint64_t after =
      telemetry::snapshot().counter_value("rv32.instructions_retired");
  EXPECT_GE(after - before, steps);
}

// --- Histogram percentiles ---------------------------------------------

telemetry::Histogram t_pct_hist{"test.percentile.histogram"};

TEST(TelemetryHistogram, PercentileMatchesStatsContract) {
  t_pct_hist.reset();
  // Live-handle and snapshot percentiles must agree with the shared
  // log2_buckets_percentile contract (nearest rank, upper bucket bound):
  // same fixture as the stats unit test -- values 1..10.
  Log2Histogram reference;
  for (std::uint64_t v = 1; v <= 10; ++v) {
    t_pct_hist.record(v);
    reference.record(v);
  }
  for (double p : {0.0, 10.0, 11.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(t_pct_hist.percentile(p), reference.percentile(p)) << "p" << p;
  }
  EXPECT_EQ(t_pct_hist.percentile(50), 7u);
  EXPECT_EQ(t_pct_hist.percentile(99), 15u);

  const auto snap = telemetry::snapshot();
  for (double p : {10.0, 50.0, 99.0}) {
    EXPECT_EQ(snap.histogram_percentile("test.percentile.histogram", p),
              reference.percentile(p))
        << "p" << p;
  }
  // Absent or non-histogram names answer 0.
  EXPECT_EQ(snap.histogram_percentile("no.such.metric", 50), 0u);
  EXPECT_EQ(snap.histogram_percentile("rv32.instructions_retired", 50), 0u);
}

// --- Flight-recorder event log -----------------------------------------

TEST(TelemetryEvents, RecordCollectRoundTrip) {
  telemetry::reset_events();
  RequestContext ctx;
  ctx.tenant = 2;
  ctx.seq = 77;
  ctx.fork_id = 78;
  ctx.enclave = 1;
  telemetry::record_event(telemetry::EventKind::kPmpFault, ctx, 1,
                          0xdeadbeefull);
  CONVOLVE_RECORD_EVENT(kRequestDone, ctx, 0x02, 1234);

  const auto events = telemetry::collect_events();
  ASSERT_EQ(events.size(), 2u);
  // Same thread -> insertion order is preserved by the export.
  EXPECT_EQ(events[0].kind,
            static_cast<std::uint8_t>(telemetry::EventKind::kPmpFault));
  EXPECT_EQ(events[0].tenant, 2);
  EXPECT_EQ(events[0].seq, 77u);
  EXPECT_EQ(events[0].fork_id, 78u);
  EXPECT_EQ(events[0].enclave, 1);
  EXPECT_EQ(events[0].code, 1);
  EXPECT_EQ(events[0].value, 0xdeadbeefull);
  EXPECT_EQ(events[1].kind,
            static_cast<std::uint8_t>(telemetry::EventKind::kRequestDone));
  EXPECT_EQ(events[1].code, 0x02);
  EXPECT_EQ(events[1].value, 1234u);

  const auto stats = telemetry::event_log_stats();
  EXPECT_EQ(stats.recorded, 2u);
  EXPECT_EQ(stats.by_kind[static_cast<int>(telemetry::EventKind::kPmpFault)],
            1u);
  EXPECT_EQ(
      stats.by_kind[static_cast<int>(telemetry::EventKind::kRequestDone)],
      1u);
  telemetry::reset_events();
}

TEST(TelemetryEvents, JsonlLinesParse) {
  telemetry::reset_events();
  RequestContext ctx;
  ctx.tenant = 5;
  ctx.seq = 9;
  telemetry::record_event(telemetry::EventKind::kTdmShed, ctx, 0, 3);
  telemetry::record_event(telemetry::EventKind::kSealReject, ctx, 1, 64);

  const std::string text = telemetry::events_jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++lines;
    const auto root = json::parse(line);
    ASSERT_TRUE(root.is_object());
    for (const char* key :
         {"t_ns", "tenant", "seq", "fork", "enclave", "code", "value"}) {
      const auto* v = root.find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_TRUE(v->is_number()) << key;
    }
    const auto* kind = root.find("kind");
    ASSERT_NE(kind, nullptr);
    ASSERT_TRUE(kind->is_string());
    EXPECT_TRUE(kind->str == "tdm_shed" || kind->str == "seal_reject");
  }
  EXPECT_EQ(lines, 2u);
  telemetry::reset_events();
}

// Satellite gate: a ring that overflows must surface both the total and
// the per-thread drop counter in the metrics snapshot (events here,
// spans in the mirror test below).
TEST(TelemetryEvents, FullRingDropsCountedInSnapshot) {
  const std::uint64_t dropped_before = telemetry::dropped_event_count();
  std::thread victim([] {
    RequestContext ctx;
    constexpr int kOverflow = 16384 + 100;
    for (int i = 0; i < kOverflow; ++i) {
      telemetry::record_event(telemetry::EventKind::kCowBurst, ctx, 0,
                              static_cast<std::uint64_t>(i));
    }
  });
  victim.join();
  EXPECT_GE(telemetry::dropped_event_count(), dropped_before + 100);

  const auto snap = telemetry::snapshot();
  EXPECT_GE(snap.counter_value("telemetry.events.dropped"),
            dropped_before + 100);
  bool saw_ring = false;
  for (const auto& entry : snap.entries) {
    if (entry.name.rfind("telemetry.events.dropped.", 0) == 0 &&
        entry.counter >= 100) {
      saw_ring = true;
    }
  }
  EXPECT_TRUE(saw_ring) << "no per-ring telemetry.events.dropped.<thread>";
  telemetry::reset_events();
}

TEST(TelemetryTrace, FullSpanRingDropsCountedInSnapshot) {
  const std::uint64_t dropped_before = telemetry::dropped_span_count();
  std::thread victim([] {
    constexpr int kOverflow = 16384 + 100;
    for (int i = 0; i < kOverflow; ++i) {
      telemetry::record_span("test.snapshot_overflow", 0, 1);
    }
  });
  victim.join();
  const auto snap = telemetry::snapshot();
  EXPECT_GE(snap.counter_value("telemetry.spans.dropped"),
            dropped_before + 100);
  bool saw_ring = false;
  for (const auto& entry : snap.entries) {
    if (entry.name.rfind("telemetry.spans.dropped.", 0) == 0 &&
        entry.counter >= 100) {
      saw_ring = true;
    }
  }
  EXPECT_TRUE(saw_ring) << "no per-ring telemetry.spans.dropped.<thread>";
  telemetry::reset_trace();
}

TEST(TelemetryTrace, SpanArgExportedToChromeTrace) {
  telemetry::reset_trace();
  {
    CONVOLVE_TRACE_SPAN_ARG("test.arg_span", "seq", 4242);
  }
  const auto root = json::parse(telemetry::chrome_trace_json());
  const auto* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw = false;
  for (const auto& ev : events->arr) {
    const auto* name = ev.find("name");
    if (name == nullptr || name->str != "test.arg_span") continue;
    const auto* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_TRUE(args->is_object());
    const auto* seq = args->find("seq");
    ASSERT_NE(seq, nullptr);
    ASSERT_TRUE(seq->is_number());
    EXPECT_EQ(static_cast<std::uint64_t>(seq->number), 4242u);
    saw = true;
  }
  EXPECT_TRUE(saw);
  telemetry::reset_trace();
}

// --- Labeled metric families -------------------------------------------

telemetry::CounterFamily t_fam_counter{"test.family.counter"};
telemetry::HistogramFamily t_fam_hist{"test.family.hist"};

TEST(TelemetryFamily, SlotsAndOverflowClamp) {
  t_fam_counter.add(0);
  t_fam_counter.add(3, 5);
  t_fam_counter.add(12);   // past kSlots -> overflow member
  t_fam_counter.add(-1);   // negative -> overflow member
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(snap.counter_value("test.family.counter.0"), 1u);
  EXPECT_EQ(snap.counter_value("test.family.counter.3"), 5u);
  EXPECT_EQ(snap.counter_value("test.family.counter.overflow"), 2u);

  t_fam_hist.record(1, 100);
  t_fam_hist.record(telemetry::HistogramFamily::kSlots + 3, 50);
  const auto snap2 = telemetry::snapshot();
  const auto* member = snap2.find("test.family.hist.1");
  ASSERT_NE(member, nullptr);
  EXPECT_EQ(member->count, 1u);
  EXPECT_EQ(member->sum, 100u);
  const auto* overflow = snap2.find("test.family.hist.overflow");
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(overflow->count, 1u);
  EXPECT_EQ(overflow->sum, 50u);
}

#endif  // CONVOLVE_TELEMETRY_ENABLED

}  // namespace
}  // namespace convolve
