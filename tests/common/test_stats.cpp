#include "convolve/common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace convolve {
namespace {

TEST(Stats, Mean) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MedianOdd) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
}

TEST(Stats, MedianEven) {
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Stats, ArgminArgmax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_EQ(argmin(xs), 1u);
  EXPECT_EQ(argmax(xs), 2u);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1, 1, 1, 1};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, WelchTSeparatedSamples) {
  const std::vector<double> a = {10.0, 10.1, 9.9, 10.05, 9.95};
  const std::vector<double> b = {20.0, 20.1, 19.9, 20.05, 19.95};
  EXPECT_LT(welch_t(a, b), -50.0);
  EXPECT_GT(welch_t(b, a), 50.0);
}

TEST(Stats, WelchTIdenticalSamplesNearZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(welch_t(a, a), 0.0);
}

}  // namespace
}  // namespace convolve
