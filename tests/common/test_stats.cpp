#include "convolve/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "convolve/common/rng.hpp"

namespace convolve {
namespace {

// Naive two-pass reference for the one-pass Welford accumulator: compute
// the mean first, then the central moment sums directly.
struct TwoPass {
  double mean = 0.0;
  double cm2 = 0.0, cm3 = 0.0, cm4 = 0.0;
  explicit TwoPass(const std::vector<double>& xs) {
    for (double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    for (double x : xs) {
      const double d = x - mean;
      cm2 += d * d;
      cm3 += d * d * d;
      cm4 += d * d * d * d;
    }
    const auto n = static_cast<double>(xs.size());
    cm2 /= n;
    cm3 /= n;
    cm4 /= n;
  }
};

TEST(Stats, Mean) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MedianOdd) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
}

TEST(Stats, MedianEven) {
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Stats, ArgminArgmax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_EQ(argmin(xs), 1u);
  EXPECT_EQ(argmax(xs), 2u);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1, 1, 1, 1};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, WelchTSeparatedSamples) {
  const std::vector<double> a = {10.0, 10.1, 9.9, 10.05, 9.95};
  const std::vector<double> b = {20.0, 20.1, 19.9, 20.05, 19.95};
  EXPECT_LT(welch_t(a, b), -50.0);
  EXPECT_GT(welch_t(b, a), 50.0);
}

TEST(Stats, WelchTIdenticalSamplesNearZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(welch_t(a, a), 0.0);
}

TEST(Welford, MatchesTwoPassOnAdversarialData) {
  // Large common mean, tiny variance: the textbook catastrophic-
  // cancellation case a naive sum-of-squares accumulator fails on.
  Xoshiro256 rng(0x5EED);
  std::vector<double> xs;
  Welford acc;
  for (int i = 0; i < 4096; ++i) {
    const double x =
        1.0e6 + 1.0e-3 * static_cast<double>(rng.next_u64() & 0xFFFF) / 65536.0;
    xs.push_back(x);
    acc.add(x);
  }
  const TwoPass ref(xs);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), ref.mean, std::abs(ref.mean) * 1e-12);
  ASSERT_GT(ref.cm2, 0.0);
  EXPECT_NEAR(acc.central_moment2(), ref.cm2, ref.cm2 * 1e-5);
  EXPECT_NEAR(acc.central_moment4(), ref.cm4, ref.cm4 * 1e-5);
  // cm3 of near-uniform data hovers around zero; bound the discrepancy by
  // the characteristic cube scale instead of a relative tolerance.
  EXPECT_NEAR(acc.central_moment3(), ref.cm3,
              ref.cm2 * std::sqrt(ref.cm2) * 1e-2);
  EXPECT_NEAR(acc.variance_sample(),
              ref.cm2 * static_cast<double>(xs.size()) /
                  static_cast<double>(xs.size() - 1),
              ref.cm2 * 1e-5);
}

TEST(Welford, PairwiseMergeEqualsSequentialAccumulation) {
  Xoshiro256 rng(0xACC);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(static_cast<double>(rng.next_u64() % 1000) - 500.0);
  }
  Welford sequential;
  for (double x : xs) sequential.add(x);

  // Rank-ordered merge of uneven chunks -- the shape parallel_reduce
  // produces.
  Welford merged;
  std::size_t pos = 0;
  for (std::size_t chunk : {137u, 1u, 450u, 412u}) {
    Welford part;
    for (std::size_t i = 0; i < chunk; ++i) part.add(xs[pos++]);
    merged.merge(part);
  }
  ASSERT_EQ(pos, xs.size());
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(merged.central_moment2(), sequential.central_moment2(), 1e-9);
  EXPECT_NEAR(merged.central_moment3(), sequential.central_moment3(), 1e-6);
  EXPECT_NEAR(merged.central_moment4(), sequential.central_moment4(), 1e-4);
}

TEST(Welford, MergeWithEmptySideIsIdentity) {
  Welford a;
  a.add(1.0);
  a.add(3.0);
  Welford empty;
  Welford merged = a;
  merged.merge(empty);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_DOUBLE_EQ(merged.mean(), 2.0);
  Welford other = empty;
  other.merge(a);
  EXPECT_EQ(other.count(), 2u);
  EXPECT_DOUBLE_EQ(other.mean(), 2.0);
  EXPECT_DOUBLE_EQ(other.central_moment2(), a.central_moment2());
}

TEST(Welford, AccumulatorWelchTMatchesSpanOverload) {
  const std::vector<double> a = {10.0, 10.1, 9.9, 10.05, 9.95};
  const std::vector<double> b = {20.0, 20.1, 19.9, 20.05, 19.95};
  Welford wa, wb;
  for (double x : a) wa.add(x);
  for (double x : b) wb.add(x);
  EXPECT_NEAR(welch_t(wa, wb), welch_t(a, b), 1e-9);
  EXPECT_DOUBLE_EQ(welch_t(wa, wa), 0.0);
}

TEST(Welford, SecondOrderTSeparatesEqualMeanDifferentSpread) {
  // Same mean, different variance: invisible to the first-order t,
  // flagged by the centered-square (second-order TVLA) statistic.
  Xoshiro256 rng(0x22D);
  Welford narrow, wide;
  for (int i = 0; i < 20000; ++i) {
    const double u =
        static_cast<double>(rng.next_u64() >> 11) / 9007199254740992.0 - 0.5;
    narrow.add(u);
    wide.add(3.0 * u);
  }
  EXPECT_LT(std::abs(welch_t(narrow, wide)), 4.5);
  EXPECT_GT(std::abs(welch_t_centered_square(narrow, wide)), 4.5);
}

// --- Log2-histogram percentiles -----------------------------------------

TEST(Log2Percentile, EmptyHistogramIsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
  EXPECT_EQ(h.count, 0u);
}

TEST(Log2Percentile, BucketBoundaryRounding) {
  // This test PINS the percentile contract (nearest rank, inclusive
  // upper bucket bound): 10 samples, one per value 1..10, so the rank-r
  // sample is the value r and every answer is that value's bucket hi.
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  ASSERT_EQ(h.count, 10u);
  // p50 -> rank ceil(5) = 5 -> value 5 lives in [4,8) -> hi = 7.
  EXPECT_EQ(h.percentile(50), 7u);
  // p10 -> rank 1 -> value 1 -> bucket {1} -> hi = 1.
  EXPECT_EQ(h.percentile(10), 1u);
  // p11 -> rank ceil(1.1) = 2 -> value 2 -> [2,4) -> hi = 3.
  EXPECT_EQ(h.percentile(11), 3u);
  // p99/p100 -> rank 10 -> value 10 -> [8,16) -> hi = 15.
  EXPECT_EQ(h.percentile(99), 15u);
  EXPECT_EQ(h.percentile(100), 15u);
  // p0 and negative clamp to rank 1; pct > 100 clamps to rank count.
  EXPECT_EQ(h.percentile(0), 1u);
  EXPECT_EQ(h.percentile(-5), 1u);
  EXPECT_EQ(h.percentile(250), 15u);
}

TEST(Log2Percentile, ExactRankBoundaries) {
  // 4 samples in bucket {1} and 6 in [8,16): the cumulative count hits
  // rank 4 exactly at the first bucket, so p40 must stay in it, while
  // p41 (rank 5) crosses into the second.
  Log2Histogram h;
  for (int i = 0; i < 4; ++i) h.record(1);
  for (int i = 0; i < 6; ++i) h.record(9);
  EXPECT_EQ(h.percentile(40), 1u);
  EXPECT_EQ(h.percentile(41), 15u);
}

TEST(Log2Percentile, ZeroAndMaxBuckets) {
  Log2Histogram h;
  h.record(0);
  EXPECT_EQ(h.percentile(50), 0u);
  h.record(~0ull);
  // Two samples: p50 -> rank 1 -> bucket 0 -> 0; p99 -> rank 2 ->
  // bucket 64 -> UINT64_MAX.
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(99), ~0ull);
  EXPECT_EQ(log2_bucket_upper_bound(64), ~0ull);
  EXPECT_EQ(log2_bucket_upper_bound(0), 0u);
  EXPECT_EQ(log2_bucket_upper_bound(10), 1023u);
}

TEST(Log2Percentile, MergeMatchesCombinedRecording) {
  Log2Histogram a, b, combined;
  for (std::uint64_t v : {3ull, 300ull, 12ull}) {
    a.record(v);
    combined.record(v);
  }
  for (std::uint64_t v : {90000ull, 5ull}) {
    b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count, combined.count);
  EXPECT_EQ(a.sum, combined.sum);
  for (double p : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    EXPECT_EQ(a.percentile(p), combined.percentile(p)) << "p" << p;
  }
}

TEST(Log2Percentile, MeanTracksSumOverCount) {
  Log2Histogram h;
  h.record(10);
  h.record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

}  // namespace
}  // namespace convolve
