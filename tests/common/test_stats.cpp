#include "convolve/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "convolve/common/rng.hpp"

namespace convolve {
namespace {

// Naive two-pass reference for the one-pass Welford accumulator: compute
// the mean first, then the central moment sums directly.
struct TwoPass {
  double mean = 0.0;
  double cm2 = 0.0, cm3 = 0.0, cm4 = 0.0;
  explicit TwoPass(const std::vector<double>& xs) {
    for (double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    for (double x : xs) {
      const double d = x - mean;
      cm2 += d * d;
      cm3 += d * d * d;
      cm4 += d * d * d * d;
    }
    const auto n = static_cast<double>(xs.size());
    cm2 /= n;
    cm3 /= n;
    cm4 /= n;
  }
};

TEST(Stats, Mean) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MedianOdd) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
}

TEST(Stats, MedianEven) {
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Stats, ArgminArgmax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_EQ(argmin(xs), 1u);
  EXPECT_EQ(argmax(xs), 2u);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1, 1, 1, 1};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, WelchTSeparatedSamples) {
  const std::vector<double> a = {10.0, 10.1, 9.9, 10.05, 9.95};
  const std::vector<double> b = {20.0, 20.1, 19.9, 20.05, 19.95};
  EXPECT_LT(welch_t(a, b), -50.0);
  EXPECT_GT(welch_t(b, a), 50.0);
}

TEST(Stats, WelchTIdenticalSamplesNearZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(welch_t(a, a), 0.0);
}

TEST(Welford, MatchesTwoPassOnAdversarialData) {
  // Large common mean, tiny variance: the textbook catastrophic-
  // cancellation case a naive sum-of-squares accumulator fails on.
  Xoshiro256 rng(0x5EED);
  std::vector<double> xs;
  Welford acc;
  for (int i = 0; i < 4096; ++i) {
    const double x =
        1.0e6 + 1.0e-3 * static_cast<double>(rng.next_u64() & 0xFFFF) / 65536.0;
    xs.push_back(x);
    acc.add(x);
  }
  const TwoPass ref(xs);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), ref.mean, std::abs(ref.mean) * 1e-12);
  ASSERT_GT(ref.cm2, 0.0);
  EXPECT_NEAR(acc.central_moment2(), ref.cm2, ref.cm2 * 1e-5);
  EXPECT_NEAR(acc.central_moment4(), ref.cm4, ref.cm4 * 1e-5);
  // cm3 of near-uniform data hovers around zero; bound the discrepancy by
  // the characteristic cube scale instead of a relative tolerance.
  EXPECT_NEAR(acc.central_moment3(), ref.cm3,
              ref.cm2 * std::sqrt(ref.cm2) * 1e-2);
  EXPECT_NEAR(acc.variance_sample(),
              ref.cm2 * static_cast<double>(xs.size()) /
                  static_cast<double>(xs.size() - 1),
              ref.cm2 * 1e-5);
}

TEST(Welford, PairwiseMergeEqualsSequentialAccumulation) {
  Xoshiro256 rng(0xACC);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(static_cast<double>(rng.next_u64() % 1000) - 500.0);
  }
  Welford sequential;
  for (double x : xs) sequential.add(x);

  // Rank-ordered merge of uneven chunks -- the shape parallel_reduce
  // produces.
  Welford merged;
  std::size_t pos = 0;
  for (std::size_t chunk : {137u, 1u, 450u, 412u}) {
    Welford part;
    for (std::size_t i = 0; i < chunk; ++i) part.add(xs[pos++]);
    merged.merge(part);
  }
  ASSERT_EQ(pos, xs.size());
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(merged.central_moment2(), sequential.central_moment2(), 1e-9);
  EXPECT_NEAR(merged.central_moment3(), sequential.central_moment3(), 1e-6);
  EXPECT_NEAR(merged.central_moment4(), sequential.central_moment4(), 1e-4);
}

TEST(Welford, MergeWithEmptySideIsIdentity) {
  Welford a;
  a.add(1.0);
  a.add(3.0);
  Welford empty;
  Welford merged = a;
  merged.merge(empty);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_DOUBLE_EQ(merged.mean(), 2.0);
  Welford other = empty;
  other.merge(a);
  EXPECT_EQ(other.count(), 2u);
  EXPECT_DOUBLE_EQ(other.mean(), 2.0);
  EXPECT_DOUBLE_EQ(other.central_moment2(), a.central_moment2());
}

TEST(Welford, AccumulatorWelchTMatchesSpanOverload) {
  const std::vector<double> a = {10.0, 10.1, 9.9, 10.05, 9.95};
  const std::vector<double> b = {20.0, 20.1, 19.9, 20.05, 19.95};
  Welford wa, wb;
  for (double x : a) wa.add(x);
  for (double x : b) wb.add(x);
  EXPECT_NEAR(welch_t(wa, wb), welch_t(a, b), 1e-9);
  EXPECT_DOUBLE_EQ(welch_t(wa, wa), 0.0);
}

TEST(Welford, SecondOrderTSeparatesEqualMeanDifferentSpread) {
  // Same mean, different variance: invisible to the first-order t,
  // flagged by the centered-square (second-order TVLA) statistic.
  Xoshiro256 rng(0x22D);
  Welford narrow, wide;
  for (int i = 0; i < 20000; ++i) {
    const double u =
        static_cast<double>(rng.next_u64() >> 11) / 9007199254740992.0 - 0.5;
    narrow.add(u);
    wide.add(3.0 * u);
  }
  EXPECT_LT(std::abs(welch_t(narrow, wide)), 4.5);
  EXPECT_GT(std::abs(welch_t_centered_square(narrow, wide)), 4.5);
}

}  // namespace
}  // namespace convolve
