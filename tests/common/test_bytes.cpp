#include "convolve/common/bytes.hpp"

#include <gtest/gtest.h>

namespace convolve {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes c = concat({ByteView{a}, ByteView{b}, ByteView{a}});
  EXPECT_EQ(c, (Bytes{1, 2, 3, 1, 2}));
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

TEST(Bytes, SecureWipe) {
  Bytes a = {1, 2, 3, 4};
  secure_wipe(a);
  EXPECT_EQ(a, (Bytes{0, 0, 0, 0}));
}

TEST(Bytes, LittleEndianRoundTrip) {
  std::uint8_t buf[8];
  store_le32(buf, 0xdeadbeefu);
  EXPECT_EQ(load_le32(buf), 0xdeadbeefu);
  EXPECT_EQ(buf[0], 0xef);
  store_le64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(load_le64(buf), 0x0123456789abcdefull);
  EXPECT_EQ(buf[0], 0xef);
}

TEST(Bytes, BigEndianRoundTrip) {
  std::uint8_t buf[8];
  store_be32(buf, 0xdeadbeefu);
  EXPECT_EQ(load_be32(buf), 0xdeadbeefu);
  EXPECT_EQ(buf[0], 0xde);
  store_be64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(load_be64(buf), 0x0123456789abcdefull);
  EXPECT_EQ(buf[0], 0x01);
}

TEST(Bytes, Rotations) {
  EXPECT_EQ(rotl32(0x80000000u, 1), 1u);
  EXPECT_EQ(rotr32(1u, 1), 0x80000000u);
  EXPECT_EQ(rotl64(0x8000000000000000ull, 1), 1ull);
  EXPECT_EQ(rotr64(1ull, 1), 0x8000000000000000ull);
  EXPECT_EQ(rotl32(0x12345678u, 0), 0x12345678u);
}

TEST(Bytes, HammingWeight) {
  EXPECT_EQ(hamming_weight(0), 0);
  EXPECT_EQ(hamming_weight(0xf), 4);
  EXPECT_EQ(hamming_weight(0xffffffffffffffffull), 64);
  EXPECT_EQ(hamming_weight(0b1010101), 4);
}

TEST(Bytes, HammingDistance) {
  EXPECT_EQ(hamming_distance(0, 0), 0);
  EXPECT_EQ(hamming_distance(0xff, 0x0f), 4);
  EXPECT_EQ(hamming_distance(5, 6), 2);
}

}  // namespace
}  // namespace convolve
