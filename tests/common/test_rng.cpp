#include "convolve/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace convolve {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResets) {
  Xoshiro256 a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformWithinBound) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformCoversRange) {
  Xoshiro256 rng(5);
  std::array<int, 8> histogram{};
  for (int i = 0; i < 8000; ++i) ++histogram[rng.uniform(8)];
  for (int count : histogram) {
    EXPECT_GT(count, 800);  // expect ~1000 each; catastrophic skew fails
    EXPECT_LT(count, 1200);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(11);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Xoshiro256 rng(13);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, FillBytesDeterministic) {
  Xoshiro256 a(21), b(21);
  std::vector<std::uint8_t> x(37), y(37);
  a.fill_bytes(x);
  b.fill_bytes(y);
  EXPECT_EQ(x, y);
}

TEST(Rng, FillBytesCoversValues) {
  Xoshiro256 rng(23);
  std::vector<std::uint8_t> x(4096);
  rng.fill_bytes(x);
  std::array<bool, 256> seen{};
  for (auto b : x) seen[b] = true;
  int distinct = 0;
  for (bool s : seen) distinct += s;
  EXPECT_GT(distinct, 240);
}

// --- jump() and split(): parallel stream discipline ----------------------

TEST(Rng, JumpChangesStateDeterministically) {
  Xoshiro256 a(31), b(31), stay(31);
  a.jump();
  b.jump();
  // Jump is deterministic ...
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // ... and lands far from the un-jumped stream.
  Xoshiro256 c(31);
  c.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (stay.next_u64() == c.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsReproducibleAndDoesNotAdvanceParent) {
  Xoshiro256 parent(77);
  const auto before = parent.next_u64();
  parent.reseed(77);
  Xoshiro256 s1 = parent.split(5);
  Xoshiro256 s2 = parent.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
  // split() is const: the parent's own sequence is untouched.
  EXPECT_EQ(parent.next_u64(), before);
}

TEST(Rng, SplitGoldenVectors) {
  // Pins the frozen stream-derivation contract. Every sca campaign keys
  // trace i's randomness off base.split(i), and the bitsliced engine's
  // bit-identity guarantee (and any stored report) is only stable if
  // split never changes. These vectors were produced by the current
  // implementation; a mismatch means the derivation was altered, which
  // silently invalidates all recorded campaigns -- change them only with
  // a deliberate format break. Tags cover the seams the lane engine
  // cares about: block-interior, block-boundary (63/64) and deep indices.
  struct Golden {
    std::uint64_t seed;
    std::uint64_t tag;
    std::uint64_t first;
    std::uint64_t second;
  };
  static constexpr Golden kGolden[] = {
      {0xC0111001DEull, 0ull, 0xB3116CF83A492897ull, 0x26C479A168135DABull},
      {0xC0111001DEull, 1ull, 0xF02555A035ADFA11ull, 0xBF5EAD067AD8D79Cull},
      {0xC0111001DEull, 2ull, 0xD3690C2AE4CA3EA0ull, 0x8F4A0A5A26EB4F12ull},
      {0xC0111001DEull, 63ull, 0x85D68579123F618Aull, 0xA55FCF1CD771A3E8ull},
      {0xC0111001DEull, 64ull, 0x8096A5EF9F30BE35ull, 0x07AFF991652FC5BDull},
      {0xC0111001DEull, 1000000ull, 0x95B3BCE7DBB0B81Eull, 0xE18072EC40402122ull},
      {0x7E57EDull, 0ull, 0x0D07E953AB6E7743ull, 0x95A658432C435AE6ull},
      {0x7E57EDull, 1ull, 0x61AB87DCF84A783Cull, 0x40DD9D6CB4EC4BDFull},
      {0x7E57EDull, 2ull, 0x9C20876B2742B7FDull, 0xD770126477D41EE0ull},
      {0x7E57EDull, 63ull, 0x37744BD09916203Bull, 0xB257969858450721ull},
      {0x7E57EDull, 64ull, 0x7C62CB4A5BC7F1AEull, 0x6D33D9CC99625361ull},
      {0x7E57EDull, 1000000ull, 0xE4281EDEAFB7FD1Dull, 0x4DFE9441344A5431ull},
  };
  for (const Golden& g : kGolden) {
    Xoshiro256 child = Xoshiro256(g.seed).split(g.tag);
    EXPECT_EQ(child.next_u64(), g.first)
        << "seed=" << g.seed << " tag=" << g.tag;
    EXPECT_EQ(child.next_u64(), g.second)
        << "seed=" << g.seed << " tag=" << g.tag;
  }
}

TEST(Rng, SplitStreamsDependOnParentState) {
  Xoshiro256 p1(1), p2(2);
  Xoshiro256 a = p1.split(0), b = p2.split(0);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsPairwiseNonOverlapping) {
  // Overlapping xoshiro streams would replay each other's outputs. Draw
  // 10^6 values from each of four sibling streams (plus the parent) and
  // require all 5e6 values distinct: a genuine overlap inside the window
  // would collide massively, while for independent streams the birthday
  // bound puts a spurious 64-bit collision at ~7e-7 -- deterministic here
  // anyway, since everything is seeded.
  Xoshiro256 parent(0xC0FFEE);
  std::vector<Xoshiro256> streams;
  for (std::uint64_t i = 0; i < 4; ++i) streams.push_back(parent.split(i));
  streams.push_back(parent);  // the parent itself must not overlap a child
  constexpr std::size_t kDraws = 1000000;
  std::vector<std::uint64_t> all;
  all.reserve(streams.size() * kDraws);
  for (auto& s : streams) {
    for (std::size_t i = 0; i < kDraws; ++i) all.push_back(s.next_u64());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "two streams produced the same 64-bit value inside the window";
}

TEST(Rng, SplitDistinctTagsGiveDistinctStreams) {
  Xoshiro256 parent(99);
  // Including far-apart and adjacent tags: split must be O(1) in the tag.
  const std::uint64_t tags[] = {0, 1, 2, 3, 1000, 1ull << 40, ~0ull};
  std::vector<std::uint64_t> first;
  for (const std::uint64_t t : tags) first.push_back(parent.split(t).next_u64());
  std::sort(first.begin(), first.end());
  EXPECT_EQ(std::unique(first.begin(), first.end()), first.end());
}

}  // namespace
}  // namespace convolve
