#include "convolve/common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace convolve {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResets) {
  Xoshiro256 a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformWithinBound) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformCoversRange) {
  Xoshiro256 rng(5);
  std::array<int, 8> histogram{};
  for (int i = 0; i < 8000; ++i) ++histogram[rng.uniform(8)];
  for (int count : histogram) {
    EXPECT_GT(count, 800);  // expect ~1000 each; catastrophic skew fails
    EXPECT_LT(count, 1200);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(11);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Xoshiro256 rng(13);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, FillBytesDeterministic) {
  Xoshiro256 a(21), b(21);
  std::vector<std::uint8_t> x(37), y(37);
  a.fill_bytes(x);
  b.fill_bytes(y);
  EXPECT_EQ(x, y);
}

TEST(Rng, FillBytesCoversValues) {
  Xoshiro256 rng(23);
  std::vector<std::uint8_t> x(4096);
  rng.fill_bytes(x);
  std::array<bool, 256> seen{};
  for (auto b : x) seen[b] = true;
  int distinct = 0;
  for (bool s : seen) distinct += s;
  EXPECT_GT(distinct, 240);
}

}  // namespace
}  // namespace convolve
