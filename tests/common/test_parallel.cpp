// Property suite for the deterministic parallel execution engine: the pool
// must schedule correctly (every index exactly once, exceptions propagate,
// nesting stays inline) and, more importantly, every reduction must be
// bit-identical across thread counts -- including floating point and
// downstream stochastic consumers like the CIM extraction attack.
#include "convolve/common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "convolve/cim/attack.hpp"
#include "convolve/cim/macro.hpp"

namespace convolve {
namespace {

const int kThreadCounts[] = {1, 2, 4, 7};

TEST(Threads, HardwareAndDefaultsArePositive) {
  EXPECT_GE(par::hardware_threads(), 1);
  EXPECT_GE(par::default_thread_count(), 1);
  EXPECT_GE(par::thread_count(), 1);
}

TEST(Threads, SetClampsToOne) {
  par::ScopedThreadCount outer(par::thread_count());
  par::set_thread_count(-3);
  EXPECT_EQ(par::thread_count(), 1);
  par::set_thread_count(5);
  EXPECT_EQ(par::thread_count(), 5);
}

TEST(Threads, ScopedOverrideRestores) {
  const int before = par::thread_count();
  {
    par::ScopedThreadCount t(before + 3);
    EXPECT_EQ(par::thread_count(), before + 3);
  }
  EXPECT_EQ(par::thread_count(), before);
}

TEST(Threads, CliFlagConsumed) {
  par::ScopedThreadCount outer(par::thread_count());
  char prog[] = "prog";
  char flag[] = "--threads";
  char value[] = "3";
  char other[] = "--strict";
  char* argv[] = {prog, flag, value, other, nullptr};
  int argc = 4;
  EXPECT_EQ(par::init_threads_from_cli(argc, argv), 3);
  EXPECT_EQ(par::thread_count(), 3);
  ASSERT_EQ(argc, 2);  // --threads 3 removed, --strict kept
  EXPECT_STREQ(argv[1], "--strict");
}

TEST(Threads, CliEqualsFormConsumed) {
  par::ScopedThreadCount outer(par::thread_count());
  char prog[] = "prog";
  char flag[] = "--threads=6";
  char* argv[] = {prog, flag, nullptr};
  int argc = 2;
  EXPECT_EQ(par::init_threads_from_cli(argc, argv), 6);
  EXPECT_EQ(argc, 1);
}

TEST(Chunking, RangesPartitionTheIterationSpace) {
  for (std::uint64_t n : {0ull, 1ull, 7ull, 256ull, 1000ull, 100000ull}) {
    for (std::uint64_t grain : {1ull, 16ull, 1024ull}) {
      const std::uint64_t n_chunks = par::chunk_count(n, grain);
      if (n == 0) {
        EXPECT_EQ(n_chunks, 0u);
        continue;
      }
      EXPECT_GE(n_chunks, 1u);
      EXPECT_LE(n_chunks, 256u);  // bounded merge cost
      std::uint64_t covered = 0;
      for (std::uint64_t c = 0; c < n_chunks; ++c) {
        const par::Range r = par::chunk_range(n, n_chunks, c);
        EXPECT_EQ(r.begin, covered) << "chunks must be contiguous ascending";
        EXPECT_GT(r.end, r.begin);
        covered = r.end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (int threads : kThreadCounts) {
    par::ScopedThreadCount t(threads);
    const std::uint64_t n = 10000;
    std::vector<int> hits(n, 0);
    std::atomic<std::uint64_t> sum{0};
    par::parallel_for(n, [&](std::uint64_t i) {
      ++hits[i];  // distinct i per call: no race
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2) << "threads=" << threads;
    for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
  }
}

TEST(ParallelFor, EmptyAndSingleton) {
  par::ScopedThreadCount t(4);
  int calls = 0;
  par::parallel_for(0, [&](std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  par::parallel_for(1, [&](std::uint64_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, ExceptionPropagatesAndPoolSurvives) {
  par::ScopedThreadCount t(4);
  EXPECT_THROW(par::parallel_for(100,
                                 [&](std::uint64_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> ok{0};
  par::parallel_for(50, [&](std::uint64_t) { ++ok; });
  EXPECT_EQ(ok.load(), 50);
}

TEST(ParallelFor, NestedRegionsRunInlineWithoutDeadlock) {
  par::ScopedThreadCount t(4);
  std::atomic<std::uint64_t> total{0};
  par::parallel_for(8, [&](std::uint64_t) {
    par::parallel_for(16, [&](std::uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ParallelFor, ManySmallRegionsStress) {
  par::ScopedThreadCount t(4);
  for (int rep = 0; rep < 200; ++rep) {
    std::atomic<int> n{0};
    par::parallel_for(17, [&](std::uint64_t) { ++n; });
    ASSERT_EQ(n.load(), 17);
  }
}

// The determinism contract itself: a non-commutative combine must fold in
// ascending chunk order for every thread count.
TEST(ParallelReduce, OrderedFoldIsSerialOrder) {
  const std::uint64_t n = 5000;
  const std::uint64_t grain = 64;
  const auto run = [&] {
    return par::parallel_reduce(
        n, grain, std::string(),
        [](std::uint64_t c, par::Range r) {
          return std::to_string(c) + ":" + std::to_string(r.begin) + "-" +
                 std::to_string(r.end) + ";";
        },
        [](std::string acc, std::string part) { return acc + part; });
  };
  std::string serial;
  {
    par::ScopedThreadCount t(1);
    serial = run();
  }
  EXPECT_FALSE(serial.empty());
  for (int threads : kThreadCounts) {
    par::ScopedThreadCount t(threads);
    EXPECT_EQ(run(), serial) << "threads=" << threads;
  }
}

TEST(ParallelReduce, FloatingPointSumBitIdenticalAcrossThreadCounts) {
  const std::uint64_t n = 40000;
  const auto run = [&] {
    return par::parallel_reduce(
        n, 128, 0.0,
        [](std::uint64_t, par::Range r) {
          double s = 0.0;
          for (std::uint64_t i = r.begin; i < r.end; ++i) {
            // Values with wildly varying magnitude: any reassociation of
            // the fold would change the rounding, hence the bits.
            s += 1.0 / (1.0 + static_cast<double>(i % 977)) +
                 static_cast<double>(i) * 1e-7;
          }
          return s;
        },
        [](double acc, double part) { return acc + part; });
  };
  double serial = 0.0;
  {
    par::ScopedThreadCount t(1);
    serial = run();
  }
  for (int threads : kThreadCounts) {
    par::ScopedThreadCount t(threads);
    const double parallel = run();
    EXPECT_EQ(std::memcmp(&parallel, &serial, sizeof(double)), 0)
        << "threads=" << threads << " parallel=" << parallel
        << " serial=" << serial;
  }
}

TEST(ParallelReduce, EmptyReturnsInit) {
  par::ScopedThreadCount t(4);
  const int r = par::parallel_reduce(
      0, 1, 41, [](std::uint64_t, par::Range) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(r, 41);
}

// Cross-subsystem contract: the CIM extraction attack draws noise and
// countermeasure randomness through per-measurement fork streams, so the
// full attack result -- recovered weights, accuracy, measurement count --
// is identical at every thread count even under noise + countermeasures.
TEST(ParallelDeterminism, CimAttackIdenticalAcrossThreadCounts) {
  cim::MacroConfig mc;
  mc.n_rows = 32;
  mc.noise_sigma = 1.0;
  mc.dummy_rows = 2;
  mc.seed = 0xFEED5;
  cim::AttackConfig ac;
  ac.traces_per_measurement = 16;

  cim::AttackResult serial;
  {
    par::ScopedThreadCount t(1);
    cim::CimMacro macro = cim::random_macro(mc, 0xBADF00D);
    serial = cim::run_attack(macro, ac);
    cim::evaluate_against_ground_truth(serial, macro.secret_weights());
  }
  for (int threads : {2, 4, 8}) {
    par::ScopedThreadCount t(threads);
    cim::CimMacro macro = cim::random_macro(mc, 0xBADF00D);
    cim::AttackResult parallel = cim::run_attack(macro, ac);
    cim::evaluate_against_ground_truth(parallel, macro.secret_weights());
    EXPECT_EQ(parallel.recovered, serial.recovered) << "threads=" << threads;
    EXPECT_EQ(parallel.measurements, serial.measurements);
    EXPECT_EQ(parallel.accuracy, serial.accuracy);
    EXPECT_EQ(parallel.phase1.features, serial.phase1.features);
    EXPECT_EQ(parallel.phase1.hw_class, serial.phase1.hw_class);
    EXPECT_EQ(parallel.phase1.clustering.assignment,
              serial.phase1.clustering.assignment);
  }
}

}  // namespace
}  // namespace convolve
