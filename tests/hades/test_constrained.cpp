#include <gtest/gtest.h>

#include "convolve/hades/library.hpp"
#include "convolve/hades/search.hpp"

namespace convolve::hades {
namespace {

TEST(Constrained, UnconstrainedMatchesExhaustive) {
  const auto c = library::aes256();
  const auto plain = exhaustive_search(*c, 1, Goal::kLatency);
  const auto budgeted = constrained_search(*c, 1, Goal::kLatency, {});
  EXPECT_DOUBLE_EQ(plain.cost, budgeted.cost);
}

TEST(Constrained, AreaBudgetForcesSlowerDesign) {
  // The paper's Table II in reverse: the fastest masked AES costs 1.2 MGE;
  // under a 150 kGE area budget the explorer must settle for the
  // iterative design (75 cc), and under 50 kGE for the serial one.
  const auto c = library::aes256();
  Constraints mid;
  mid.max_area_ge = 150'000;
  const auto r_mid = constrained_search(*c, 1, Goal::kLatency, mid);
  ASSERT_TRUE(feasible(r_mid));
  EXPECT_DOUBLE_EQ(r_mid.metrics.latency_cc, 75.0);
  EXPECT_LE(r_mid.metrics.area_ge, 150'000);

  Constraints tight;
  tight.max_area_ge = 50'000;
  const auto r_tight = constrained_search(*c, 1, Goal::kLatency, tight);
  ASSERT_TRUE(feasible(r_tight));
  EXPECT_GT(r_tight.metrics.latency_cc, 1000.0);
}

TEST(Constrained, RandomnessBudgetSelectsHpcGadgets) {
  // A TRNG limited to 100 fresh bits/cycle cannot feed the DOM designs.
  const auto c = library::aes256();
  Constraints trng;
  trng.max_rand_bits = 100;
  const auto r = constrained_search(*c, 1, Goal::kLatency, trng);
  ASSERT_TRUE(feasible(r));
  EXPECT_LE(r.metrics.rand_bits, 100);
  EXPECT_DOUBLE_EQ(r.metrics.rand_bits, 68.0);  // the HPC shared design
}

TEST(Constrained, InfeasibleBudgetReported) {
  const auto c = library::aes256();
  Constraints impossible;
  impossible.max_area_ge = 1000;  // no masked AES fits in 1 kGE
  const auto r = constrained_search(*c, 1, Goal::kLatency, impossible);
  EXPECT_FALSE(feasible(r));
}

TEST(Constrained, SatisfiesChecksEveryAxis) {
  const Metrics m{100, 10, 5};
  EXPECT_TRUE(satisfies(m, {}));
  EXPECT_TRUE(satisfies(m, {100, 10, 5}));
  EXPECT_FALSE(satisfies(m, {99, 10, 5}));
  EXPECT_FALSE(satisfies(m, {100, 9, 5}));
  EXPECT_FALSE(satisfies(m, {100, 10, 4}));
}

TEST(Constrained, LatencyBudgetWithAreaGoal) {
  // "Fastest design that fits" vs "smallest design that is fast enough".
  const auto c = library::chacha20();
  Constraints deadline;
  deadline.max_latency_cc = 200;
  const auto r = constrained_search(*c, 1, Goal::kArea, deadline);
  ASSERT_TRUE(feasible(r));
  EXPECT_LE(r.metrics.latency_cc, 200);
  // The unconstrained area optimum is slower than the deadline.
  const auto unconstrained = exhaustive_search(*c, 1, Goal::kArea);
  EXPECT_GT(unconstrained.metrics.latency_cc, 200);
  EXPECT_GE(r.metrics.area_ge, unconstrained.metrics.area_ge);
}

}  // namespace
}  // namespace convolve::hades
