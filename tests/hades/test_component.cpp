#include "convolve/hades/component.hpp"

#include <gtest/gtest.h>

#include "convolve/hades/library.hpp"

namespace convolve::hades {
namespace {

ComponentPtr tiny_component() {
  // Two variants: a leaf and a variant with one child of 3 leaves -> 1+3=4.
  const ComponentPtr child = make_component(
      "child",
      {
          leaf("c0", [](unsigned) { return Metrics{1, 1, 0}; }),
          leaf("c1", [](unsigned) { return Metrics{2, 2, 0}; }),
          leaf("c2", [](unsigned) { return Metrics{3, 3, 0}; }),
      });
  Variant nested;
  nested.name = "nested";
  nested.children = {child};
  nested.combine = [](const std::vector<ChildEval>& ch, unsigned) {
    Metrics m = ch[0].metrics;
    m.area_ge += 10;
    return m;
  };
  return make_component(
      "tiny", {leaf("solo", [](unsigned) { return Metrics{5, 5, 5}; }),
               std::move(nested)});
}

TEST(Component, ConfigCountSumsOverVariantsMultipliesChildren) {
  EXPECT_EQ(tiny_component()->config_count(), 4u);
}

TEST(Component, DefaultChoiceIsValid) {
  const auto c = tiny_component();
  const Choice ch = default_choice(*c);
  EXPECT_TRUE(valid_choice(*c, ch));
  EXPECT_EQ(ch.variant, 0);
}

TEST(Component, EvaluateFoldsChildMetrics) {
  const auto c = tiny_component();
  Choice ch;
  ch.variant = 1;
  ch.children.push_back(Choice{2, {}});
  EXPECT_TRUE(valid_choice(*c, ch));
  const Metrics m = evaluate(*c, ch, 0);
  EXPECT_DOUBLE_EQ(m.area_ge, 13.0);  // child c2 area 3 + 10
  EXPECT_DOUBLE_EQ(m.latency_cc, 3.0);
}

TEST(Component, EvaluateRejectsBadChoice) {
  const auto c = tiny_component();
  Choice bad;
  bad.variant = 7;
  EXPECT_THROW(evaluate(*c, bad, 0), std::out_of_range);
  Choice arity;
  arity.variant = 1;  // needs one child
  EXPECT_THROW(evaluate(*c, arity, 0), std::invalid_argument);
}

TEST(Component, DescribeNamesVariants) {
  const auto c = tiny_component();
  Choice ch;
  ch.variant = 1;
  ch.children.push_back(Choice{0, {}});
  EXPECT_EQ(describe(*c, ch), "tiny=nested[child=c0]");
}

TEST(Component, EmptyVariantListRejected) {
  EXPECT_THROW(Component("bad", {}), std::invalid_argument);
}

TEST(Component, MetricsArithmetic) {
  const Metrics a{1, 2, 3};
  const Metrics b{10, 20, 30};
  const Metrics s = a + b;
  EXPECT_DOUBLE_EQ(s.area_ge, 11.0);
  EXPECT_DOUBLE_EQ(s.latency_cc, 22.0);
  EXPECT_DOUBLE_EQ(s.rand_bits, 33.0);
}

TEST(Component, DominanceIsPartialOrder) {
  const Metrics small{1, 1, 1};
  const Metrics big{2, 2, 2};
  const Metrics mixed{0.5, 3, 1};
  EXPECT_TRUE(dominates(small, big));
  EXPECT_FALSE(dominates(big, small));
  EXPECT_FALSE(dominates(small, mixed));
  EXPECT_FALSE(dominates(mixed, small));
  EXPECT_TRUE(dominates(small, small));
}

TEST(Component, ScoreMatchesGoals) {
  const Metrics m{10, 5, 2};
  EXPECT_DOUBLE_EQ(score(m, Goal::kArea), 10.0);
  EXPECT_DOUBLE_EQ(score(m, Goal::kLatency), 5.0);
  EXPECT_DOUBLE_EQ(score(m, Goal::kRandomness), 2.0);
  EXPECT_DOUBLE_EQ(score(m, Goal::kAreaLatencyProduct), 50.0);
  EXPECT_DOUBLE_EQ(score(m, Goal::kAreaLatencyRandProduct), 150.0);
}

// --- Library configuration counts: the paper's Table I, column 2 -------

struct CountCase {
  const char* name;
  std::uint64_t expected;
};

class LibraryCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LibraryCountTest, ConfigCountMatchesPaper) {
  const auto suite = library::table1_suite();
  const auto& entry = suite[GetParam()];
  EXPECT_EQ(entry.factory()->config_count(), entry.expected_configs)
      << entry.name;
}

INSTANTIATE_TEST_SUITE_P(Table1, LibraryCountTest,
                         ::testing::Range<std::size_t>(0, 8));

TEST(Library, MaskedCostsGrowWithOrder) {
  // Property: for every algorithm, the default configuration's area and
  // randomness are non-decreasing in the masking order.
  for (const auto& entry : library::table1_suite()) {
    const auto c = entry.factory();
    const Choice ch = default_choice(*c);
    Metrics prev = evaluate(*c, ch, 0);
    for (unsigned d = 1; d <= 3; ++d) {
      const Metrics cur = evaluate(*c, ch, d);
      EXPECT_GE(cur.area_ge, prev.area_ge) << entry.name << " d=" << d;
      EXPECT_GE(cur.rand_bits, prev.rand_bits) << entry.name << " d=" << d;
      prev = cur;
    }
  }
}

TEST(Library, UnmaskedNeedsNoRandomness) {
  for (const auto& entry : library::table1_suite()) {
    const auto c = entry.factory();
    const Choice ch = default_choice(*c);
    EXPECT_DOUBLE_EQ(evaluate(*c, ch, 0).rand_bits, 0.0) << entry.name;
  }
}

}  // namespace
}  // namespace convolve::hades
