#include "convolve/hades/report.hpp"

#include <gtest/gtest.h>

#include "convolve/hades/library.hpp"

namespace convolve::hades {
namespace {

TEST(Report, FrontierTableHasHeaderAndRows) {
  const auto c = library::adder_mod_q();
  const std::string md = markdown_frontier(*c, 1);
  EXPECT_NE(md.find("# Pareto frontier: adder-mod-q (d = 1)"),
            std::string::npos);
  EXPECT_NE(md.find("| area [GE] | latency [cc] | randomness [bits] |"),
            std::string::npos);
  // At least two designs on the frontier (area/latency trade-off exists).
  const std::size_t rows = std::count(md.begin(), md.end(), '\n');
  EXPECT_GT(rows, 5u);
}

TEST(Report, FrontierRespectsRowCap) {
  const auto c = library::chacha20();
  const std::string md = markdown_frontier(*c, 1, 3);
  // Header (4 lines incl. blank) + at most 3 data rows.
  const std::size_t rows = std::count(md.begin(), md.end(), '\n');
  EXPECT_LE(rows, 4u + 3u);
}

TEST(Report, FrontierRowsAreSortedByArea) {
  const auto c = library::adder_core();
  const std::string md = markdown_frontier(*c, 2);
  // Extract the area column.
  std::vector<double> areas;
  std::size_t pos = 0;
  while ((pos = md.find("\n| ", pos)) != std::string::npos) {
    pos += 3;
    if (!isdigit(md[pos])) continue;
    areas.push_back(std::stod(md.substr(pos)));
  }
  ASSERT_GE(areas.size(), 2u);
  EXPECT_TRUE(std::is_sorted(areas.begin(), areas.end()));
}

TEST(Report, GoalSummaryContainsAllRequestedCells) {
  const auto c = library::keccak();
  const unsigned orders[] = {0u, 1u};
  const Goal goals[] = {Goal::kArea, Goal::kLatency};
  const std::string md = markdown_goal_summary(*c, orders, goals);
  EXPECT_NE(md.find("| 0 | A |"), std::string::npos);
  EXPECT_NE(md.find("| 0 | L |"), std::string::npos);
  EXPECT_NE(md.find("| 1 | A |"), std::string::npos);
  EXPECT_NE(md.find("| 1 | L |"), std::string::npos);
  EXPECT_NE(md.find("keccak="), std::string::npos);  // design description
}

TEST(Report, GoalSummaryMatchesSearchResults) {
  const auto c = library::adder_core();
  const unsigned orders[] = {1u};
  const Goal goals[] = {Goal::kArea};
  const std::string md = markdown_goal_summary(*c, orders, goals);
  const auto best = exhaustive_search(*c, 1, Goal::kArea);
  char expect[64];
  std::snprintf(expect, sizeof(expect), "| %.1f |", best.metrics.area_ge);
  EXPECT_NE(md.find(expect), std::string::npos);
}

}  // namespace
}  // namespace convolve::hades
