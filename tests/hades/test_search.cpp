#include "convolve/hades/search.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

#include "convolve/common/parallel.hpp"
#include "convolve/hades/library.hpp"

namespace convolve::hades {
namespace {

TEST(Search, ForEachVisitsEveryConfiguration) {
  const auto c = library::adder_mod_q();
  std::uint64_t n = for_each_config(*c, 0, [](const Choice&, const Metrics&) {});
  EXPECT_EQ(n, 42u);
  EXPECT_EQ(n, c->config_count());
}

TEST(Search, ForEachVisitsDistinctConfigurations) {
  const auto c = library::keccak();
  std::vector<std::string> seen;
  for_each_config(*c, 0, [&](const Choice& ch, const Metrics&) {
    seen.push_back(describe(*c, ch));
  });
  EXPECT_EQ(seen.size(), 14u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Search, ExhaustiveFindsMinimum) {
  const auto c = library::adder_core();
  const auto r = exhaustive_search(*c, 0, Goal::kLatency);
  // The fastest unmasked 32-bit adders are single-cycle prefix adders.
  EXPECT_DOUBLE_EQ(r.metrics.latency_cc, 1.0);
  EXPECT_EQ(r.evaluations, 7u);
  // Verify optimality directly against the full enumeration.
  for_each_config(*c, 0, [&](const Choice&, const Metrics& m) {
    EXPECT_GE(m.latency_cc, r.metrics.latency_cc);
  });
}

TEST(Search, ExhaustiveMultiGoalSinglePass) {
  const auto c = library::adder_mod_q();
  const Goal goals[] = {Goal::kArea, Goal::kLatency,
                        Goal::kAreaLatencyProduct};
  const auto results = exhaustive_search_multi(*c, 1, goals);
  ASSERT_EQ(results.size(), 3u);
  // Each single-goal search must agree.
  for (std::size_t g = 0; g < 3; ++g) {
    const auto single = exhaustive_search(*c, 1, goals[g]);
    EXPECT_DOUBLE_EQ(results[g].cost, single.cost);
  }
  // Area-optimal is never faster than latency-optimal.
  EXPECT_LE(results[1].metrics.latency_cc, results[0].metrics.latency_cc);
}

TEST(Search, RandomChoiceIsValid) {
  Xoshiro256 rng(1);
  const auto c = library::aes256();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(valid_choice(*c, random_choice(*c, rng)));
  }
}

class LocalSearchTest : public ::testing::TestWithParam<Goal> {};

TEST_P(LocalSearchTest, NeverBeatsExhaustiveAndConvergesWithRestarts) {
  const Goal goal = GetParam();
  const auto c = library::chacha20();
  const auto exact = exhaustive_search(*c, 1, goal);
  Xoshiro256 rng(7);
  const auto heur = local_search(*c, 1, goal, 20, rng);
  EXPECT_GE(heur.cost, exact.cost);                    // cannot beat optimum
  EXPECT_LE(heur.cost, exact.cost * 1.5 + 1e-9);       // and lands close
  EXPECT_LT(heur.evaluations, c->config_count() * 2);  // without full sweep
}

INSTANTIATE_TEST_SUITE_P(
    Goals, LocalSearchTest,
    ::testing::Values(Goal::kArea, Goal::kLatency, Goal::kRandomness,
                      Goal::kAreaLatencyProduct,
                      Goal::kAreaLatencyRandProduct),
    [](const auto& info) { return goal_name(info.param); });

TEST(Search, LocalSearchMoreStartsNeverWorse) {
  const auto c = library::kyber_cpa();
  Xoshiro256 rng1(11), rng2(11);
  const auto few = local_search(*c, 1, Goal::kAreaLatencyProduct, 2, rng1);
  const auto many = local_search(*c, 1, Goal::kAreaLatencyProduct, 25, rng2);
  EXPECT_LE(many.cost, few.cost);
}

TEST(Search, LocalSearchRejectsBadStartCount) {
  const auto c = library::adder_core();
  Xoshiro256 rng(3);
  EXPECT_THROW(local_search(*c, 0, Goal::kArea, 0, rng),
               std::invalid_argument);
}

// --- Pareto folding ------------------------------------------------------

class ParetoTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParetoTest, FoldingMatchesExhaustiveOptimaOnEveryGoal) {
  const unsigned d = GetParam();
  // Mid-size spaces where exhaustive is still fast.
  for (auto factory : {&library::adder_mod_q, &library::sparse_poly_mul,
                       &library::keccak, &library::chacha20}) {
    const auto c = factory();
    for (Goal goal : {Goal::kArea, Goal::kLatency, Goal::kRandomness,
                      Goal::kAreaLatencyProduct}) {
      const auto exact = exhaustive_search(*c, d, goal);
      const double folded = pareto_optimal_cost(*c, d, goal);
      EXPECT_NEAR(folded, exact.cost, 1e-9 * (1.0 + exact.cost))
          << c->name() << " goal " << goal_name(goal) << " d " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ParetoTest, ::testing::Values(0u, 1u, 2u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(Search, ParetoFrontierEntriesAreMutuallyNonDominated) {
  const auto c = library::chacha20();
  const auto frontier = pareto_fold(*c, 1);
  ASSERT_FALSE(frontier.empty());
  for (const auto& a : frontier) {
    for (const auto& b : frontier) {
      if (&a == &b || a.variant != b.variant) continue;
      if (a.metrics == b.metrics) continue;
      EXPECT_FALSE(dominates(a.metrics, b.metrics) &&
                   dominates(b.metrics, a.metrics));
    }
  }
}

TEST(Search, ParetoFoldPrunesSpace) {
  // The frontier must be far smaller than the full space.
  const auto c = library::kyber_cpa();  // 40362 configurations
  const auto frontier = pareto_fold(*c, 1);
  EXPECT_LT(frontier.size(), 2000u);
  EXPECT_GE(frontier.size(), 1u);
}

TEST(Search, ParetoFoldMatchesExhaustiveOnKyberCpa) {
  const auto c = library::kyber_cpa();
  const auto exact = exhaustive_search(*c, 1, Goal::kAreaLatencyProduct);
  EXPECT_NEAR(pareto_optimal_cost(*c, 1, Goal::kAreaLatencyProduct),
              exact.cost, 1e-6 * exact.cost);
}

// --- Enumeration index bijection -----------------------------------------

TEST(Search, ConfigIndexMatchesEnumerationOrder) {
  for (auto factory : {&library::adder_mod_q, &library::keccak,
                       &library::chacha20, &library::kyber_cpa}) {
    const auto c = factory();
    std::uint64_t i = 0;
    for_each_config(*c, 1, [&](const Choice& ch, const Metrics&) {
      if (i < 64 || i % 97 == 0) {  // sample: full sweep is redundant
        EXPECT_EQ(config_index_of(*c, ch), i) << c->name();
        EXPECT_EQ(describe(*c, choice_for_index(*c, i)), describe(*c, ch));
      }
      ++i;
    });
    EXPECT_EQ(i, c->config_count());
  }
}

TEST(Search, IndexedEnumerationCoversSpaceOnce) {
  const auto c = library::chacha20();
  for (int threads : {1, 4}) {
    par::ScopedThreadCount t(threads);
    std::vector<int> hits(c->config_count(), 0);
    const std::uint64_t n = for_each_config_indexed(
        *c, 1, [&](std::uint64_t index, const Choice& ch, const Metrics& m) {
          ++hits[index];  // distinct index per call: no race
          EXPECT_EQ(m, evaluate(*c, ch, 1));
        });
    EXPECT_EQ(n, c->config_count());
    for (std::uint64_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1);
  }
}

// --- Serial equivalence across thread counts -----------------------------
// Table I row x thread count: the parallel sharded enumeration and the
// split-stream local search must reproduce the serial results bit for bit,
// including the explored-design order metadata (config_index).

using EquivParam = std::tuple<int, int>;  // (table1 row, thread count)
class ParallelSearchEquivTest : public ::testing::TestWithParam<EquivParam> {};

TEST_P(ParallelSearchEquivTest, ExhaustiveFrontierMatchesSerial) {
  const auto [row, threads] = GetParam();
  const auto entry = library::table1_suite()[static_cast<std::size_t>(row)];
  const auto c = entry.factory();
  const Goal goals[] = {Goal::kArea, Goal::kLatency, Goal::kRandomness,
                        Goal::kAreaLatencyProduct,
                        Goal::kAreaLatencyRandProduct};
  std::vector<SearchResult> serial, parallel;
  {
    par::ScopedThreadCount t(1);
    serial = exhaustive_search_multi(*c, 1, goals);
  }
  {
    par::ScopedThreadCount t(threads);
    parallel = exhaustive_search_multi(*c, 1, goals);
  }
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t g = 0; g < serial.size(); ++g) {
    SCOPED_TRACE(goal_name(goals[g]));
    EXPECT_EQ(parallel[g].cost, serial[g].cost);  // bit-identical doubles
    EXPECT_EQ(parallel[g].metrics, serial[g].metrics);
    EXPECT_EQ(parallel[g].config_index, serial[g].config_index);
    EXPECT_EQ(parallel[g].evaluations, serial[g].evaluations);
    EXPECT_EQ(parallel[g].evaluations, entry.expected_configs);
    EXPECT_EQ(describe(*c, parallel[g].choice), describe(*c, serial[g].choice));
  }
}

TEST_P(ParallelSearchEquivTest, LocalSearchMatchesSerial) {
  const auto [row, threads] = GetParam();
  const auto entry = library::table1_suite()[static_cast<std::size_t>(row)];
  const auto c = entry.factory();
  Xoshiro256 rng_serial(0xD5E), rng_parallel(0xD5E);
  SearchResult serial, parallel;
  {
    par::ScopedThreadCount t(1);
    serial = local_search(*c, 1, Goal::kAreaLatencyProduct, 6, rng_serial);
  }
  {
    par::ScopedThreadCount t(threads);
    parallel = local_search(*c, 1, Goal::kAreaLatencyProduct, 6, rng_parallel);
  }
  EXPECT_EQ(parallel.cost, serial.cost);
  EXPECT_EQ(parallel.metrics, serial.metrics);
  EXPECT_EQ(parallel.config_index, serial.config_index);
  EXPECT_EQ(parallel.evaluations, serial.evaluations);
  EXPECT_EQ(describe(*c, parallel.choice), describe(*c, serial.choice));
}

INSTANTIATE_TEST_SUITE_P(
    Table1, ParallelSearchEquivTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1, 2, 4, 7)),
    [](const auto& info) {
      const auto entry = library::table1_suite()[static_cast<std::size_t>(
          std::get<0>(info.param))];
      std::string name;
      for (const char* p = entry.name; *p; ++p) {
        if (std::isalnum(static_cast<unsigned char>(*p))) name += *p;
      }
      return name + "x" + std::to_string(std::get<1>(info.param));
    });

// --- Explicit tie-breaking ------------------------------------------------
// Regression for the strict-< accumulation bug: among equal-cost designs
// the representative is now defined (lowest config index), not an accident
// of visit order -- and therefore stable under sharded parallel merges.

ComponentPtr tied_space(double first_cost) {
  // Six leaf variants; all but variant 0 share identical metrics, variant 0
  // costs `first_cost` area. With first_cost equal to the tied value the
  // whole space is one big tie.
  std::vector<Variant> vs;
  for (int i = 0; i < 6; ++i) {
    const double area = i == 0 ? first_cost : 8.0;
    vs.push_back(leaf("v" + std::to_string(i), [area](unsigned) {
      Metrics m;
      m.area_ge = area;
      m.latency_cc = 2.0;
      m.rand_bits = 4.0;
      return m;
    }));
  }
  return std::make_shared<Component>("tied_space", std::move(vs));
}

TEST(Search, FullyTiedSpaceResolvesToLowestConfigIndex) {
  const auto c = tied_space(8.0);  // every design identical
  for (int threads : {1, 2, 4, 7}) {
    par::ScopedThreadCount t(threads);
    const auto r = exhaustive_search(*c, 0, Goal::kAreaLatencyProduct);
    EXPECT_EQ(r.config_index, 0u) << "threads=" << threads;
    EXPECT_EQ(r.evaluations, 6u);
  }
}

TEST(Search, TiedOptimaResolveToLowestConfigIndex) {
  const auto c = tied_space(9.0);  // variant 0 worse; 1..5 tied optimal
  for (int threads : {1, 2, 4, 7}) {
    par::ScopedThreadCount t(threads);
    const auto r = exhaustive_search(*c, 0, Goal::kArea);
    EXPECT_EQ(r.config_index, 1u) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.cost, 8.0);
    EXPECT_EQ(describe(*c, r.choice),
              describe(*c, choice_for_index(*c, 1)));
  }
}

}  // namespace
}  // namespace convolve::hades
