#include "convolve/hades/search.hpp"

#include <gtest/gtest.h>

#include "convolve/hades/library.hpp"

namespace convolve::hades {
namespace {

TEST(Search, ForEachVisitsEveryConfiguration) {
  const auto c = library::adder_mod_q();
  std::uint64_t n = for_each_config(*c, 0, [](const Choice&, const Metrics&) {});
  EXPECT_EQ(n, 42u);
  EXPECT_EQ(n, c->config_count());
}

TEST(Search, ForEachVisitsDistinctConfigurations) {
  const auto c = library::keccak();
  std::vector<std::string> seen;
  for_each_config(*c, 0, [&](const Choice& ch, const Metrics&) {
    seen.push_back(describe(*c, ch));
  });
  EXPECT_EQ(seen.size(), 14u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Search, ExhaustiveFindsMinimum) {
  const auto c = library::adder_core();
  const auto r = exhaustive_search(*c, 0, Goal::kLatency);
  // The fastest unmasked 32-bit adders are single-cycle prefix adders.
  EXPECT_DOUBLE_EQ(r.metrics.latency_cc, 1.0);
  EXPECT_EQ(r.evaluations, 7u);
  // Verify optimality directly against the full enumeration.
  for_each_config(*c, 0, [&](const Choice&, const Metrics& m) {
    EXPECT_GE(m.latency_cc, r.metrics.latency_cc);
  });
}

TEST(Search, ExhaustiveMultiGoalSinglePass) {
  const auto c = library::adder_mod_q();
  const Goal goals[] = {Goal::kArea, Goal::kLatency,
                        Goal::kAreaLatencyProduct};
  const auto results = exhaustive_search_multi(*c, 1, goals);
  ASSERT_EQ(results.size(), 3u);
  // Each single-goal search must agree.
  for (std::size_t g = 0; g < 3; ++g) {
    const auto single = exhaustive_search(*c, 1, goals[g]);
    EXPECT_DOUBLE_EQ(results[g].cost, single.cost);
  }
  // Area-optimal is never faster than latency-optimal.
  EXPECT_LE(results[1].metrics.latency_cc, results[0].metrics.latency_cc);
}

TEST(Search, RandomChoiceIsValid) {
  Xoshiro256 rng(1);
  const auto c = library::aes256();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(valid_choice(*c, random_choice(*c, rng)));
  }
}

class LocalSearchTest : public ::testing::TestWithParam<Goal> {};

TEST_P(LocalSearchTest, NeverBeatsExhaustiveAndConvergesWithRestarts) {
  const Goal goal = GetParam();
  const auto c = library::chacha20();
  const auto exact = exhaustive_search(*c, 1, goal);
  Xoshiro256 rng(7);
  const auto heur = local_search(*c, 1, goal, 20, rng);
  EXPECT_GE(heur.cost, exact.cost);                    // cannot beat optimum
  EXPECT_LE(heur.cost, exact.cost * 1.5 + 1e-9);       // and lands close
  EXPECT_LT(heur.evaluations, c->config_count() * 2);  // without full sweep
}

INSTANTIATE_TEST_SUITE_P(
    Goals, LocalSearchTest,
    ::testing::Values(Goal::kArea, Goal::kLatency, Goal::kRandomness,
                      Goal::kAreaLatencyProduct,
                      Goal::kAreaLatencyRandProduct),
    [](const auto& info) { return goal_name(info.param); });

TEST(Search, LocalSearchMoreStartsNeverWorse) {
  const auto c = library::kyber_cpa();
  Xoshiro256 rng1(11), rng2(11);
  const auto few = local_search(*c, 1, Goal::kAreaLatencyProduct, 2, rng1);
  const auto many = local_search(*c, 1, Goal::kAreaLatencyProduct, 25, rng2);
  EXPECT_LE(many.cost, few.cost);
}

TEST(Search, LocalSearchRejectsBadStartCount) {
  const auto c = library::adder_core();
  Xoshiro256 rng(3);
  EXPECT_THROW(local_search(*c, 0, Goal::kArea, 0, rng),
               std::invalid_argument);
}

// --- Pareto folding ------------------------------------------------------

class ParetoTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParetoTest, FoldingMatchesExhaustiveOptimaOnEveryGoal) {
  const unsigned d = GetParam();
  // Mid-size spaces where exhaustive is still fast.
  for (auto factory : {&library::adder_mod_q, &library::sparse_poly_mul,
                       &library::keccak, &library::chacha20}) {
    const auto c = factory();
    for (Goal goal : {Goal::kArea, Goal::kLatency, Goal::kRandomness,
                      Goal::kAreaLatencyProduct}) {
      const auto exact = exhaustive_search(*c, d, goal);
      const double folded = pareto_optimal_cost(*c, d, goal);
      EXPECT_NEAR(folded, exact.cost, 1e-9 * (1.0 + exact.cost))
          << c->name() << " goal " << goal_name(goal) << " d " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ParetoTest, ::testing::Values(0u, 1u, 2u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(Search, ParetoFrontierEntriesAreMutuallyNonDominated) {
  const auto c = library::chacha20();
  const auto frontier = pareto_fold(*c, 1);
  ASSERT_FALSE(frontier.empty());
  for (const auto& a : frontier) {
    for (const auto& b : frontier) {
      if (&a == &b || a.variant != b.variant) continue;
      if (a.metrics == b.metrics) continue;
      EXPECT_FALSE(dominates(a.metrics, b.metrics) &&
                   dominates(b.metrics, a.metrics));
    }
  }
}

TEST(Search, ParetoFoldPrunesSpace) {
  // The frontier must be far smaller than the full space.
  const auto c = library::kyber_cpa();  // 40362 configurations
  const auto frontier = pareto_fold(*c, 1);
  EXPECT_LT(frontier.size(), 2000u);
  EXPECT_GE(frontier.size(), 1u);
}

TEST(Search, ParetoFoldMatchesExhaustiveOnKyberCpa) {
  const auto c = library::kyber_cpa();
  const auto exact = exhaustive_search(*c, 1, Goal::kAreaLatencyProduct);
  EXPECT_NEAR(pareto_optimal_cost(*c, 1, Goal::kAreaLatencyProduct),
              exact.cost, 1e-6 * exact.cost);
}

}  // namespace
}  // namespace convolve::hades
