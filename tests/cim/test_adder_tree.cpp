#include "convolve/cim/adder_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "convolve/common/bytes.hpp"
#include "convolve/common/rng.hpp"

namespace convolve::cim {
namespace {

TEST(AdderTree, SumsLeaves) {
  AdderTree tree(8);
  std::vector<int> leaves = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto r = tree.step(leaves);
  EXPECT_EQ(r.sum, 36);
}

TEST(AdderTree, RandomSumsMatch) {
  AdderTree tree(64);
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> leaves(64);
    for (auto& v : leaves) v = static_cast<int>(rng.uniform(16));
    const auto r = tree.step(leaves);
    EXPECT_EQ(r.sum, std::accumulate(leaves.begin(), leaves.end(), 0));
  }
}

TEST(AdderTree, RejectsNonPowerOfTwo) {
  EXPECT_THROW(AdderTree(0), std::invalid_argument);
  EXPECT_THROW(AdderTree(3), std::invalid_argument);
  EXPECT_THROW(AdderTree(63), std::invalid_argument);
}

TEST(AdderTree, RejectsWrongLeafCount) {
  AdderTree tree(8);
  std::vector<int> leaves(7, 0);
  EXPECT_THROW(tree.step(leaves), std::invalid_argument);
}

TEST(AdderTree, DepthIsLog2) {
  EXPECT_EQ(AdderTree(1).depth(), 0);
  EXPECT_EQ(AdderTree(2).depth(), 1);
  EXPECT_EQ(AdderTree(64).depth(), 6);
}

TEST(AdderTree, OneHotEnergyProportionalToHammingWeight) {
  // A single value w travels through depth+1 register levels, each
  // switching HW(w) bits from the reset state.
  AdderTree tree(64);
  for (int w = 0; w < 16; ++w) {
    tree.reset();
    std::vector<int> leaves(64, 0);
    leaves[17] = w;
    const auto r = tree.step(leaves);
    const int hw = hamming_weight(static_cast<std::uint64_t>(w));
    EXPECT_DOUBLE_EQ(r.switching_energy, hw * (tree.depth() + 1.0)) << w;
  }
}

TEST(AdderTree, SecondIdenticalStepCostsNothing) {
  AdderTree tree(16);
  std::vector<int> leaves(16, 5);
  tree.step(leaves);
  const auto r = tree.step(leaves);  // registers unchanged
  EXPECT_DOUBLE_EQ(r.switching_energy, 0.0);
}

TEST(AdderTree, ResetRestoresPrechargeState) {
  AdderTree tree(16);
  std::vector<int> leaves(16, 3);
  const auto first = tree.step(leaves);
  tree.reset();
  const auto again = tree.step(leaves);
  EXPECT_DOUBLE_EQ(first.switching_energy, again.switching_energy);
}

TEST(AdderTree, MergeLevelMatchesTreeStructure) {
  AdderTree tree(8);
  EXPECT_EQ(tree.merge_level(0, 1), 1);
  EXPECT_EQ(tree.merge_level(0, 2), 2);
  EXPECT_EQ(tree.merge_level(0, 4), 3);
  EXPECT_EQ(tree.merge_level(6, 7), 1);
  EXPECT_EQ(tree.merge_level(3, 3), 0);
  EXPECT_THROW(tree.merge_level(0, 8), std::out_of_range);
}

TEST(AdderTree, PredictMatchesSimulationOneHot) {
  AdderTree tree(64);
  for (int w : {0, 1, 7, 15}) {
    tree.reset();
    std::vector<int> leaves(64, 0);
    leaves[5] = w;
    const auto r = tree.step(leaves);
    const std::vector<std::pair<int, int>> active = {{5, w}};
    EXPECT_DOUBLE_EQ(AdderTree::predict_from_reset(tree, active),
                     r.switching_energy);
  }
}

TEST(AdderTree, PredictMatchesSimulationPairs) {
  AdderTree tree(64);
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const int i = static_cast<int>(rng.uniform(64));
    int j = static_cast<int>(rng.uniform(64));
    if (j == i) j = (j + 1) % 64;
    const int a = static_cast<int>(rng.uniform(16));
    const int b = static_cast<int>(rng.uniform(16));
    tree.reset();
    std::vector<int> leaves(64, 0);
    leaves[static_cast<std::size_t>(i)] = a;
    leaves[static_cast<std::size_t>(j)] = b;
    const auto r = tree.step(leaves);
    const std::vector<std::pair<int, int>> active = {{i, a}, {j, b}};
    EXPECT_DOUBLE_EQ(AdderTree::predict_from_reset(tree, active),
                     r.switching_energy)
        << i << "," << j << " " << a << "+" << b;
  }
}

TEST(AdderTree, PredictMatchesSimulationManyActive) {
  AdderTree tree(32);
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> leaves(32, 0);
    std::vector<std::pair<int, int>> active;
    for (int i = 0; i < 32; ++i) {
      if (rng.next_bit()) {
        const int v = static_cast<int>(rng.uniform(16));
        leaves[static_cast<std::size_t>(i)] = v;
        if (v != 0) active.emplace_back(i, v);
      }
    }
    tree.reset();
    const auto r = tree.step(leaves);
    EXPECT_DOUBLE_EQ(AdderTree::predict_from_reset(tree, active),
                     r.switching_energy);
  }
}

}  // namespace
}  // namespace convolve::cim
