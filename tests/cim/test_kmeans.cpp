#include "convolve/cim/kmeans.hpp"

#include <gtest/gtest.h>

namespace convolve::cim {
namespace {

TEST(KMeans, SeparatesWellSeparatedClusters) {
  std::vector<double> points;
  for (double center : {0.0, 10.0, 20.0}) {
    for (int i = 0; i < 20; ++i) points.push_back(center + 0.1 * i / 20.0);
  }
  Xoshiro256 rng(1);
  auto r = kmeans_1d(points, 3, rng);
  sort_clusters_by_centroid(r);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(r.assignment[static_cast<std::size_t>(i)], i / 20);
  }
  EXPECT_NEAR(r.centroids[0], 0.05, 0.1);
  EXPECT_NEAR(r.centroids[1], 10.05, 0.1);
  EXPECT_NEAR(r.centroids[2], 20.05, 0.1);
}

TEST(KMeans, HandlesNoisyClusters) {
  Xoshiro256 noise(2);
  std::vector<double> points;
  for (double center : {0.0, 8.0, 16.0, 24.0, 32.0}) {
    for (int i = 0; i < 40; ++i) points.push_back(noise.normal(center, 0.8));
  }
  Xoshiro256 rng(3);
  auto r = kmeans_1d(points, 5, rng);
  sort_clusters_by_centroid(r);
  int errors = 0;
  for (int i = 0; i < 200; ++i) {
    errors += (r.assignment[static_cast<std::size_t>(i)] != i / 40);
  }
  EXPECT_LT(errors, 4);
}

TEST(KMeans, SingleCluster) {
  std::vector<double> points(10, 5.0);
  Xoshiro256 rng(4);
  const auto r = kmeans_1d(points, 1, rng);
  EXPECT_DOUBLE_EQ(r.centroids[0], 5.0);
  EXPECT_DOUBLE_EQ(r.inertia, 0.0);
}

TEST(KMeans, KEqualsN) {
  std::vector<double> points = {1.0, 2.0, 3.0};
  Xoshiro256 rng(5);
  const auto r = kmeans_1d(points, 3, rng);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeans, RejectsBadArguments) {
  Xoshiro256 rng(6);
  EXPECT_THROW(kmeans_1d({}, 2, rng), std::invalid_argument);
  EXPECT_THROW(kmeans_1d({1.0}, 0, rng), std::invalid_argument);
  EXPECT_THROW(kmeans_1d({1.0}, 2, rng), std::invalid_argument);
}

TEST(KMeans, SortRelabelsAssignments) {
  KMeansResult r;
  r.centroids = {30.0, 10.0, 20.0};
  r.assignment = {0, 1, 2, 0};
  sort_clusters_by_centroid(r);
  EXPECT_EQ(r.centroids, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_EQ(r.assignment, (std::vector<int>{2, 0, 1, 2}));
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Xoshiro256 noise(7);
  std::vector<double> points;
  for (int i = 0; i < 100; ++i) points.push_back(noise.normal(0.0, 10.0));
  Xoshiro256 rng(8);
  const auto r2 = kmeans_1d(points, 2, rng);
  const auto r5 = kmeans_1d(points, 5, rng);
  EXPECT_LT(r5.inertia, r2.inertia);
}

}  // namespace
}  // namespace convolve::cim
