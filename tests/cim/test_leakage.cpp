#include "convolve/cim/leakage.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "convolve/common/bytes.hpp"

namespace convolve::cim {
namespace {

TEST(Tvla, UnprotectedMacroLeaksStrongly) {
  MacroConfig config;
  config.noise_sigma = 0.5;
  const auto result = tvla_fixed_vs_random(config, 400, 1);
  EXPECT_TRUE(result.leaks);
  EXPECT_GT(std::abs(result.t_statistic), 4.5);
}

TEST(Tvla, CountermeasuresReduceTStatistic) {
  MacroConfig plain;
  plain.noise_sigma = 0.5;
  MacroConfig hardened = plain;
  hardened.shuffle_rows = true;
  hardened.dummy_rows = 32;
  const auto exposed = tvla_fixed_vs_random(plain, 400, 2);
  const auto protected_result = tvla_fixed_vs_random(hardened, 400, 2);
  EXPECT_LT(std::abs(protected_result.t_statistic),
            std::abs(exposed.t_statistic));
}

TEST(Tvla, ReportsTraceCount) {
  MacroConfig config;
  const auto result = tvla_fixed_vs_random(config, 50, 3);
  EXPECT_EQ(result.traces_per_set, 50);
}

TEST(Cpa, RecoversHammingWeightsNoiseFree) {
  MacroConfig config;
  CimMacro macro = random_macro(config, 77);
  auto result = cpa_known_input_attack(macro, 10000, 5);
  evaluate_cpa(result, macro.secret_weights());
  EXPECT_GT(result.accuracy, 0.9);
}

TEST(Cpa, MoreTracesImproveAccuracy) {
  MacroConfig config;
  config.noise_sigma = 2.0;
  CimMacro macro_few = random_macro(config, 78);
  auto few = cpa_known_input_attack(macro_few, 100, 6);
  evaluate_cpa(few, macro_few.secret_weights());
  CimMacro macro_many = random_macro(config, 78);
  auto many = cpa_known_input_attack(macro_many, 10000, 6);
  evaluate_cpa(many, macro_many.secret_weights());
  EXPECT_GE(many.accuracy, few.accuracy);
}

TEST(Cpa, RecoversClassesNotValues) {
  // The known-input attack cannot beat the HW-class granularity: two
  // different values with the same HW have identical regression slopes in
  // expectation. This is why the paper's chosen-input phase 2 matters.
  MacroConfig config;
  config.n_rows = 8;
  CimMacro macro(config, {7, 11, 13, 14, 1, 0, 15, 2});
  auto result = cpa_known_input_attack(macro, 10000, 7);
  evaluate_cpa(result, macro.secret_weights());
  // All four HW=3 rows map to the same class...
  EXPECT_EQ(result.recovered_hw[0], 3);
  EXPECT_EQ(result.recovered_hw[1], 3);
  EXPECT_EQ(result.recovered_hw[2], 3);
  EXPECT_EQ(result.recovered_hw[3], 3);
  // ...which is full class accuracy but zero value resolution inside it.
  EXPECT_GT(result.accuracy, 0.9);
}

TEST(Cpa, DummiesDegradeRecovery) {
  MacroConfig plain;
  CimMacro a = random_macro(plain, 79);
  auto base = cpa_known_input_attack(a, 4000, 8);
  evaluate_cpa(base, a.secret_weights());

  MacroConfig noisy = plain;
  noisy.dummy_rows = 48;
  CimMacro b = random_macro(noisy, 79);
  auto blinded = cpa_known_input_attack(b, 4000, 8);
  evaluate_cpa(blinded, b.secret_weights());
  EXPECT_LT(blinded.accuracy, base.accuracy);
}

}  // namespace
}  // namespace convolve::cim
