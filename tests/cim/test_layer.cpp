#include "convolve/cim/layer.hpp"

#include <gtest/gtest.h>

#include "convolve/cim/attack.hpp"

namespace convolve::cim {
namespace {

LayerConfig small_layer() {
  LayerConfig c;
  c.inputs = 16;
  c.outputs = 4;
  c.requant_shift = 2;
  return c;
}

TEST(DenseLayer, ForwardMatchesReferenceMath) {
  const LayerConfig config = small_layer();
  DenseLayer layer = random_layer(config, 9);
  Xoshiro256 rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> acts(16);
    for (auto& a : acts) a = static_cast<int>(rng.uniform(16));
    const auto out = layer.forward(acts);
    ASSERT_EQ(out.size(), 4u);
    for (int o = 0; o < 4; ++o) {
      std::int64_t mac = 0;
      for (int i = 0; i < 16; ++i) {
        mac += static_cast<std::int64_t>(
                   layer.secret_weights()[static_cast<std::size_t>(o)]
                                         [static_cast<std::size_t>(i)]) *
               acts[static_cast<std::size_t>(i)];
      }
      const std::int64_t expected = (mac > 0 ? mac : 0) >> 2;
      EXPECT_EQ(out[static_cast<std::size_t>(o)], expected);
    }
  }
}

TEST(DenseLayer, CountermeasuresDoNotChangeResults) {
  LayerConfig plain = small_layer();
  LayerConfig hardened = small_layer();
  hardened.macro.shuffle_rows = true;
  hardened.macro.dummy_rows = 8;
  // Same weights via the same seed.
  DenseLayer a = random_layer(plain, 11);
  DenseLayer b = random_layer(hardened, 11);
  std::vector<int> acts(16, 9);
  EXPECT_EQ(a.forward(acts), b.forward(acts));
}

TEST(DenseLayer, AttackStealsEveryColumnOfUnprotectedLayer) {
  LayerConfig config;
  config.inputs = 64;
  config.outputs = 3;
  DenseLayer layer = random_layer(config, 12);
  AttackConfig attack;
  for (int o = 0; o < 3; ++o) {
    auto result = run_attack(layer.column(o), attack);
    evaluate_against_ground_truth(
        result, layer.secret_weights()[static_cast<std::size_t>(o)]);
    EXPECT_DOUBLE_EQ(result.accuracy, 1.0) << "column " << o;
  }
}

TEST(DenseLayer, ValidatesConfiguration) {
  LayerConfig config = small_layer();
  EXPECT_THROW(DenseLayer(config, {{1, 2}}), std::invalid_argument);
  config.requant_shift = 40;
  EXPECT_THROW(random_layer(config, 1), std::invalid_argument);
}

TEST(DenseLayer, ReluClampsNegativePreactivations) {
  // All-zero weights => mac 0 => relu 0.
  LayerConfig config = small_layer();
  std::vector<std::vector<int>> weights(
      4, std::vector<int>(16, 0));
  DenseLayer layer(config, weights);
  std::vector<int> acts(16, 15);
  const auto out = layer.forward(acts);
  for (auto v : out) EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace convolve::cim
