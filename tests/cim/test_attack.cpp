#include "convolve/cim/attack.hpp"

#include <gtest/gtest.h>

#include "convolve/common/bytes.hpp"
#include "convolve/common/capture.hpp"

namespace convolve::cim {
namespace {

MacroConfig noise_free() {
  MacroConfig config;
  config.n_rows = 64;
  config.noise_sigma = 0.0;
  return config;
}

TEST(CimMacro, MacComputesDotProduct) {
  std::vector<int> weights(64);
  for (int i = 0; i < 64; ++i) weights[static_cast<std::size_t>(i)] = i % 16;
  CimMacro macro(noise_free(), weights);
  std::vector<std::uint8_t> inputs(64, 0);
  inputs[3] = 1;
  inputs[10] = 1;
  inputs[63] = 1;
  macro.reset();
  EXPECT_EQ(macro.mac_cycle(inputs), 3 + 10 + 15);
}

TEST(CimMacro, AccumulatesOverCycles) {
  std::vector<int> weights(64, 1);
  CimMacro macro(noise_free(), weights);
  std::vector<std::uint8_t> inputs(64, 1);
  macro.reset();
  macro.mac_cycle(inputs);
  EXPECT_EQ(macro.mac_cycle(inputs), 128);
}

TEST(CimMacro, DummyRowsPreserveArchitecturalResult) {
  MacroConfig config = noise_free();
  config.dummy_rows = 8;
  std::vector<int> weights(64, 2);
  CimMacro macro(config, weights);
  std::vector<std::uint8_t> inputs(64, 1);
  macro.reset();
  EXPECT_EQ(macro.mac_cycle(inputs), 128);
  EXPECT_EQ(macro.mac_cycle(inputs), 256);
}

TEST(CimMacro, ShuffleLeavesResultIntact) {
  MacroConfig config = noise_free();
  config.shuffle_rows = true;
  std::vector<int> weights(64);
  for (int i = 0; i < 64; ++i) weights[static_cast<std::size_t>(i)] = i % 16;
  CimMacro macro(config, weights);
  std::vector<std::uint8_t> inputs(64, 1);
  macro.reset();
  EXPECT_EQ(macro.mac_cycle(inputs), 64 / 16 * (0 + 1 + 2 + 3 + 4 + 5 + 6 +
                                                7 + 8 + 9 + 10 + 11 + 12 +
                                                13 + 14 + 15));
}

TEST(CimMacro, ValidatesConstruction) {
  EXPECT_THROW(CimMacro(noise_free(), std::vector<int>(63, 0)),
               std::invalid_argument);
  EXPECT_THROW(CimMacro(noise_free(), std::vector<int>(64, 16)),
               std::invalid_argument);
  EXPECT_THROW(CimMacro(noise_free(), std::vector<int>(64, -1)),
               std::invalid_argument);
}

TEST(CimMacro, TraceRecordsPowerSamples) {
  CimMacro macro = random_macro(noise_free(), 42);
  std::vector<std::uint8_t> inputs(64, 0);
  macro.reset();
  macro.clear_trace();
  macro.mac_cycle(inputs);
  macro.mac_cycle(inputs);
  EXPECT_EQ(macro.trace().size(), 2u);
}


TEST(CimMacro, MultibitDotProductMatchesReference) {
  std::vector<int> weights(64);
  Xoshiro256 rng(51);
  for (auto& w : weights) w = static_cast<int>(rng.uniform(16));
  CimMacro macro(noise_free(), weights);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> acts(64);
    std::int64_t expected = 0;
    for (int i = 0; i < 64; ++i) {
      acts[static_cast<std::size_t>(i)] = static_cast<int>(rng.uniform(16));
      expected += static_cast<std::int64_t>(
                      weights[static_cast<std::size_t>(i)]) *
                  acts[static_cast<std::size_t>(i)];
    }
    macro.reset();
    EXPECT_EQ(macro.mac_multibit(acts, 4), expected);
  }
}

TEST(CimMacro, MultibitEmitsOneSamplePerBitPlane) {
  CimMacro macro = random_macro(noise_free(), 52);
  std::vector<int> acts(64, 5);
  macro.reset();
  macro.clear_trace();
  macro.mac_multibit(acts, 4);
  EXPECT_EQ(macro.trace().size(), 4u);
}

TEST(CimMacro, MultibitWorksWithDummyRows) {
  MacroConfig config = noise_free();
  config.dummy_rows = 16;
  std::vector<int> weights(64, 3);
  CimMacro macro(config, weights);
  std::vector<int> acts(64, 7);
  macro.reset();
  EXPECT_EQ(macro.mac_multibit(acts, 3), 64ll * 3 * 7);
}

TEST(CimMacro, MultibitValidatesInputs) {
  CimMacro macro = random_macro(noise_free(), 53);
  std::vector<int> acts(64, 0);
  EXPECT_THROW(macro.mac_multibit(std::vector<int>(63, 0), 4),
               std::invalid_argument);
  EXPECT_THROW(macro.mac_multibit(acts, 0), std::invalid_argument);
  acts[0] = 16;
  EXPECT_THROW(macro.mac_multibit(acts, 4), std::invalid_argument);
}

TEST(Phase1, HammingWeightClassesRecoveredNoiseFree) {
  CimMacro macro = random_macro(noise_free(), 7);
  AttackConfig config;
  const auto p1 = run_phase1(macro, config);
  for (int i = 0; i < macro.n_rows(); ++i) {
    const int true_hw = hamming_weight(static_cast<std::uint64_t>(
        macro.secret_weights()[static_cast<std::size_t>(i)]));
    EXPECT_EQ(p1.hw_class[static_cast<std::size_t>(i)], true_hw) << i;
  }
}

TEST(Phase1, KMeansClustersAlignWithHammingWeight) {
  CimMacro macro = random_macro(noise_free(), 8);
  AttackConfig config;
  const auto p1 = run_phase1(macro, config);
  // Noise-free: every member of cluster c must have true HW == c (sorted
  // centroid order). Clusters present depend on the weight distribution.
  for (int i = 0; i < macro.n_rows(); ++i) {
    const int cluster = p1.clustering.assignment[static_cast<std::size_t>(i)];
    const int true_hw = hamming_weight(static_cast<std::uint64_t>(
        macro.secret_weights()[static_cast<std::size_t>(i)]));
    // With all 5 classes present (true for this seed), labels align.
    EXPECT_EQ(cluster, true_hw) << i;
  }
}

TEST(Phase1, HwCandidatesAreCorrect) {
  EXPECT_EQ(hw_candidates(0), (std::vector<int>{0}));
  EXPECT_EQ(hw_candidates(1), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(hw_candidates(2), (std::vector<int>{3, 5, 6, 9, 10, 12}));
  EXPECT_EQ(hw_candidates(3), (std::vector<int>{7, 11, 13, 14}));
  EXPECT_EQ(hw_candidates(4), (std::vector<int>{15}));
}

TEST(Attack, FullRecoveryNoiseFree) {
  // The paper's headline result: in a noise-free environment the attack
  // recovers every weight.
  CimMacro macro = random_macro(noise_free(), 21);
  AttackConfig config;
  auto result = run_attack(macro, config);
  evaluate_against_ground_truth(result, macro.secret_weights());
  EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
  EXPECT_EQ(result.correct, 64);
}

TEST(Attack, FullRecoveryAcrossSeeds) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    CimMacro macro = random_macro(noise_free(), seed);
    AttackConfig config;
    auto result = run_attack(macro, config);
    evaluate_against_ground_truth(result, macro.secret_weights());
    EXPECT_DOUBLE_EQ(result.accuracy, 1.0) << "seed " << seed;
  }
}

TEST(Attack, SurvivesModerateNoiseWithAveraging) {
  MacroConfig config = noise_free();
  config.noise_sigma = 1.0;
  CimMacro macro = random_macro(config, 31);
  AttackConfig attack;
  attack.traces_per_measurement = 200;
  auto result = run_attack(macro, attack);
  evaluate_against_ground_truth(result, macro.secret_weights());
  EXPECT_GT(result.accuracy, 0.9);
}

TEST(Attack, DegradesUnderHeavyNoiseWithoutAveraging) {
  MacroConfig config = noise_free();
  config.noise_sigma = 6.0;
  CimMacro macro = random_macro(config, 33);
  AttackConfig attack;
  attack.traces_per_measurement = 1;
  auto result = run_attack(macro, attack);
  evaluate_against_ground_truth(result, macro.secret_weights());
  EXPECT_LT(result.accuracy, 0.9);
}

TEST(Attack, ShufflingCountermeasureBreaksPhase2) {
  MacroConfig config = noise_free();
  config.shuffle_rows = true;
  CimMacro macro = random_macro(config, 35);
  AttackConfig attack;
  attack.traces_per_measurement = 4;
  auto result = run_attack(macro, attack);
  evaluate_against_ground_truth(result, macro.secret_weights());
  // Phase 1 (one-hot, position-independent) still classifies HW, so the
  // extreme classes (0 and 15) remain recoverable, but interior classes
  // are protected; overall accuracy collapses well below full recovery.
  EXPECT_LT(result.accuracy, 0.75);
}

TEST(Attack, DummyRowCountermeasureDegradesAccuracy) {
  MacroConfig config = noise_free();
  config.dummy_rows = 32;
  CimMacro macro = random_macro(config, 37);
  AttackConfig attack;
  attack.traces_per_measurement = 1;
  auto result = run_attack(macro, attack);
  evaluate_against_ground_truth(result, macro.secret_weights());
  EXPECT_LT(result.accuracy, 0.9);
}

TEST(Attack, SharedCapturePathMatchesNaiveAveraging) {
  // The attack's measure_on now routes through capture::mean_of; this
  // differential test pins the refactor to the original accumulation
  // contract -- same fork stream, repetition-ordered sum, then divide --
  // on a noisy, countermeasure-enabled macro where the rng draw order
  // actually shows in the result.
  MacroConfig config;
  config.n_rows = 64;
  config.noise_sigma = 0.3;
  config.shuffle_rows = true;
  for (std::uint64_t seed : {3u, 17u, 99u}) {
    const CimMacro parent = random_macro(config, seed);
    std::vector<std::uint8_t> inputs(64, 0);
    inputs[5] = 1;
    inputs[40] = 1;
    constexpr int kTraces = 16;

    CimMacro naive_macro = parent.fork(12);
    double sum = 0.0;
    for (int t = 0; t < kTraces; ++t) {
      naive_macro.reset();
      naive_macro.clear_trace();
      naive_macro.mac_cycle(inputs);
      sum += naive_macro.trace().back();
    }
    const double naive = sum / kTraces;

    CimMacro shared_macro = parent.fork(12);
    const double shared = capture::mean_of(kTraces, [&](int) {
      shared_macro.reset();
      shared_macro.clear_trace();
      shared_macro.mac_cycle(inputs);
      return shared_macro.trace().back();
    });
    EXPECT_DOUBLE_EQ(shared, naive) << "seed=" << seed;
  }
}

TEST(Attack, MeasurementBudgetIsCounted) {
  CimMacro macro = random_macro(noise_free(), 41);
  AttackConfig config;
  const auto result = run_attack(macro, config);
  EXPECT_GT(result.measurements, 64);      // at least one per weight
  EXPECT_LT(result.measurements, 64 * 50);  // far from brute force
}

}  // namespace
}  // namespace convolve::cim
