#include "convolve/crypto/aes.hpp"

#include <gtest/gtest.h>

namespace convolve::crypto {
namespace {

// FIPS 197 Appendix C vectors.
TEST(Aes, Fips197Aes128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Aes aes(Aes::KeySize::k128, key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes256) {
  const Bytes key =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Aes aes(Aes::KeySize::k256, key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), "8ea2b7ca516745bfeafc49904b496089");
}

// NIST SP 800-38A AES-256 ECB vector.
TEST(Aes, Sp80038aAes256Ecb) {
  const Bytes key = from_hex(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Aes aes(Aes::KeySize::k256, key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), "f3eed1bdb5d2a03c064b5a7e3db181f8");
}

TEST(Aes, DecryptInvertsEncrypt128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Aes aes(Aes::KeySize::k128, key);
  for (int trial = 0; trial < 32; ++trial) {
    std::uint8_t pt[16], ct[16], back[16];
    for (int i = 0; i < 16; ++i) {
      pt[i] = static_cast<std::uint8_t>(trial * 16 + i);
    }
    aes.encrypt_block(pt, ct);
    aes.decrypt_block(ct, back);
    EXPECT_EQ(Bytes(pt, pt + 16), Bytes(back, back + 16));
  }
}

TEST(Aes, DecryptInvertsEncrypt256) {
  const Bytes key(32, 0x5c);
  const Aes aes(Aes::KeySize::k256, key);
  std::uint8_t pt[16] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6};
  std::uint8_t ct[16], back[16];
  aes.encrypt_block(pt, ct);
  aes.decrypt_block(ct, back);
  EXPECT_EQ(Bytes(pt, pt + 16), Bytes(back, back + 16));
}

TEST(Aes, RejectsWrongKeyLength) {
  EXPECT_THROW(Aes(Aes::KeySize::k128, Bytes(32, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Aes::KeySize::k256, Bytes(16, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Aes::KeySize::k256, Bytes(31, 0)), std::invalid_argument);
}

TEST(Aes, RoundCounts) {
  EXPECT_EQ(Aes(Aes::KeySize::k128, Bytes(16, 0)).rounds(), 10);
  EXPECT_EQ(Aes(Aes::KeySize::k256, Bytes(32, 0)).rounds(), 14);
}

TEST(AesCtr, RoundTrip) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  const auto view = as_bytes("The quick brown fox jumps over the lazy dog");
  const Bytes pt(view.begin(), view.end());
  const Bytes ct = aes256_ctr(key, nonce, 0, pt);
  EXPECT_NE(ct, pt);
  EXPECT_EQ(aes256_ctr(key, nonce, 0, ct), pt);
}

TEST(AesCtr, CounterOffsetsKeystream) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  const Bytes zeros(32, 0);
  const Bytes ks0 = aes256_ctr(key, nonce, 0, zeros);
  const Bytes ks1 = aes256_ctr(key, nonce, 1, zeros);
  // Block 1 of ks0 equals block 0 of ks1.
  EXPECT_EQ(Bytes(ks0.begin() + 16, ks0.end()),
            Bytes(ks1.begin(), ks1.begin() + 16));
}

TEST(AesCtr, RejectsBadNonce) {
  EXPECT_THROW(aes256_ctr(Bytes(32, 0), Bytes(11, 0), 0, Bytes(4, 0)),
               std::invalid_argument);
}

TEST(AesCtr, NonBlockAlignedLength) {
  const Bytes key(32, 0x33);
  const Bytes nonce(12, 0x44);
  const Bytes pt(23, 0xab);
  EXPECT_EQ(aes256_ctr(key, nonce, 0, aes256_ctr(key, nonce, 0, pt)), pt);
}

}  // namespace
}  // namespace convolve::crypto
