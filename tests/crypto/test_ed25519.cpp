#include "convolve/crypto/ed25519.hpp"

#include <gtest/gtest.h>

namespace convolve::crypto {
namespace {

Bytes arr_to_bytes(ByteView v) { return Bytes(v.begin(), v.end()); }

// RFC 8032 section 7.1, TEST 1 (empty message).
TEST(Ed25519, Rfc8032Test1) {
  const Bytes seed = from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto kp = ed25519_keypair(seed);
  EXPECT_EQ(to_hex({kp.public_key.data(), 32}),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  const auto sig = ed25519_sign(kp, {});
  EXPECT_EQ(to_hex({sig.data(), 64}),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(ed25519_verify({kp.public_key.data(), 32}, {}, {sig.data(), 64}));
}

// RFC 8032 TEST 2 (one-byte message 0x72).
TEST(Ed25519, Rfc8032Test2) {
  const Bytes seed = from_hex(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto kp = ed25519_keypair(seed);
  EXPECT_EQ(to_hex({kp.public_key.data(), 32}),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  const Bytes msg = {0x72};
  const auto sig = ed25519_sign(kp, msg);
  EXPECT_EQ(to_hex({sig.data(), 64}),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
}

// RFC 8032 TEST 3 (two-byte message af82).
TEST(Ed25519, Rfc8032Test3) {
  const Bytes seed = from_hex(
      "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
  const auto kp = ed25519_keypair(seed);
  EXPECT_EQ(to_hex({kp.public_key.data(), 32}),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025");
  const Bytes msg = from_hex("af82");
  const auto sig = ed25519_sign(kp, msg);
  EXPECT_EQ(to_hex({sig.data(), 64}),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a");
  EXPECT_TRUE(
      ed25519_verify({kp.public_key.data(), 32}, msg, {sig.data(), 64}));
}

TEST(Ed25519, TamperedMessageRejected) {
  const Bytes seed(32, 0x42);
  const auto kp = ed25519_keypair(seed);
  const auto msg_view = as_bytes("attestation report");
  const Bytes msg(msg_view.begin(), msg_view.end());
  const auto sig = ed25519_sign(kp, msg);
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(
      ed25519_verify({kp.public_key.data(), 32}, tampered, {sig.data(), 64}));
}

TEST(Ed25519, TamperedSignatureRejected) {
  const Bytes seed(32, 0x43);
  const auto kp = ed25519_keypair(seed);
  const Bytes msg = {1, 2, 3};
  auto sig = ed25519_sign(kp, msg);
  sig[10] ^= 0x20;
  EXPECT_FALSE(
      ed25519_verify({kp.public_key.data(), 32}, msg, {sig.data(), 64}));
}

TEST(Ed25519, WrongKeyRejected) {
  const auto kp1 = ed25519_keypair(Bytes(32, 1));
  const auto kp2 = ed25519_keypair(Bytes(32, 2));
  const Bytes msg = {9};
  const auto sig = ed25519_sign(kp1, msg);
  EXPECT_FALSE(
      ed25519_verify({kp2.public_key.data(), 32}, msg, {sig.data(), 64}));
}

TEST(Ed25519, MalformedInputsRejected) {
  const auto kp = ed25519_keypair(Bytes(32, 3));
  const Bytes msg = {1};
  const auto sig = ed25519_sign(kp, msg);
  EXPECT_FALSE(ed25519_verify(Bytes(31, 0), msg, {sig.data(), 64}));
  EXPECT_FALSE(ed25519_verify({kp.public_key.data(), 32}, msg, Bytes(63, 0)));
  // Non-canonical S (>= L): set high bits of S.
  auto bad = sig;
  for (int i = 32; i < 64; ++i) bad[i] = 0xff;
  EXPECT_FALSE(
      ed25519_verify({kp.public_key.data(), 32}, msg, {bad.data(), 64}));
}

TEST(Ed25519, SignatureIsDeterministic) {
  const auto kp = ed25519_keypair(Bytes(32, 7));
  const Bytes msg = {5, 5, 5};
  EXPECT_EQ(arr_to_bytes({ed25519_sign(kp, msg).data(), 64}),
            arr_to_bytes({ed25519_sign(kp, msg).data(), 64}));
}

TEST(Ed25519, RejectsBadSeedLength) {
  EXPECT_THROW(ed25519_keypair(Bytes(16, 0)), std::invalid_argument);
}

TEST(Ed25519, ManySeedsRoundTrip) {
  for (int i = 0; i < 8; ++i) {
    Bytes seed(32, 0);
    seed[0] = static_cast<std::uint8_t>(i * 37 + 1);
    seed[31] = static_cast<std::uint8_t>(i);
    const auto kp = ed25519_keypair(seed);
    Bytes msg(i + 1, static_cast<std::uint8_t>(i));
    const auto sig = ed25519_sign(kp, msg);
    EXPECT_TRUE(
        ed25519_verify({kp.public_key.data(), 32}, msg, {sig.data(), 64}))
        << "seed " << i;
  }
}

}  // namespace
}  // namespace convolve::crypto
