#include "convolve/crypto/keccak.hpp"

#include <gtest/gtest.h>

namespace convolve::crypto {
namespace {

// Vectors cross-checked against Python hashlib (which wraps OpenSSL).
TEST(Sha3, EmptyInput) {
  EXPECT_EQ(to_hex(sha3_256({})),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

TEST(Sha3, Abc256) {
  EXPECT_EQ(to_hex(sha3_256(as_bytes("abc"))),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
}

TEST(Sha3, Abc512) {
  EXPECT_EQ(to_hex(sha3_512(as_bytes("abc"))),
            "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e"
            "10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0");
}

TEST(Shake, Shake128Empty) {
  EXPECT_EQ(to_hex(shake128({}, 32)),
            "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26");
}

TEST(Shake, Shake256Abc) {
  EXPECT_EQ(to_hex(shake256(as_bytes("abc"), 64)),
            "483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739"
            "d5a15bef186a5386c75744c0527e1faa9f8726e462a12a4feb06bd8801e751e4");
}

TEST(Shake, IncrementalAbsorbMatchesOneShot) {
  Shake a(Shake::Variant::k256);
  a.absorb(as_bytes("ab"));
  a.absorb(as_bytes("c"));
  EXPECT_EQ(a.squeeze(64), shake256(as_bytes("abc"), 64));
}

TEST(Shake, IncrementalSqueezeMatchesOneShot) {
  Shake a(Shake::Variant::k256);
  a.absorb(as_bytes("abc"));
  const Bytes first = a.squeeze(10);
  const Bytes rest = a.squeeze(54);
  const Bytes full = shake256(as_bytes("abc"), 64);
  EXPECT_EQ(Bytes(full.begin(), full.begin() + 10), first);
  EXPECT_EQ(Bytes(full.begin() + 10, full.end()), rest);
}

TEST(Shake, LongOutputSpansMultipleBlocks) {
  // 500 bytes > SHAKE256 rate (136); exercises re-permutation in squeeze.
  const Bytes long_out = shake256(as_bytes("x"), 500);
  const Bytes prefix = shake256(as_bytes("x"), 100);
  EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 100), prefix);
}

TEST(Sha3, LongInputSpansMultipleBlocks) {
  // 1000 bytes > SHA3-256 rate (136); consistency under chunked absorbs.
  Bytes data(1000, 0x5a);
  KeccakSponge a(136, 0x06), b(136, 0x06);
  a.absorb(data);
  for (std::size_t i = 0; i < data.size(); i += 7) {
    b.absorb({data.data() + i, std::min<std::size_t>(7, data.size() - i)});
  }
  Bytes da(32), db(32);
  a.squeeze(da);
  b.squeeze(db);
  EXPECT_EQ(da, db);
  EXPECT_EQ(da, sha3_256(data));
}

TEST(Sha3, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha3_256(as_bytes("abc")), sha3_256(as_bytes("abd")));
}

TEST(KeccakSponge, RejectsInvalidRate) {
  EXPECT_THROW(KeccakSponge(0, 0x06), std::invalid_argument);
  EXPECT_THROW(KeccakSponge(137, 0x06), std::invalid_argument);
  EXPECT_THROW(KeccakSponge(200, 0x06), std::invalid_argument);
}

TEST(KeccakSponge, AbsorbAfterSqueezeThrows) {
  KeccakSponge s(136, 0x1f);
  s.absorb(as_bytes("abc"));
  Bytes out(16);
  s.squeeze(out);
  EXPECT_THROW(s.absorb(as_bytes("more")), std::logic_error);
}

TEST(KeccakPermutation, ChangesState) {
  std::array<std::uint64_t, 25> st{};
  keccak_f1600(st);
  // Permutation of the zero state is a well-defined nonzero constant.
  EXPECT_NE(st[0], 0u);
  std::array<std::uint64_t, 25> st2{};
  keccak_f1600(st2);
  EXPECT_EQ(st, st2);
}

}  // namespace
}  // namespace convolve::crypto
