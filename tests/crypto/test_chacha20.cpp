#include "convolve/crypto/chacha20.hpp"

#include <gtest/gtest.h>

namespace convolve::crypto {
namespace {

// RFC 8439 section 2.3.2: key 00..1f, nonce 000000090000004a00000000, ctr 1.
TEST(ChaCha20, Rfc8439BlockFunction) {
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const Bytes nonce = from_hex("000000090000004a00000000");
  const auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(to_hex({block.data(), block.size()}),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 section 2.4.2: the "sunscreen" message.
TEST(ChaCha20, Rfc8439Encryption) {
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const Bytes nonce = from_hex("000000000000004a00000000");
  const auto pt_view = as_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes pt(pt_view.begin(), pt_view.end());
  const Bytes ct = chacha20_xor(key, nonce, 1, pt);
  EXPECT_EQ(to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, XorRoundTrip) {
  const Bytes key(32, 0x42);
  const Bytes nonce(12, 0x24);
  const Bytes pt(300, 0x7f);
  EXPECT_EQ(chacha20_xor(key, nonce, 5, chacha20_xor(key, nonce, 5, pt)), pt);
}

TEST(ChaCha20, DistinctNoncesDistinctStreams) {
  const Bytes key(32, 1);
  Bytes n1(12, 0), n2(12, 0);
  n2[0] = 1;
  const Bytes zeros(64, 0);
  EXPECT_NE(chacha20_xor(key, n1, 0, zeros), chacha20_xor(key, n2, 0, zeros));
}

TEST(ChaCha20, CounterContinuity) {
  const Bytes key(32, 9);
  const Bytes nonce(12, 3);
  const Bytes zeros(128, 0);
  const Bytes both = chacha20_xor(key, nonce, 0, zeros);
  const Bytes second = chacha20_xor(key, nonce, 1, Bytes(64, 0));
  EXPECT_EQ(Bytes(both.begin() + 64, both.end()), second);
}

TEST(ChaCha20, RejectsBadKeyOrNonce) {
  EXPECT_THROW(chacha20_block(Bytes(31, 0), Bytes(12, 0), 0),
               std::invalid_argument);
  EXPECT_THROW(chacha20_block(Bytes(32, 0), Bytes(8, 0), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace convolve::crypto
