#include "convolve/crypto/aead.hpp"

#include <gtest/gtest.h>

namespace convolve::crypto {
namespace {

Bytes key32() { return Bytes(32, 0x77); }
Bytes nonce12() { return Bytes(12, 0x01); }

TEST(Aead, SealOpenRoundTrip) {
  const auto pt_view = as_bytes("model weights v1.3");
  const Bytes pt(pt_view.begin(), pt_view.end());
  const auto box = aead_seal(key32(), nonce12(), pt, as_bytes("enclave-A"));
  const auto opened = aead_open(key32(), box, as_bytes("enclave-A"));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(Aead, WrongKeyFails) {
  const auto box = aead_seal(key32(), nonce12(), Bytes(10, 1), {});
  Bytes other(32, 0x78);
  EXPECT_FALSE(aead_open(other, box, {}).has_value());
}

TEST(Aead, WrongAadFails) {
  const auto box = aead_seal(key32(), nonce12(), Bytes(10, 1), as_bytes("a"));
  EXPECT_FALSE(aead_open(key32(), box, as_bytes("b")).has_value());
}

TEST(Aead, TamperedCiphertextFails) {
  auto box = aead_seal(key32(), nonce12(), Bytes(10, 1), {});
  box.ciphertext[3] ^= 0x01;
  EXPECT_FALSE(aead_open(key32(), box, {}).has_value());
}

TEST(Aead, TamperedTagFails) {
  auto box = aead_seal(key32(), nonce12(), Bytes(10, 1), {});
  box.tag[0] ^= 0x80;
  EXPECT_FALSE(aead_open(key32(), box, {}).has_value());
}

TEST(Aead, TamperedNonceFails) {
  auto box = aead_seal(key32(), nonce12(), Bytes(10, 1), {});
  box.nonce[0] ^= 0x01;
  EXPECT_FALSE(aead_open(key32(), box, {}).has_value());
}

TEST(Aead, EmptyPlaintextAllowed) {
  const auto box = aead_seal(key32(), nonce12(), {}, as_bytes("meta"));
  const auto opened = aead_open(key32(), box, as_bytes("meta"));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Aead, SerializeRoundTrip) {
  const Bytes pt(33, 0xcd);
  const auto box = aead_seal(key32(), nonce12(), pt, as_bytes("ctx"));
  const Bytes flat = aead_serialize(box);
  const auto parsed = aead_deserialize(flat);
  ASSERT_TRUE(parsed.has_value());
  const auto opened = aead_open(key32(), *parsed, as_bytes("ctx"));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(Aead, DeserializeRejectsShortInput) {
  EXPECT_FALSE(aead_deserialize(Bytes(43, 0)).has_value());
}

TEST(Aead, RejectsBadKeyOrNonceSizes) {
  EXPECT_THROW(aead_seal(Bytes(16, 0), nonce12(), Bytes(1, 0), {}),
               std::invalid_argument);
  EXPECT_THROW(aead_seal(key32(), Bytes(8, 0), Bytes(1, 0), {}),
               std::invalid_argument);
}

TEST(Aead, AadLengthConfusionResistant) {
  // Moving a byte between AAD and ciphertext boundary must not verify.
  const Bytes pt = {1, 2, 3, 4};
  const auto box = aead_seal(key32(), nonce12(), pt, as_bytes("AB"));
  EXPECT_FALSE(aead_open(key32(), box, as_bytes("A")).has_value());
  EXPECT_FALSE(aead_open(key32(), box, as_bytes("ABC")).has_value());
}

}  // namespace
}  // namespace convolve::crypto
