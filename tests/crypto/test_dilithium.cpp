#include "convolve/crypto/dilithium.hpp"

#include <gtest/gtest.h>

#include "convolve/common/rng.hpp"

namespace convolve::crypto::dilithium {
namespace {

TEST(Dilithium, ObjectSizesMatchMlDsa44) {
  // These sizes drive the attestation-report delta in the paper's Table III.
  EXPECT_EQ(kPkBytes, 1312u);
  EXPECT_EQ(kSkBytes, 2560u);
  EXPECT_EQ(kSigBytes, 2420u);
  const auto kp = keygen(Bytes(32, 1));
  EXPECT_EQ(kp.pk.size(), kPkBytes);
  EXPECT_EQ(kp.sk.size(), kSkBytes);
  const Bytes sig = sign(kp.sk, as_bytes("m"));
  EXPECT_EQ(sig.size(), kSigBytes);
}

TEST(Dilithium, SignVerifyRoundTrip) {
  const auto kp = keygen(Bytes(32, 2));
  const auto msg = as_bytes("enclave measurement report");
  const Bytes sig = sign(kp.sk, msg);
  EXPECT_TRUE(verify(kp.pk, msg, sig));
}

TEST(Dilithium, DeterministicSignature) {
  const auto kp = keygen(Bytes(32, 3));
  EXPECT_EQ(sign(kp.sk, as_bytes("x")), sign(kp.sk, as_bytes("x")));
}

TEST(Dilithium, KeygenDeterministic) {
  EXPECT_EQ(keygen(Bytes(32, 4)).pk, keygen(Bytes(32, 4)).pk);
  EXPECT_NE(keygen(Bytes(32, 4)).pk, keygen(Bytes(32, 5)).pk);
}

TEST(Dilithium, TamperedMessageRejected) {
  const auto kp = keygen(Bytes(32, 6));
  const Bytes sig = sign(kp.sk, as_bytes("abc"));
  EXPECT_FALSE(verify(kp.pk, as_bytes("abd"), sig));
}

TEST(Dilithium, TamperedSignatureRejected) {
  const auto kp = keygen(Bytes(32, 7));
  Bytes sig = sign(kp.sk, as_bytes("abc"));
  for (std::size_t pos : {0u, 40u, 1000u, 2400u}) {
    Bytes bad = sig;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(verify(kp.pk, as_bytes("abc"), bad)) << "pos " << pos;
  }
}

TEST(Dilithium, WrongKeyRejected) {
  const auto kp1 = keygen(Bytes(32, 8));
  const auto kp2 = keygen(Bytes(32, 9));
  const Bytes sig = sign(kp1.sk, as_bytes("abc"));
  EXPECT_FALSE(verify(kp2.pk, as_bytes("abc"), sig));
}

TEST(Dilithium, MalformedInputsRejected) {
  const auto kp = keygen(Bytes(32, 10));
  const Bytes sig = sign(kp.sk, as_bytes("m"));
  EXPECT_FALSE(verify(Bytes(100, 0), as_bytes("m"), sig));
  EXPECT_FALSE(verify(kp.pk, as_bytes("m"), Bytes(100, 0)));
  // Corrupt hint encoding: non-monotone positions.
  Bytes bad = sig;
  const std::size_t hint_off = 32 + 576 * kL;
  bad[hint_off + kOmega] = kOmega;  // claim many hints in poly 0
  EXPECT_FALSE(verify(kp.pk, as_bytes("m"), bad));
}

TEST(Dilithium, RandomSeedsRoundTrip) {
  Xoshiro256 rng(4242);
  for (int i = 0; i < 5; ++i) {
    Bytes seed(32);
    rng.fill_bytes(seed);
    const auto kp = keygen(seed);
    Bytes msg(50 + i * 13);
    rng.fill_bytes(msg);
    const Bytes sig = sign(kp.sk, msg);
    EXPECT_TRUE(verify(kp.pk, msg, sig)) << "iteration " << i;
  }
}

TEST(Dilithium, EmptyMessageSupported) {
  const auto kp = keygen(Bytes(32, 11));
  const Bytes sig = sign(kp.sk, {});
  EXPECT_TRUE(verify(kp.pk, {}, sig));
  EXPECT_FALSE(verify(kp.pk, as_bytes("x"), sig));
}

TEST(Dilithium, RejectsBadSeed) {
  EXPECT_THROW(keygen(Bytes(31, 0)), std::invalid_argument);
  EXPECT_THROW(sign(Bytes(100, 0), as_bytes("m")), std::invalid_argument);
}

}  // namespace
}  // namespace convolve::crypto::dilithium
