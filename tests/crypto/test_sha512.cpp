#include "convolve/crypto/sha512.hpp"

#include <gtest/gtest.h>

namespace convolve::crypto {
namespace {

TEST(Sha512, Empty) {
  EXPECT_EQ(to_hex(sha512({})),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(to_hex(sha512(as_bytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  Sha512 h;
  h.update(as_bytes("a"));
  h.update(as_bytes("b"));
  h.update(as_bytes("c"));
  const auto d = h.digest();
  EXPECT_EQ(Bytes(d.begin(), d.end()), sha512(as_bytes("abc")));
}

TEST(Sha512, ExactBlockBoundary) {
  // 128-byte message: padding requires a full extra block.
  const Bytes msg(128, 0x61);
  Sha512 whole;
  whole.update(msg);
  Sha512 split;
  split.update({msg.data(), 64});
  split.update({msg.data() + 64, 64});
  EXPECT_EQ(whole.digest(), split.digest());
}

TEST(Sha512, MessageJustUnderPadBoundary) {
  // 111 and 112 bytes straddle the single-vs-double padding block case.
  const Bytes m111(111, 0x42);
  const Bytes m112(112, 0x42);
  EXPECT_NE(sha512(m111), sha512(m112));
  // Determinism.
  EXPECT_EQ(sha512(m111), sha512(m111));
}

TEST(Sha512, LargeInput) {
  Bytes big(100000, 0x7e);
  Sha512 h;
  for (std::size_t i = 0; i < big.size(); i += 999) {
    h.update({big.data() + i, std::min<std::size_t>(999, big.size() - i)});
  }
  const auto d1 = h.digest();
  EXPECT_EQ(Bytes(d1.begin(), d1.end()), sha512(big));
}

}  // namespace
}  // namespace convolve::crypto
