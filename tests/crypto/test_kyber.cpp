#include "convolve/crypto/kyber.hpp"

#include <gtest/gtest.h>

#include "convolve/common/rng.hpp"

namespace convolve::crypto::kyber {
namespace {

Bytes seed64(std::uint8_t fill) { return Bytes(64, fill); }

TEST(Kyber, ObjectSizesMatchMlKem512) {
  const auto kp = keygen(seed64(1));
  EXPECT_EQ(kp.ek.size(), 800u);
  EXPECT_EQ(kp.dk.size(), 1632u);
  const auto enc = encaps(kp.ek, Bytes(32, 2));
  EXPECT_EQ(enc.ciphertext.size(), 768u);
}

TEST(Kyber, EncapsDecapsAgree) {
  const auto kp = keygen(seed64(3));
  const auto enc = encaps(kp.ek, Bytes(32, 4));
  const auto ss = decaps(kp.dk, enc.ciphertext);
  EXPECT_EQ(Bytes(ss.begin(), ss.end()),
            Bytes(enc.shared_secret.begin(), enc.shared_secret.end()));
}

TEST(Kyber, ManyRandomSeedsAgree) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10; ++i) {
    Bytes seed(64), m(32);
    rng.fill_bytes(seed);
    rng.fill_bytes(m);
    const auto kp = keygen(seed);
    const auto enc = encaps(kp.ek, m);
    const auto ss = decaps(kp.dk, enc.ciphertext);
    EXPECT_TRUE(ct_equal({ss.data(), ss.size()},
                         {enc.shared_secret.data(), enc.shared_secret.size()}))
        << "iteration " << i;
  }
}

TEST(Kyber, KeygenDeterministic) {
  const auto a = keygen(seed64(7));
  const auto b = keygen(seed64(7));
  EXPECT_EQ(a.ek, b.ek);
  EXPECT_EQ(a.dk, b.dk);
}

TEST(Kyber, DifferentSeedsDifferentKeys) {
  EXPECT_NE(keygen(seed64(1)).ek, keygen(seed64(2)).ek);
}

TEST(Kyber, TamperedCiphertextImplicitlyRejected) {
  const auto kp = keygen(seed64(5));
  const auto enc = encaps(kp.ek, Bytes(32, 6));
  Bytes bad = enc.ciphertext;
  bad[100] ^= 0x01;
  const auto ss = decaps(kp.dk, bad);
  // Implicit rejection: a secret IS returned, but it differs.
  EXPECT_FALSE(ct_equal({ss.data(), ss.size()},
                        {enc.shared_secret.data(), enc.shared_secret.size()}));
}

TEST(Kyber, WrongKeyYieldsDifferentSecret) {
  const auto kp1 = keygen(seed64(8));
  const auto kp2 = keygen(seed64(9));
  const auto enc = encaps(kp1.ek, Bytes(32, 10));
  const auto ss = decaps(kp2.dk, enc.ciphertext);
  EXPECT_FALSE(ct_equal({ss.data(), ss.size()},
                        {enc.shared_secret.data(), enc.shared_secret.size()}));
}

TEST(Kyber, PkeRoundTrip) {
  const auto kp = pke_keygen(Bytes(32, 11));
  const Bytes msg(32, 0xa5);
  const Bytes ct = pke_encrypt(kp.pk, msg, Bytes(32, 12));
  EXPECT_EQ(pke_decrypt(kp.sk, ct), msg);
}

TEST(Kyber, PkeRandomMessagesRoundTrip) {
  Xoshiro256 rng(123);
  const auto kp = pke_keygen(Bytes(32, 13));
  for (int i = 0; i < 10; ++i) {
    Bytes msg(32), coins(32);
    rng.fill_bytes(msg);
    rng.fill_bytes(coins);
    EXPECT_EQ(pke_decrypt(kp.sk, pke_encrypt(kp.pk, msg, coins)), msg);
  }
}

TEST(Kyber, CiphertextDependsOnCoins) {
  const auto kp = pke_keygen(Bytes(32, 14));
  const Bytes msg(32, 1);
  EXPECT_NE(pke_encrypt(kp.pk, msg, Bytes(32, 1)),
            pke_encrypt(kp.pk, msg, Bytes(32, 2)));
}

TEST(Kyber, InputValidation) {
  EXPECT_THROW(keygen(Bytes(63, 0)), std::invalid_argument);
  const auto kp = keygen(seed64(15));
  EXPECT_THROW(encaps(Bytes(10, 0), Bytes(32, 0)), std::invalid_argument);
  EXPECT_THROW(encaps(kp.ek, Bytes(31, 0)), std::invalid_argument);
  EXPECT_THROW(decaps(kp.dk, Bytes(767, 0)), std::invalid_argument);
  EXPECT_THROW(decaps(Bytes(10, 0), Bytes(768, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace convolve::crypto::kyber
