#include "convolve/crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "convolve/crypto/sha512.hpp"

namespace convolve::crypto {
namespace {

// RFC 4231 test case 1 (HMAC-SHA-512).
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha512(key, as_bytes("Hi There"))),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde"
            "daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854");
}

// RFC 4231 test case 2: key shorter than block, text "what do ya want...".
TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      to_hex(hmac_sha512(as_bytes("Jefe"),
                         as_bytes("what do ya want for nothing?"))),
      "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554"
      "9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737");
}

// Keys longer than the block size must be hashed first.
TEST(Hmac, LongKeyMatchesHashedKey) {
  const Bytes long_key(200, 0xaa);
  const auto hashed = Sha512::hash(long_key);
  EXPECT_EQ(hmac_sha512(long_key, as_bytes("msg")),
            hmac_sha512({hashed.data(), hashed.size()}, as_bytes("msg")));
}

TEST(Hmac, DifferentKeysDiffer) {
  EXPECT_NE(hmac_sha512(as_bytes("k1"), as_bytes("m")),
            hmac_sha512(as_bytes("k2"), as_bytes("m")));
}

TEST(Hkdf, DeterministicAndLengthExact) {
  const Bytes out1 = hkdf(as_bytes("salt"), as_bytes("ikm"), as_bytes("info"), 42);
  const Bytes out2 = hkdf(as_bytes("salt"), as_bytes("ikm"), as_bytes("info"), 42);
  EXPECT_EQ(out1.size(), 42u);
  EXPECT_EQ(out1, out2);
}

TEST(Hkdf, LongOutputIsPrefixConsistent) {
  const Bytes long_out =
      hkdf(as_bytes("s"), as_bytes("i"), as_bytes("x"), 200);
  const Bytes short_out =
      hkdf(as_bytes("s"), as_bytes("i"), as_bytes("x"), 64);
  EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 64), short_out);
}

TEST(Hkdf, InfoSeparatesOutputs) {
  EXPECT_NE(hkdf(as_bytes("s"), as_bytes("i"), as_bytes("a"), 32),
            hkdf(as_bytes("s"), as_bytes("i"), as_bytes("b"), 32));
}

TEST(Hkdf, SaltSeparatesOutputs) {
  EXPECT_NE(hkdf(as_bytes("s1"), as_bytes("i"), as_bytes("a"), 32),
            hkdf(as_bytes("s2"), as_bytes("i"), as_bytes("a"), 32));
}

TEST(Hkdf, RejectsOversizeOutput) {
  EXPECT_THROW(hkdf_expand(Bytes(64, 1), as_bytes("x"), 255 * 64 + 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace convolve::crypto
