// Golden regression vectors for the lattice schemes.
//
// Kyber and Dilithium here are self-consistent rather than KAT-validated
// (see DESIGN.md); these pinned digests of deterministic outputs protect
// against *silent* algorithm drift: any change to the NTT, samplers,
// packing or transforms changes these values and must be a conscious
// decision.
#include <gtest/gtest.h>

#include "convolve/crypto/dilithium.hpp"
#include "convolve/crypto/keccak.hpp"
#include "convolve/crypto/kyber.hpp"

namespace convolve::crypto {
namespace {

TEST(Golden, KyberKeygenEncaps) {
  const auto kp = kyber::keygen(Bytes(64, 0x31));
  EXPECT_EQ(to_hex(sha3_256(kp.ek)),
            "f9e4bbe6d3d4705ad12d055d8354b0b267a1d6e5b4b54991bee7ee767d2f8fee");
  const auto enc = kyber::encaps(kp.ek, Bytes(32, 0x32));
  EXPECT_EQ(to_hex(sha3_256(enc.ciphertext)),
            "54f939a38a323586afc2f23959eeaa2d64a510cef4312b7a254743ff55bb09a4");
  EXPECT_EQ(to_hex({enc.shared_secret.data(), 32}),
            "319222e8a2aac79c8296135025ec789514f8cb5c0ef2120689511bed283f7318");
}

TEST(Golden, DilithiumKeygenSign) {
  const auto kp = dilithium::keygen(Bytes(32, 0x33));
  EXPECT_EQ(to_hex(sha3_256(kp.pk)),
            "64905e653edf16a54bddc2cba954c7d8c0ef61bffde277eaf3b7e7ba8c51c328");
  const Bytes sig = dilithium::sign(kp.sk, as_bytes("golden"));
  EXPECT_EQ(to_hex(sha3_256(sig)),
            "6b232df6750e13a595e2cbba2878b2a29f61445097d475c1b0c00e93ac2623e0");
}

}  // namespace
}  // namespace convolve::crypto
