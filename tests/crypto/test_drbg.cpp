#include "convolve/crypto/drbg.hpp"

#include <gtest/gtest.h>

#include <array>

namespace convolve::crypto {
namespace {

TEST(Drbg, DeterministicForSameSeed) {
  ShakeDrbg a(Bytes(32, 1));
  ShakeDrbg b(Bytes(32, 1));
  EXPECT_EQ(a.generate(100), b.generate(100));
}

TEST(Drbg, PersonalizationSeparatesStreams) {
  ShakeDrbg a(Bytes(32, 1), as_bytes("masking"));
  ShakeDrbg b(Bytes(32, 1), as_bytes("sealing"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, SequentialOutputsDiffer) {
  ShakeDrbg d(Bytes(32, 2));
  const Bytes first = d.generate(32);
  const Bytes second = d.generate(32);
  EXPECT_NE(first, second);
}

TEST(Drbg, SplitGenerationMatchesStreamPrefix) {
  // Two generate(16) calls are NOT required to equal one generate(32)
  // (each call ratchets), but determinism must hold call-for-call.
  ShakeDrbg a(Bytes(32, 3));
  ShakeDrbg b(Bytes(32, 3));
  const Bytes a1 = a.generate(16);
  const Bytes a2 = a.generate(16);
  EXPECT_EQ(a1, b.generate(16));
  EXPECT_EQ(a2, b.generate(16));
}

TEST(Drbg, ReseedChangesFuture) {
  ShakeDrbg a(Bytes(32, 4));
  ShakeDrbg b(Bytes(32, 4));
  b.reseed(as_bytes("fresh entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, CountsOutput) {
  ShakeDrbg d(Bytes(32, 5));
  d.generate(10);
  d.generate(22);
  EXPECT_EQ(d.bytes_generated(), 32u);
}

TEST(Drbg, RejectsShortSeed) {
  EXPECT_THROW(ShakeDrbg(Bytes(15, 0)), std::invalid_argument);
}

TEST(Drbg, OutputLooksUniform) {
  ShakeDrbg d(Bytes(32, 6));
  const Bytes out = d.generate(8192);
  std::array<int, 256> histogram{};
  for (auto b : out) ++histogram[b];
  for (int count : histogram) {
    EXPECT_GT(count, 8);   // expected 32
    EXPECT_LT(count, 80);
  }
}

TEST(Drbg, LargeRequestSupported) {
  ShakeDrbg d(Bytes(32, 7));
  EXPECT_EQ(d.generate(100000).size(), 100000u);
}

}  // namespace
}  // namespace convolve::crypto
