// Composability evaluation for Section III-E: the VEP isolation property
// ("protects applications from interference from other applications on the
// shared resources providing execution time guarantees") and its stated
// drawback ("a drawback of composable execution [is] the additional
// processing overhead").
#include <cstdio>

#include "convolve/compsoc/noc.hpp"
#include "convolve/compsoc/platform.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve::compsoc;

namespace {

CompletionRecord run_rt(ArbitrationPolicy policy, bool with_interference,
                        double* idle_fraction = nullptr) {
  PlatformConfig config;
  config.policy = policy;
  config.tdm_period = 8;
  Platform p(config);
  int rt;
  if (policy == ArbitrationPolicy::kTdm) {
    // Interferer occupies disjoint slots; created first so greedy ties
    // would favour it.
    if (with_interference) {
      const int be = p.create_vep("be", {4, 5, 6}, {4, 5, 6}, {4, 5, 6});
      rt = p.create_vep("rt", {0, 1, 2}, {0, 1, 2}, {0, 1, 2});
      p.load_application(be, make_besteffort_app("be", 60));
    } else {
      rt = p.create_vep("rt", {0, 1, 2}, {0, 1, 2}, {0, 1, 2});
    }
  } else {
    if (with_interference) {
      const int be = p.create_vep("be", {}, {}, {});
      rt = p.create_vep("rt", {}, {}, {});
      p.load_application(be, make_besteffort_app("be", 60));
    } else {
      rt = p.create_vep("rt", {}, {}, {});
    }
  }
  p.load_application(rt, make_realtime_app("rt", 8));
  auto records = p.run(1000000);
  if (idle_fraction) *idle_fraction = p.idle_slot_fraction();
  return records[static_cast<std::size_t>(rt)];
}

}  // namespace

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  std::printf("=== CompSOC: composability and its overhead ===\n\n");
  std::printf("%-28s %-14s %-14s %-12s\n", "configuration", "finish [cyc]",
              "stalls", "trace equal");

  double idle_tdm = 0.0;
  const auto tdm_alone = run_rt(ArbitrationPolicy::kTdm, false);
  const auto tdm_shared = run_rt(ArbitrationPolicy::kTdm, true, &idle_tdm);
  const bool tdm_equal = tdm_alone.grant_trace == tdm_shared.grant_trace;
  std::printf("%-28s %-14llu %-14llu %-12s\n", "TDM, alone",
              static_cast<unsigned long long>(tdm_alone.finish_cycle),
              static_cast<unsigned long long>(tdm_alone.stall_cycles), "-");
  std::printf("%-28s %-14llu %-14llu %-12s\n", "TDM, with interference",
              static_cast<unsigned long long>(tdm_shared.finish_cycle),
              static_cast<unsigned long long>(tdm_shared.stall_cycles),
              tdm_equal ? "yes (bit-exact)" : "NO");

  const auto greedy_alone = run_rt(ArbitrationPolicy::kGreedy, false);
  const auto greedy_shared = run_rt(ArbitrationPolicy::kGreedy, true);
  const bool greedy_equal =
      greedy_alone.grant_trace == greedy_shared.grant_trace;
  std::printf("%-28s %-14llu %-14llu %-12s\n", "greedy, alone",
              static_cast<unsigned long long>(greedy_alone.finish_cycle),
              static_cast<unsigned long long>(greedy_alone.stall_cycles), "-");
  std::printf("%-28s %-14llu %-14llu %-12s\n", "greedy, with interference",
              static_cast<unsigned long long>(greedy_shared.finish_cycle),
              static_cast<unsigned long long>(greedy_shared.stall_cycles),
              greedy_equal ? "yes" : "no (not composable)");

  const double overhead =
      static_cast<double>(tdm_alone.finish_cycle) /
      static_cast<double>(greedy_alone.finish_cycle);
  std::printf("\ncomposability overhead (TDM vs greedy, in isolation): "
              "%.2fx slower\n", overhead);
  std::printf("TDM idle-slot fraction under load: %.2f\n", idle_tdm);
  std::printf("\nVEP guarantee %s: the real-time app's grant trace is "
              "unchanged by co-runners.\n",
              tdm_equal ? "holds" : "VIOLATED");

  // --- Interconnect composability: 4x4 NoC mesh -----------------------
  auto noc_latency = [](bool with_interference) {
    NocConfig nc;
    NocMesh mesh(nc);
    mesh.assign_slots(0, {0, 1});
    mesh.assign_slots(1, {4, 5, 6, 7});
    mesh.inject({1, 0, 15, 4, 0, 0});
    if (with_interference) {
      for (int i = 0; i < 25; ++i) {
        mesh.inject({100 + i, i % 16, (i * 11 + 2) % 16, 8, 1,
                     static_cast<std::uint64_t>(i % 5)});
      }
    }
    return mesh.run(100000)[0].delivery_cycle;
  };
  const auto noc_alone = noc_latency(false);
  const auto noc_loaded = noc_latency(true);
  NocMesh bound_mesh{NocConfig{}};
  const auto bound = bound_mesh.worst_case_latency(/*hops=*/6, /*flits=*/4,
                                                   /*owned_slots=*/2);
  std::printf("\nNoC (4x4 mesh, XY routing, per-link TDM): real-time "
              "packet delivers at\ncycle %llu alone and cycle %llu under "
              "saturating best-effort traffic\n(identical: %s); analytic "
              "worst-case bound %llu holds.\n",
              static_cast<unsigned long long>(noc_alone),
              static_cast<unsigned long long>(noc_loaded),
              noc_alone == noc_loaded ? "yes" : "NO",
              static_cast<unsigned long long>(bound));
  return (tdm_equal && !greedy_equal && noc_alone == noc_loaded &&
          noc_loaded <= bound)
             ? 0
             : 1;
}
