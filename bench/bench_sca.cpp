// Side-channel lab acceptance harness: TVLA and CPA against the gate-level
// AES S-box at masking orders 0 and 1, under moderate Gaussian noise.
//
// Four scenarios, each timed and reported:
//   tvla_unmasked - order 0 must fail first-order TVLA (max |t1| > 4.5)
//                   within --min-unmasked-fail traces
//   cpa_unmasked  - CPA must recover the key byte (rank 0)
//   tvla_order1   - order-1 DOM must hold first order for at least
//                   --min-masked-ratio x the unmasked failure count, and
//                   must still fail second-order TVLA
//   determinism   - one TVLA run repeated at 1/4/7 threads must produce
//                   bit-identical t statistics
//
// The exit code gates all four, so the bench doubles as the ISSUE
// acceptance check. --threads=N shards trace capture (results are
// thread-count-invariant by construction; N only changes wall time).
//
// Output: a text table by default; --json emits the shared
// bench_report.hpp schema (same shape as bench_crypto_micro
// --benchmark_format=json plus a "telemetry" snapshot), and
// --trace-out/--metrics-out write chrome://tracing and metric files.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.hpp"
#include "convolve/analysis/aes_sbox.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/sca/cpa.hpp"
#include "convolve/sca/tvla.hpp"

using namespace convolve;
using namespace convolve::sca;

namespace {

constexpr std::uint8_t kKey = 0x3C;
constexpr std::uint32_t kFixedInput = 0x52;

MaskedTraceTarget sbox_target(unsigned order, double sigma) {
  auto masked = masking::mask_circuit(analysis::aes_sbox_circuit(), order);
  return MaskedTraceTarget(std::move(masked), 8,
                           {PowerModel::kHammingWeight, sigma},
                           BitOrder::kMsbFirst);
}

struct Scenario {
  const char* name;
  double seconds = 0;
  std::uint64_t traces = 0;
  double metric_a = 0;  // max |t1|, or best |rho|
  double metric_b = 0;  // max |t2|, or true-key |rho|
  bool pass = false;
  std::string detail;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void add_scenario_entry(convolve::bench::Report& report, const Scenario& s) {
  const double ns_per_trace =
      s.traces > 0 ? s.seconds * 1e9 / static_cast<double>(s.traces) : 0;
  auto& e = report.add(std::string("sca/") + s.name);
  e.iterations = s.traces;
  e.real_time_ns = ns_per_trace;
  e.cpu_time_ns = ns_per_trace;
  e.counter("metric_a", s.metric_a);
  e.counter("metric_b", s.metric_b);
  e.counter("pass", s.pass ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = par::init_threads_from_cli(argc, argv);
  convolve::bench::ReportOptions opts;
  double sigma = 1.0;
  int unmasked_traces = 4096;
  int min_unmasked_fail = 5000;
  int min_masked_ratio = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (convolve::bench::consume_report_flag(arg, opts)) {
      continue;
    } else if (arg.rfind("--sigma=", 0) == 0) {
      sigma = std::stod(arg.substr(8));
    } else if (arg.rfind("--unmasked-traces=", 0) == 0) {
      unmasked_traces = std::stoi(arg.substr(18));
    } else if (arg.rfind("--min-unmasked-fail=", 0) == 0) {
      min_unmasked_fail = std::stoi(arg.substr(20));
    } else if (arg.rfind("--min-masked-ratio=", 0) == 0) {
      min_masked_ratio = std::stoi(arg.substr(19));
    } else {
      std::fprintf(stderr,
                   "usage: %s %s\n"
                   "          [--sigma=X] [--unmasked-traces=N]\n"
                   "          [--min-unmasked-fail=N] [--min-masked-ratio=N]\n"
                   "          [--threads=N]\n",
                   argv[0], convolve::bench::report_flags_usage());
      return 2;
    }
  }

  std::vector<Scenario> scenarios;

  // --- Scenario 1: unmasked S-box vs first-order TVLA --------------------
  const auto unmasked = sbox_target(0, sigma);
  auto t0 = std::chrono::steady_clock::now();
  const TvlaReport tvla0 =
      tvla_fixed_vs_random(unmasked, kFixedInput, unmasked_traces);
  {
    Scenario s;
    s.name = "tvla_unmasked";
    s.seconds = seconds_since(t0);
    s.traces = static_cast<std::uint64_t>(unmasked_traces);
    s.metric_a = tvla0.max_abs_t1;
    s.metric_b = tvla0.max_abs_t2;
    s.pass = tvla0.traces_to_first_order_fail >= 0 &&
             tvla0.traces_to_first_order_fail <= min_unmasked_fail;
    s.detail = "t1 fail @ " + std::to_string(tvla0.traces_to_first_order_fail);
    scenarios.push_back(std::move(s));
  }

  // --- Scenario 2: unmasked S-box vs CPA key recovery --------------------
  t0 = std::chrono::steady_clock::now();
  const CpaReport cpa0 = cpa_sbox_attack(unmasked, kKey, unmasked_traces);
  {
    Scenario s;
    s.name = "cpa_unmasked";
    s.seconds = seconds_since(t0);
    s.traces = static_cast<std::uint64_t>(unmasked_traces);
    s.metric_a = cpa0.curve.back().best_corr;
    s.metric_b = cpa0.curve.back().true_key_corr;
    s.pass = cpa0.rank == 0 && cpa0.recovered_key == kKey &&
             cpa0.traces_to_rank0 >= 0;
    s.detail = "rank 0 @ " + std::to_string(cpa0.traces_to_rank0);
    scenarios.push_back(std::move(s));
  }

  // --- Scenario 3: order-1 DOM at >= ratio x the unmasked budget ---------
  // The masked run must hold first order for min_masked_ratio times the
  // trace count that broke the unmasked target, and still fail second
  // order (the order-1 transition, measured).
  const int fail1 =
      tvla0.traces_to_first_order_fail > 0 ? tvla0.traces_to_first_order_fail
                                           : unmasked_traces;
  const int masked_traces = fail1 * min_masked_ratio;
  const auto order1 = sbox_target(1, sigma);
  t0 = std::chrono::steady_clock::now();
  const TvlaReport tvla1 =
      tvla_fixed_vs_random(order1, kFixedInput, masked_traces);
  {
    Scenario s;
    s.name = "tvla_order1";
    s.seconds = seconds_since(t0);
    s.traces = static_cast<std::uint64_t>(masked_traces);
    s.metric_a = tvla1.max_abs_t1;
    s.metric_b = tvla1.max_abs_t2;
    s.pass = !tvla1.first_order_leak &&
             tvla1.traces_to_first_order_fail == -1 &&
             tvla1.second_order_leak;
    s.detail = "t1 clean @ " + std::to_string(masked_traces) +
               ", t2 fail @ " +
               std::to_string(tvla1.traces_to_second_order_fail);
    scenarios.push_back(std::move(s));
  }

  // --- Scenario 4: thread-count determinism self-check -------------------
  t0 = std::chrono::steady_clock::now();
  TvlaConfig small;
  small.checkpoints = {1024};
  TvlaReport reference;
  {
    par::ScopedThreadCount one(1);
    reference = tvla_fixed_vs_random(order1, kFixedInput, 1024, small);
  }
  bool identical = true;
  for (int threads : {4, 7}) {
    par::ScopedThreadCount scope(threads);
    const TvlaReport rerun =
        tvla_fixed_vs_random(order1, kFixedInput, 1024, small);
    identical &= rerun.t1 == reference.t1 && rerun.t2 == reference.t2;
  }
  {
    Scenario s;
    s.name = "determinism";
    s.seconds = seconds_since(t0);
    s.traces = 3 * 1024;
    s.metric_a = reference.max_abs_t1;
    s.metric_b = reference.max_abs_t2;
    s.pass = identical;
    s.detail = identical ? "bit-identical @ threads 1/4/7" : "DIVERGED";
    scenarios.push_back(std::move(s));
  }

  bool all_pass = true;
  for (const Scenario& s : scenarios) all_pass &= s.pass;

  convolve::bench::Report report;
  report.executable = argv[0];
  report.threads = threads;
  for (const Scenario& s : scenarios) add_scenario_entry(report, s);
  if (!convolve::bench::finish_report(report, opts)) {
    std::fprintf(stderr, "bench_sca: failed to write report file(s)\n");
    return 2;
  }
  if (!opts.json) {
    std::printf("=== sca lab: TVLA + CPA vs the gate-level AES S-box ===\n");
    std::printf("sigma=%.2f threads=%d\n\n", sigma, par::thread_count());
    std::printf("%-14s %9s %9s %9s %6s  %s\n", "scenario", "traces", "t1|rho",
                "t2|rho_k", "gate", "detail");
    for (const Scenario& s : scenarios) {
      std::printf("%-14s %9llu %9.2f %9.2f %6s  %s\n", s.name,
                  static_cast<unsigned long long>(s.traces), s.metric_a,
                  s.metric_b, s.pass ? "pass" : "FAIL", s.detail.c_str());
    }
    std::printf("\nall gates passed: %s\n", all_pass ? "yes" : "NO");
  }
  return all_pass ? 0 : 1;
}
