// Side-channel lab acceptance harness: TVLA and CPA against the gate-level
// AES S-box at masking orders 0 and 1, under moderate Gaussian noise.
//
// Six scenarios, each timed and reported:
//   tvla_unmasked - order 0 must fail first-order TVLA (max |t1| > 4.5)
//                   within --min-unmasked-fail traces
//   cpa_unmasked  - CPA must recover the key byte (rank 0)
//   tvla_order1   - order-1 DOM must hold first order for at least
//                   --min-masked-ratio x the unmasked failure count, and
//                   must still fail second-order TVLA
//   determinism   - one TVLA run repeated at 1/4/7 threads must produce
//                   bit-identical t statistics
//   lane_diff     - TVLA and CPA rerun on the scalar oracle (lanes=1) must
//                   match the bitsliced engine (lanes=64) bit-for-bit
//   tvla_speedup  - a --speedup-traces (default 1M) noiseless TVLA
//                   campaign on the bitsliced engine, timed against the
//                   scalar oracle's ns/trace; gated by --min-speedup
//
// The exit code gates all scenarios, so the bench doubles as the ISSUE
// acceptance check. --threads=N shards trace capture (results are
// thread-count-invariant by construction; N only changes wall time);
// --lanes={1,64} selects the evaluation engine for scenarios 1-4.
//
// Output: a text table by default; --json emits the shared
// bench_report.hpp schema (same shape as bench_crypto_micro
// --benchmark_format=json plus a "telemetry" snapshot), and
// --trace-out/--metrics-out write chrome://tracing and metric files.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.hpp"
#include "convolve/analysis/aes_sbox.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/sca/cpa.hpp"
#include "convolve/sca/tvla.hpp"

using namespace convolve;
using namespace convolve::sca;

namespace {

constexpr std::uint8_t kKey = 0x3C;
constexpr std::uint32_t kFixedInput = 0x52;

MaskedTraceTarget sbox_target(unsigned order, double sigma) {
  auto masked = masking::mask_circuit(analysis::aes_sbox_circuit(), order);
  return MaskedTraceTarget(std::move(masked), 8,
                           {PowerModel::kHammingWeight, sigma},
                           BitOrder::kMsbFirst);
}

struct Scenario {
  const char* name;
  double seconds = 0;
  std::uint64_t traces = 0;
  double metric_a = 0;  // max |t1|, or best |rho|
  double metric_b = 0;  // max |t2|, or true-key |rho|
  bool pass = false;
  std::string detail;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void add_scenario_entry(convolve::bench::Report& report, const Scenario& s) {
  const double ns_per_trace =
      s.traces > 0 ? s.seconds * 1e9 / static_cast<double>(s.traces) : 0;
  auto& e = report.add(std::string("sca/") + s.name);
  e.iterations = s.traces;
  e.real_time_ns = ns_per_trace;
  e.cpu_time_ns = ns_per_trace;
  e.counter("metric_a", s.metric_a);
  e.counter("metric_b", s.metric_b);
  e.counter("pass", s.pass ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = par::init_threads_from_cli(argc, argv);
  convolve::bench::ReportOptions opts;
  double sigma = 1.0;
  int unmasked_traces = 4096;
  int min_unmasked_fail = 5000;
  int min_masked_ratio = 20;
  int lanes = PowerTraceSimulator::kLanes;
  double min_speedup = 0.0;
  int speedup_traces = 1000000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (convolve::bench::consume_report_flag(arg, opts)) {
      continue;
    } else if (arg.rfind("--sigma=", 0) == 0) {
      sigma = std::stod(arg.substr(8));
    } else if (arg.rfind("--unmasked-traces=", 0) == 0) {
      unmasked_traces = std::stoi(arg.substr(18));
    } else if (arg.rfind("--min-unmasked-fail=", 0) == 0) {
      min_unmasked_fail = std::stoi(arg.substr(20));
    } else if (arg.rfind("--min-masked-ratio=", 0) == 0) {
      min_masked_ratio = std::stoi(arg.substr(19));
    } else if (arg.rfind("--lanes=", 0) == 0) {
      lanes = std::stoi(arg.substr(8));
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::stod(arg.substr(14));
    } else if (arg.rfind("--speedup-traces=", 0) == 0) {
      speedup_traces = std::stoi(arg.substr(17));
    } else {
      std::fprintf(stderr,
                   "usage: %s %s\n"
                   "          [--sigma=X] [--unmasked-traces=N]\n"
                   "          [--min-unmasked-fail=N] [--min-masked-ratio=N]\n"
                   "          [--lanes=1|64] [--min-speedup=X]\n"
                   "          [--speedup-traces=N] [--threads=N]\n",
                   argv[0], convolve::bench::report_flags_usage());
      return 2;
    }
  }
  TvlaConfig tvla_cfg;
  tvla_cfg.lanes = lanes;
  CpaConfig cpa_cfg;
  cpa_cfg.lanes = lanes;

  std::vector<Scenario> scenarios;

  // --- Scenario 1: unmasked S-box vs first-order TVLA --------------------
  const auto unmasked = sbox_target(0, sigma);
  auto t0 = std::chrono::steady_clock::now();
  const TvlaReport tvla0 =
      tvla_fixed_vs_random(unmasked, kFixedInput, unmasked_traces, tvla_cfg);
  {
    Scenario s;
    s.name = "tvla_unmasked";
    s.seconds = seconds_since(t0);
    s.traces = static_cast<std::uint64_t>(unmasked_traces);
    s.metric_a = tvla0.max_abs_t1;
    s.metric_b = tvla0.max_abs_t2;
    s.pass = tvla0.traces_to_first_order_fail >= 0 &&
             tvla0.traces_to_first_order_fail <= min_unmasked_fail;
    s.detail = "t1 fail @ " + std::to_string(tvla0.traces_to_first_order_fail);
    scenarios.push_back(std::move(s));
  }

  // --- Scenario 2: unmasked S-box vs CPA key recovery --------------------
  t0 = std::chrono::steady_clock::now();
  const CpaReport cpa0 =
      cpa_sbox_attack(unmasked, kKey, unmasked_traces, cpa_cfg);
  {
    Scenario s;
    s.name = "cpa_unmasked";
    s.seconds = seconds_since(t0);
    s.traces = static_cast<std::uint64_t>(unmasked_traces);
    s.metric_a = cpa0.curve.back().best_corr;
    s.metric_b = cpa0.curve.back().true_key_corr;
    s.pass = cpa0.rank == 0 && cpa0.recovered_key == kKey &&
             cpa0.traces_to_rank0 >= 0;
    s.detail = "rank 0 @ " + std::to_string(cpa0.traces_to_rank0);
    scenarios.push_back(std::move(s));
  }

  // --- Scenario 3: order-1 DOM at >= ratio x the unmasked budget ---------
  // The masked run must hold first order for min_masked_ratio times the
  // trace count that broke the unmasked target, and still fail second
  // order (the order-1 transition, measured).
  const int fail1 =
      tvla0.traces_to_first_order_fail > 0 ? tvla0.traces_to_first_order_fail
                                           : unmasked_traces;
  const int masked_traces = fail1 * min_masked_ratio;
  const auto order1 = sbox_target(1, sigma);
  t0 = std::chrono::steady_clock::now();
  const TvlaReport tvla1 =
      tvla_fixed_vs_random(order1, kFixedInput, masked_traces, tvla_cfg);
  {
    Scenario s;
    s.name = "tvla_order1";
    s.seconds = seconds_since(t0);
    s.traces = static_cast<std::uint64_t>(masked_traces);
    s.metric_a = tvla1.max_abs_t1;
    s.metric_b = tvla1.max_abs_t2;
    s.pass = !tvla1.first_order_leak &&
             tvla1.traces_to_first_order_fail == -1 &&
             tvla1.second_order_leak;
    s.detail = "t1 clean @ " + std::to_string(masked_traces) +
               ", t2 fail @ " +
               std::to_string(tvla1.traces_to_second_order_fail);
    scenarios.push_back(std::move(s));
  }

  // --- Scenario 4: thread-count determinism self-check -------------------
  t0 = std::chrono::steady_clock::now();
  TvlaConfig small = tvla_cfg;
  small.checkpoints = {1024};
  TvlaReport reference;
  {
    par::ScopedThreadCount one(1);
    reference = tvla_fixed_vs_random(order1, kFixedInput, 1024, small);
  }
  bool identical = true;
  for (int threads : {4, 7}) {
    par::ScopedThreadCount scope(threads);
    const TvlaReport rerun =
        tvla_fixed_vs_random(order1, kFixedInput, 1024, small);
    identical &= rerun.t1 == reference.t1 && rerun.t2 == reference.t2;
  }
  {
    Scenario s;
    s.name = "determinism";
    s.seconds = seconds_since(t0);
    s.traces = 3 * 1024;
    s.metric_a = reference.max_abs_t1;
    s.metric_b = reference.max_abs_t2;
    s.pass = identical;
    s.detail = identical ? "bit-identical @ threads 1/4/7" : "DIVERGED";
    scenarios.push_back(std::move(s));
  }

  // --- Scenario 5: bitsliced engine vs scalar differential oracle --------
  // Rerun a TVLA and a CPA with both engines; every statistic (t curves,
  // per-guess correlations, key ranking) must match bit-for-bit -- the
  // engines share block boundaries and accumulation code, so "close" is
  // not accepted.
  t0 = std::chrono::steady_clock::now();
  bool lanes_identical = true;
  {
    TvlaConfig wide = tvla_cfg, narrow = tvla_cfg;
    wide.lanes = PowerTraceSimulator::kLanes;
    narrow.lanes = 1;
    wide.checkpoints = narrow.checkpoints = {512, 1024};
    const TvlaReport tw = tvla_fixed_vs_random(order1, kFixedInput, 1024, wide);
    const TvlaReport tn =
        tvla_fixed_vs_random(order1, kFixedInput, 1024, narrow);
    lanes_identical &= tw.t1 == tn.t1 && tw.t2 == tn.t2;
    for (std::size_t i = 0; i < tw.curve.size(); ++i) {
      lanes_identical &= tw.curve[i].max_abs_t1 == tn.curve[i].max_abs_t1 &&
                         tw.curve[i].max_abs_t2 == tn.curve[i].max_abs_t2;
    }
    CpaConfig cw = cpa_cfg, cn = cpa_cfg;
    cw.lanes = PowerTraceSimulator::kLanes;
    cn.lanes = 1;
    const CpaReport rw = cpa_sbox_attack(unmasked, kKey, 512, cw);
    const CpaReport rn = cpa_sbox_attack(unmasked, kKey, 512, cn);
    lanes_identical &= rw.correlation == rn.correlation &&
                       rw.rank == rn.rank &&
                       rw.recovered_key == rn.recovered_key;
  }
  {
    Scenario s;
    s.name = "lane_diff";
    s.seconds = seconds_since(t0);
    s.traces = 2 * 1024 + 2 * 512;
    s.metric_a = static_cast<double>(PowerTraceSimulator::kLanes);
    s.metric_b = 1.0;
    s.pass = lanes_identical;
    s.detail = lanes_identical ? "lanes 64 == lanes 1 bit-for-bit"
                               : "ENGINES DIVERGED";
    scenarios.push_back(std::move(s));
  }

  // --- Scenario 6: bitsliced throughput on a large noiseless campaign ----
  // The headline claim: a --speedup-traces TVLA campaign on the bitsliced
  // engine at roughly the wall clock the scalar oracle needs for ~16k
  // traces. Noise is off here -- Gaussian noise is inherently lane-serial
  // and would only measure the RNG, not the gate engine.
  {
    const auto quiet = sbox_target(0, 0.0);
    const int scalar_traces =
        std::min(speedup_traces, std::max(1024, speedup_traces / 64));
    TvlaConfig scalar_cfg = tvla_cfg;
    scalar_cfg.lanes = 1;
    scalar_cfg.checkpoints = {scalar_traces};
    t0 = std::chrono::steady_clock::now();
    const TvlaReport ts =
        tvla_fixed_vs_random(quiet, kFixedInput, scalar_traces, scalar_cfg);
    const double scalar_sec = seconds_since(t0);
    TvlaConfig wide_cfg = tvla_cfg;
    wide_cfg.lanes = PowerTraceSimulator::kLanes;
    wide_cfg.checkpoints = {speedup_traces};
    t0 = std::chrono::steady_clock::now();
    const TvlaReport tb =
        tvla_fixed_vs_random(quiet, kFixedInput, speedup_traces, wide_cfg);
    const double wide_sec = seconds_since(t0);
    const double scalar_ns =
        scalar_sec * 1e9 / static_cast<double>(scalar_traces);
    const double wide_ns = wide_sec * 1e9 / static_cast<double>(speedup_traces);
    const double speedup = wide_ns > 0 ? scalar_ns / wide_ns : 0.0;
    Scenario s;
    s.name = "tvla_speedup";
    s.seconds = wide_sec;
    s.traces = static_cast<std::uint64_t>(speedup_traces);
    s.metric_a = speedup;
    s.metric_b = wide_ns;
    // Both runs must still see the leak; the gate is the throughput ratio.
    s.pass = (min_speedup <= 0.0 || speedup >= min_speedup) &&
             ts.first_order_leak && tb.first_order_leak;
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "%.1fx (%.0f -> %.0f ns/trace, scalar n=%d)", speedup,
                  scalar_ns, wide_ns, scalar_traces);
    s.detail = buf;
    scenarios.push_back(std::move(s));
  }

  bool all_pass = true;
  for (const Scenario& s : scenarios) all_pass &= s.pass;

  convolve::bench::Report report;
  report.executable = argv[0];
  report.threads = threads;
  for (const Scenario& s : scenarios) add_scenario_entry(report, s);
  if (!convolve::bench::finish_report(report, opts)) {
    std::fprintf(stderr, "bench_sca: failed to write report file(s)\n");
    return 2;
  }
  if (!opts.json) {
    std::printf("=== sca lab: TVLA + CPA vs the gate-level AES S-box ===\n");
    std::printf("sigma=%.2f threads=%d\n\n", sigma, par::thread_count());
    std::printf("%-14s %9s %9s %9s %6s  %s\n", "scenario", "traces", "t1|rho",
                "t2|rho_k", "gate", "detail");
    for (const Scenario& s : scenarios) {
      std::printf("%-14s %9llu %9.2f %9.2f %6s  %s\n", s.name,
                  static_cast<unsigned long long>(s.traces), s.metric_a,
                  s.metric_b, s.pass ? "pass" : "FAIL", s.detail.c_str());
    }
    std::printf("\nall gates passed: %s\n", all_pass ? "yes" : "NO");
  }
  return all_pass ? 0 : 1;
}
