// Reproduces Fig. 3: "Enhancing FreeRTOS Security on RISC-V Architecture
// with Physical Memory Protection (PMP)."
//
// The figure's evaluation: "diverse attack scenarios utilized to evaluate
// the system's capacity to endure and recuperate from these attacks." This
// bench runs the five-scenario suite against the flat-memory FreeRTOS
// baseline and the PMP-hardened kernel and prints the outcome matrix.
#include <cstdio>

#include "convolve/rtos/attacks.hpp"
#include "convolve/rtos/kernel.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/tee/rv32.hpp"

using namespace convolve::rtos;

namespace {

// Addendum to the scripted attack suite: the same containment story with
// real machine code. A rogue RV32 task (run on the decode-cache engine in
// U-mode) stores to the kernel data region; PMP converts the store into a
// fault and the kernel kills the task while a well-behaved RV32 neighbour
// runs to completion.
bool machine_code_containment() {
  namespace rv = convolve::tee::rv32asm;
  convolve::tee::Machine machine(1 << 20);
  Kernel kernel(machine, KernelConfig{});

  // Rogue: point x1 at the kernel's canary scratch area and store.
  const auto rogue = rv::assemble({
      rv::addi(1, 0, 0x100),  // kernel_data_addr()
      rv::addi(2, 0, 0x5A),
      rv::sb(2, 1, 0),
      rv::ebreak(),
  });
  // Victim: a short ALU loop, then a clean exit.
  const auto victim = rv::assemble({
      rv::addi(1, 0, 100),
      rv::addi(2, 0, 0),
      // loop:
      rv::add(2, 2, 1),
      rv::addi(1, 1, -1),
      rv::bne(1, 0, -8),
      rv::ebreak(),
  });
  const int rogue_id = kernel.add_machine_task("rogue", 2, 4096, rogue);
  const int victim_id = kernel.add_machine_task("victim", 1, 4096, victim);
  kernel.run(64);

  const bool contained = kernel.task_state(rogue_id) == TaskState::kKilled &&
                         kernel.task_state(victim_id) == TaskState::kDone &&
                         kernel.count_events(EventType::kFault) >= 1 &&
                         kernel.kernel_integrity_ok();
  std::printf("\nmachine-code addendum: rogue RV32 task %s, victim %s, "
              "kernel canary %s\n",
              kernel.task_state(rogue_id) == TaskState::kKilled
                  ? "killed on PMP fault" : "NOT KILLED",
              kernel.task_state(victim_id) == TaskState::kDone
                  ? "completed" : "DID NOT FINISH",
              kernel.kernel_integrity_ok() ? "intact" : "CORRUPTED");
  return contained;
}

}  // namespace

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  std::printf("=== Fig. 3: FreeRTOS attack scenarios, flat vs PMP ===\n");
  std::printf("%-20s | %-28s | %-28s\n", "scenario",
              "flat memory (no PMP)", "PMP-hardened");
  std::printf("%-20s | %-9s %-9s %-6s | %-9s %-9s %-6s\n", "", "attack",
              "recovered", "traps", "attack", "recovered", "traps");

  const auto flat = run_attack_suite(false);
  const auto hardened = run_attack_suite(true);

  bool all_contained = true;
  bool flat_vulnerable = false;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const auto& f = flat[i];
    const auto& h = hardened[i];
    std::printf("%-20s | %-9s %-9s %-6d | %-9s %-9s %-6d\n", f.name.c_str(),
                f.attack_succeeded ? "SUCCEEDS" : "fails",
                f.system_recovered() ? "yes" : "NO", f.faults,
                h.attack_succeeded ? "SUCCEEDS" : "fails",
                h.system_recovered() ? "yes" : "NO", h.faults);
    all_contained &= (!h.attack_succeeded && h.system_recovered());
    flat_vulnerable |= f.attack_succeeded;
  }

  std::printf("\nhardened kernel: every attack contained, victims met their "
              "deadlines, kernel integrity held: %s\n",
              all_contained ? "yes" : "NO");
  std::printf("flat baseline: memory attacks succeed silently: %s\n",
              flat_vulnerable ? "yes" : "NO");
  const bool rv32_contained = machine_code_containment();
  return (all_contained && flat_vulnerable && rv32_contained) ? 0 : 1;
}
