// Reproduces Fig. 3: "Enhancing FreeRTOS Security on RISC-V Architecture
// with Physical Memory Protection (PMP)."
//
// The figure's evaluation: "diverse attack scenarios utilized to evaluate
// the system's capacity to endure and recuperate from these attacks." This
// bench runs the five-scenario suite against the flat-memory FreeRTOS
// baseline and the PMP-hardened kernel and prints the outcome matrix.
#include <cstdio>

#include "convolve/rtos/attacks.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve::rtos;

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  std::printf("=== Fig. 3: FreeRTOS attack scenarios, flat vs PMP ===\n");
  std::printf("%-20s | %-28s | %-28s\n", "scenario",
              "flat memory (no PMP)", "PMP-hardened");
  std::printf("%-20s | %-9s %-9s %-6s | %-9s %-9s %-6s\n", "", "attack",
              "recovered", "traps", "attack", "recovered", "traps");

  const auto flat = run_attack_suite(false);
  const auto hardened = run_attack_suite(true);

  bool all_contained = true;
  bool flat_vulnerable = false;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const auto& f = flat[i];
    const auto& h = hardened[i];
    std::printf("%-20s | %-9s %-9s %-6d | %-9s %-9s %-6d\n", f.name.c_str(),
                f.attack_succeeded ? "SUCCEEDS" : "fails",
                f.system_recovered() ? "yes" : "NO", f.faults,
                h.attack_succeeded ? "SUCCEEDS" : "fails",
                h.system_recovered() ? "yes" : "NO", h.faults);
    all_contained &= (!h.attack_succeeded && h.system_recovered());
    flat_vulnerable |= f.attack_succeeded;
  }

  std::printf("\nhardened kernel: every attack contained, victims met their "
              "deadlines, kernel integrity held: %s\n",
              all_contained ? "yes" : "NO");
  std::printf("flat baseline: memory attacks succeed silently: %s\n",
              flat_vulnerable ? "yes" : "NO");
  return (all_contained && flat_vulnerable) ? 0 : 1;
}
