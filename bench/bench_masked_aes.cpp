// Software masking overhead -- the paper's challenge #1 quantified:
// "Protections against side-channels increase these requirements even
// further." Measures the executable masked AES-256 against the plain
// implementation across masking orders, reporting the cycle-cost factor
// and the fresh-randomness appetite per block.
#include <chrono>
#include <cstdio>
#include <functional>

#include "convolve/crypto/aes.hpp"
#include "convolve/masking/masked_aes.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve;
using namespace convolve::masking;

namespace {

double time_blocks(const std::function<void()>& fn, int iterations) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(stop - start).count() /
         iterations;
}

}  // namespace

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  const Bytes key(32, 0x42);
  std::uint8_t pt[16] = {0x11, 0x22, 0x33};
  std::uint8_t ct[16];

  const crypto::Aes plain(crypto::Aes::KeySize::k256, key);
  const double plain_us =
      time_blocks([&] { plain.encrypt_block(pt, ct); }, 2000);

  std::printf("=== Masked AES-256 software overhead ===\n");
  std::printf("%-8s %14s %10s %18s\n", "order", "us/block", "factor",
              "rand bits/block");
  std::printf("%-8s %14.2f %10s %18s\n", "plain", plain_us, "1.0", "0");

  double d0_us = 0.0;
  for (unsigned d : {0u, 1u, 2u, 3u}) {
    RandomnessSource rnd(1);
    const MaskedAes masked(MaskedAes::KeySize::k256, key, d, rnd);
    const double us = time_blocks(
        [&] { masked.encrypt_block(pt, ct, rnd); }, d >= 2 ? 50 : 200);
    if (d == 0) d0_us = us;
    std::printf("d=%-6u %14.2f %10.1f %18llu\n", d, us, us / d0_us,
                static_cast<unsigned long long>(
                    MaskedAes::block_random_bits(MaskedAes::KeySize::k256,
                                                 d)));
  }
  std::printf(
      "\n(\"factor\" is relative to the d=0 shared-datapath baseline; the\n"
      "tower-field S-box itself costs ~2000x a table lookup in software,\n"
      "which is precisely why the paper builds it in hardware.)\n"
      "Randomness grows with d(d+1)/2 -- the same scaling the HADES\n"
      "Table II hardware model charges.\n");
  return 0;
}
