// Reproduces Fig. 2: "Second Phase: HW=3 Results."
//
// The four HW = 3 weight values (7, 11, 13, 14) are indistinguishable when
// activated alone (identical Hamming weight -> identical switching). The
// paper shows that co-activating each with a known weight of value 1
// produces four distinct power patterns. This bench prints both series and
// then demonstrates the full phase-2 recovery on the HW = 3 class.
#include <cstdio>

#include "convolve/cim/attack.hpp"
#include "convolve/common/bytes.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve::cim;

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  // Construct a macro whose secrets include the four HW=3 values plus a
  // known helper weight of value 1 (recovered in an earlier attack round;
  // here placed explicitly so the bench is self-contained, as in the
  // paper's figure).
  MacroConfig config;
  config.n_rows = 8;
  config.noise_sigma = 0.0;
  // rows: [7, 11, 13, 14, 1(known), 0, 15, 2]
  CimMacro macro(config, {7, 11, 13, 14, 1, 0, 15, 2});

  auto one_shot = [&](std::vector<int> rows) {
    std::vector<std::uint8_t> inputs(8, 0);
    for (int r : rows) inputs[static_cast<std::size_t>(r)] = 1;
    macro.reset();
    macro.clear_trace();
    macro.mac_cycle(inputs);
    return macro.trace().back();
  };

  std::printf("=== Fig. 2: phase-2 disambiguation of HW=3 weights ===\n");
  std::printf("%-18s %10s %22s\n", "weight (value)", "alone",
              "with known w=1");
  const int hw3_rows[] = {0, 1, 2, 3};
  const int known_row = 4;
  double alone[4], paired[4];
  for (int i = 0; i < 4; ++i) {
    alone[i] = one_shot({hw3_rows[i]});
    paired[i] = one_shot({hw3_rows[i], known_row});
    std::printf("row %d (w=%2d)       %10.2f %22.2f\n", hw3_rows[i],
                macro.secret_weights()[static_cast<std::size_t>(hw3_rows[i])],
                alone[i], paired[i]);
  }

  bool alone_identical = true;
  for (int i = 1; i < 4; ++i) alone_identical &= (alone[i] == alone[0]);
  bool paired_distinct = true;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) paired_distinct &= (paired[i] != paired[j]);
  }
  std::printf("\nalone: %s (HW identical -> no leakage beyond the class)\n",
              alone_identical ? "all identical" : "DISTINCT (unexpected)");
  std::printf("with known w=1: %s (sum HW differs -> values recoverable)\n",
              paired_distinct ? "all distinct" : "COLLIDING (unexpected)");

  // Full end-to-end check: the two-phase attack recovers all 8 weights.
  AttackConfig attack;
  auto result = run_attack(macro, attack);
  evaluate_against_ground_truth(result, macro.secret_weights());
  std::printf("\nfull two-phase attack on this macro: %d/%zu weights "
              "recovered (%.0f%%), %d measurements\n",
              result.correct, result.recovered.size(),
              100.0 * result.accuracy, result.measurements);
  return (alone_identical && paired_distinct && result.accuracy == 1.0) ? 0
                                                                        : 1;
}
