// Ablation for Section III-A's baseline comparison: "HADES produces adders
// which outperform those generated with AGEMA, which applies
// straight-forward post-processing to synthesized netlists."
//
// The AGEMA-style flow is reproduced literally: take a synthesized plain
// ripple-carry adder netlist and mask it gate-by-gate (every AND becomes a
// DOM gadget; no microarchitectural choice is revisited). HADES instead
// explores the adder design space at the target masking order and picks per
// goal. Gate counts from the masked netlist are converted to GE with
// standard cell weights (AND 1.5 GE, XOR 2.5 GE, NOT 0.75 GE, 4 GE per
// pipeline register bit folded into the gadget count).
#include <cstdio>

#include "convolve/hades/library.hpp"
#include "convolve/hades/search.hpp"
#include "convolve/masking/circuit.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve::hades;
using convolve::masking::Circuit;
using convolve::masking::MaskedCircuit;
using convolve::masking::mask_circuit;
using convolve::masking::ripple_adder_circuit;

namespace {

double netlist_area_ge(const Circuit& c) {
  return 1.5 * c.and_count() + 2.5 * c.xor_count() + 0.75 * c.not_count();
}

}  // namespace

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  std::printf("=== Ablation: HADES DSE vs AGEMA-style netlist masking ===\n");
  std::printf("32-bit adder, area objective.\n\n");
  std::printf("%-3s %-22s %-22s %-8s\n", "d", "AGEMA-style [GE]",
              "HADES best [GE]", "ratio");

  const Circuit plain = ripple_adder_circuit(32);
  const auto adder = library::adder_core();

  for (unsigned d : {1u, 2u, 3u}) {
    const MaskedCircuit agema = mask_circuit(plain, d);
    // Post-processed netlists register every gadget stage: account the
    // fresh-randomness wiring and gadget registers at 4 GE per random bit.
    const double agema_area =
        netlist_area_ge(agema.circuit) + 4.0 * agema.circuit.num_randoms();
    const auto hades = exhaustive_search(*adder, d, Goal::kArea);
    std::printf("%-3u %-22.1f %-22.1f %-8.2f\n", d, agema_area,
                hades.metrics.area_ge, agema_area / hades.metrics.area_ge);
  }

  std::printf("\nHADES also exposes the full goal spectrum the netlist flow "
              "cannot revisit:\n");
  for (Goal g : {Goal::kArea, Goal::kLatency, Goal::kRandomness}) {
    const auto best = exhaustive_search(*adder, 2, g);
    std::printf("  d=2 %-3s -> %s (%.0f GE, %.0f cc, %.0f bits)\n",
                goal_name(g), describe(*adder, best.choice).c_str(),
                best.metrics.area_ge, best.metrics.latency_cc,
                best.metrics.rand_bits);
  }
  return 0;
}
