// Ablation for Section III-A's heuristic claim: "the accuracy of our
// heuristic approach depends on how many starting points we choose. In
// practice, we obtain perfect results for Kyber-CCA for as few as 50 random
// performance base-lines" -- and "the heuristic strategy finds an optimized
// Kyber in less than 200 s" against 36 h exhaustive.
//
// Sweeps the number of local-search restarts on the 1,148,364-point
// Kyber-CCA space and reports the cost ratio to the exhaustive optimum and
// the evaluation budget spent.
#include <chrono>
#include <cstdio>

#include "convolve/hades/library.hpp"
#include "convolve/hades/search.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve::hades;

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  const auto cca = library::kyber_cca();
  const Goal goal = Goal::kAreaLatencyProduct;
  const unsigned d = 1;

  std::printf("=== Ablation: local search vs exhaustive on Kyber-CCA ===\n");
  const auto t0 = std::chrono::steady_clock::now();
  const auto exact = exhaustive_search(*cca, d, goal);
  const auto t1 = std::chrono::steady_clock::now();
  const double exhaustive_s = std::chrono::duration<double>(t1 - t0).count();
  std::printf("exhaustive: cost %.4g over %llu evaluations (%.3f s)\n\n",
              exact.cost, static_cast<unsigned long long>(exact.evaluations),
              exhaustive_s);

  std::printf("%-8s %-14s %-12s %-12s %-10s\n", "starts", "cost", "ratio",
              "evals", "time [s]");
  bool fifty_is_perfect = false;
  for (int starts : {1, 2, 5, 10, 20, 50, 100}) {
    convolve::Xoshiro256 rng(777);
    const auto s0 = std::chrono::steady_clock::now();
    const auto heur = local_search(*cca, d, goal, starts, rng);
    const auto s1 = std::chrono::steady_clock::now();
    const double ratio = heur.cost / exact.cost;
    std::printf("%-8d %-14.4g %-12.4f %-12llu %-10.3f\n", starts, heur.cost,
                ratio, static_cast<unsigned long long>(heur.evaluations),
                std::chrono::duration<double>(s1 - s0).count());
    if (starts == 50 && ratio <= 1.0 + 1e-9) fifty_is_perfect = true;
  }
  std::printf("\npaper claim: perfect results for Kyber-CCA with as few as "
              "50 baselines -> %s here\n",
              fifty_is_perfect ? "reproduced" : "NOT reproduced");
  return 0;
}
