// Reproduces Table II: "Performance metrics for different AES-256 designs
// by optimization goals (latency, area, randomness, product) and masking
// order d."
//
// For each masking order d in {0, 1, 2} the full 1440-point AES-256 design
// space is searched exhaustively per goal. The paper's reported cells are
// printed next to ours; see EXPERIMENTS.md for the deviation ledger.
#include <cstdio>

#include "convolve/hades/library.hpp"
#include "convolve/hades/search.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve::hades;

namespace {

struct PaperRow {
  unsigned d;
  const char* goal;
  double area_kge;
  double rand_bits;
  double latency;
};

constexpr PaperRow kPaper[] = {
    {0, "L", 41.4, 0, 19},       {0, "A", 12.9, 0, 1378},
    {1, "L", 1205.3, 16200, 71}, {1, "A", 29.9, 144, 2948},
    {1, "R", 32.2, 68, 4514},    {1, "ALP", 142.8, 1224, 75},
    {2, "L", 2321.1, 48588, 71}, {2, "A", 49.1, 408, 2946},
    {2, "R", 58.2, 204, 4514},   {2, "ALP", 252.7, 3660, 75},
};

Goal goal_from_name(const char* name) {
  const std::string n = name;
  if (n == "L") return Goal::kLatency;
  if (n == "A") return Goal::kArea;
  if (n == "R") return Goal::kRandomness;
  if (n == "ALP") return Goal::kAreaLatencyProduct;
  return Goal::kAreaLatencyRandProduct;
}

}  // namespace

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  const auto aes = library::aes256();
  std::printf("=== Table II: AES-256 design points by goal and order ===\n");
  std::printf("%2s %-5s | %10s %12s %10s | %10s %12s %10s\n", "d", "Opt.",
              "Area[kGE]", "Rand[bits]", "Lat[cc]", "paper-A", "paper-R",
              "paper-L");
  for (const auto& row : kPaper) {
    const auto result = exhaustive_search(*aes, row.d, goal_from_name(row.goal));
    std::printf("%2u %-5s | %10.1f %12.0f %10.0f | %10.1f %12.0f %10.0f\n",
                row.d, row.goal, result.metrics.area_ge / 1000.0,
                result.metrics.rand_bits, result.metrics.latency_cc,
                row.area_kge, row.rand_bits, row.latency);
  }
  // The paper reports R and ALRP as the same design at d >= 1.
  std::printf("\nALRP co-optimality check (paper lists R/ALRP together):\n");
  for (unsigned d : {1u, 2u}) {
    const auto r = exhaustive_search(*aes, d, Goal::kRandomness);
    const auto alrp = exhaustive_search(*aes, d, Goal::kAreaLatencyRandProduct);
    std::printf("  d=%u: R design %.1f kGE/%0.f bits, ALRP design %.1f "
                "kGE/%0.f bits -> %s\n",
                d, r.metrics.area_ge / 1000.0, r.metrics.rand_bits,
                alrp.metrics.area_ge / 1000.0, alrp.metrics.rand_bits,
                (r.metrics == alrp.metrics) ? "same design" : "different");
  }
  std::printf("\nWinning microarchitectures:\n");
  for (unsigned d : {0u, 1u, 2u}) {
    for (Goal g : {Goal::kLatency, Goal::kArea}) {
      const auto result = exhaustive_search(*aes, d, g);
      std::printf("  d=%u %-3s: %s\n", d, goal_name(g),
                  describe(*aes, result.choice).c_str());
    }
  }
  return 0;
}
