// Keccak case study: the paper realizes Keccak in hardware "as it is an
// important subroutine of BIKE, CRYSTALs-Dilithium and can be used by the
// TEE for signing as well" (the detailed study is in the original HADES
// paper). This bench explores the 14-configuration Keccak template per
// goal and masking order, and cross-checks the cost model's randomness
// against the *executable* masked Keccak implementation in
// convolve::masking.
#include <cstdio>

#include "convolve/common/rng.hpp"
#include "convolve/hades/library.hpp"
#include "convolve/hades/search.hpp"
#include "convolve/masking/masked_keccak.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve;
using namespace convolve::hades;

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  const auto keccak = library::keccak();
  std::printf("=== Keccak-f[1600] case study (14 configurations) ===\n");
  std::printf("%2s %-5s %12s %12s %14s\n", "d", "goal", "area [kGE]",
              "lat [cc]", "rand [bits]");
  for (unsigned d : {0u, 1u, 2u}) {
    for (Goal g : {Goal::kArea, Goal::kLatency, Goal::kAreaLatencyProduct}) {
      const auto best = exhaustive_search(*keccak, d, g);
      std::printf("%2u %-5s %12.1f %12.0f %14.0f\n", d, goal_name(g),
                  best.metrics.area_ge / 1000.0, best.metrics.latency_cc,
                  best.metrics.rand_bits);
    }
  }

  // Cross-validation: the cost model's randomness figure vs the real
  // masked implementation's consumption.
  std::printf("\ncost model vs executable masked Keccak (bits per "
              "permutation):\n");
  for (unsigned d : {1u, 2u}) {
    const auto model = exhaustive_search(*keccak, d, Goal::kArea);
    masking::RandomnessSource rnd(1);
    Xoshiro256 state_rng(2);
    std::array<std::uint64_t, 25> plain{};
    for (auto& lane : plain) lane = state_rng.next_u64();
    auto masked = masking::masked_keccak_encode(plain, d, rnd);
    rnd.reset_counter();
    masking::masked_keccak_f1600(masked, rnd);
    std::printf("  d=%u: model %.0f, implementation %llu -> %s\n", d,
                model.metrics.rand_bits,
                static_cast<unsigned long long>(rnd.bits_drawn()),
                (model.metrics.rand_bits ==
                 static_cast<double>(rnd.bits_drawn()))
                    ? "exact match"
                    : "MISMATCH");
  }
  return 0;
}
