// Throughput of the symbolic probing verifier: wall-clock to a verdict on
// DOM-AND chains (orders 1-3) and the AGEMA-style masked AES S-box (orders
// 1-2), with the per-stage discharge counters that explain where probe
// sets die. The S-box rows are the ISSUE acceptance gate (< 60 s at
// order 2).
#include <chrono>
#include <cstdio>

#include "convolve/analysis/aes_sbox.hpp"
#include "convolve/analysis/leakage_verify.hpp"
#include "convolve/masking/circuit.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve;
using namespace convolve::analysis;

namespace {

// x = a&b, y = x&c, z = y&d -- the classic composition stress case: every
// later AND reuses a shared, already-nonlinear operand.
masking::Circuit dom_and_chain() {
  masking::Circuit c;
  const int a = c.add_input();
  const int b = c.add_input();
  const int d = c.add_input();
  const int e = c.add_input();
  const int x = c.add_and(a, b);
  const int y = c.add_and(x, d);
  c.mark_output(c.add_and(y, e));
  return c;
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kSecure:
      return "secure";
    case Verdict::kLeak:
      return "LEAK";
    case Verdict::kPotentialLeak:
      return "potential";
  }
  return "?";
}

void run(const char* label, const masking::Circuit& plain, int plain_inputs,
         unsigned order, unsigned probe_order) {
  const auto masked = masking::mask_circuit(plain, order);
  const auto start = std::chrono::steady_clock::now();
  const auto report = verify_probing_symbolic(masked, plain_inputs,
                                              probe_order);
  const auto stop = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  std::printf(
      "%-14s d=%u p=%u %6zu gates %10.1f ms  %-9s sets=%llu cov=%llu "
      "simp=%llu exact=%llu\n",
      label, order, probe_order, masked.circuit.num_gates(), ms,
      verdict_name(report.verdict),
      static_cast<unsigned long long>(report.probe_sets_checked),
      static_cast<unsigned long long>(report.coverage_rejected),
      static_cast<unsigned long long>(report.simplified_away),
      static_cast<unsigned long long>(report.fallback_checked));
}

}  // namespace

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  std::printf("=== Symbolic probing verifier throughput ===\n");
  const auto chain = dom_and_chain();
  for (unsigned d = 1; d <= 3; ++d) run("dom-and-chain", chain, 4, d, d);

  const auto sbox = aes_sbox_circuit();
  run("aes-sbox", sbox, 8, 1, 1);
  run("aes-sbox", sbox, 8, 2, 2);
  return 0;
}
