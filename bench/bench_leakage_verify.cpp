// Throughput of the symbolic probing verifier: wall-clock to a verdict on
// DOM-AND chains (orders 1-3) and the AGEMA-style masked AES S-box (orders
// 1-2), with the per-stage discharge counters that explain where probe
// sets die. The S-box rows are the ISSUE acceptance gate (< 60 s at
// order 2).
//
// --json emits the shared bench_report.hpp schema; --trace-out and
// --metrics-out write chrome://tracing and metric-snapshot files.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "convolve/analysis/aes_sbox.hpp"
#include "convolve/analysis/leakage_verify.hpp"
#include "convolve/masking/circuit.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve;
using namespace convolve::analysis;

namespace {

// x = a&b, y = x&c, z = y&d -- the classic composition stress case: every
// later AND reuses a shared, already-nonlinear operand.
masking::Circuit dom_and_chain() {
  masking::Circuit c;
  const int a = c.add_input();
  const int b = c.add_input();
  const int d = c.add_input();
  const int e = c.add_input();
  const int x = c.add_and(a, b);
  const int y = c.add_and(x, d);
  c.mark_output(c.add_and(y, e));
  return c;
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kSecure:
      return "secure";
    case Verdict::kLeak:
      return "LEAK";
    case Verdict::kPotentialLeak:
      return "potential";
  }
  return "?";
}

void run(convolve::bench::Report& report, bool text, const char* label,
         const masking::Circuit& plain, int plain_inputs, unsigned order,
         unsigned probe_order) {
  const auto masked = masking::mask_circuit(plain, order);
  const auto start = std::chrono::steady_clock::now();
  const auto r = verify_probing_symbolic(masked, plain_inputs, probe_order);
  const auto stop = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  if (text) {
    std::printf(
        "%-14s d=%u p=%u %6zu gates %10.1f ms  %-9s sets=%llu cov=%llu "
        "simp=%llu exact=%llu\n",
        label, order, probe_order, masked.circuit.num_gates(), ms,
        verdict_name(r.verdict),
        static_cast<unsigned long long>(r.probe_sets_checked),
        static_cast<unsigned long long>(r.coverage_rejected),
        static_cast<unsigned long long>(r.simplified_away),
        static_cast<unsigned long long>(r.fallback_checked));
  }
  const double ns_per_set =
      r.probe_sets_checked > 0
          ? ms * 1e6 / static_cast<double>(r.probe_sets_checked)
          : 0;
  auto& e = report.add(std::string(label) + "/d" + std::to_string(order) +
                       "p" + std::to_string(probe_order));
  e.iterations = r.probe_sets_checked;
  e.real_time_ns = ns_per_set;
  e.cpu_time_ns = ns_per_set;
  e.counter("wall_ms", ms);
  e.counter("gates", static_cast<double>(masked.circuit.num_gates()));
  e.counter("probe_sets", static_cast<double>(r.probe_sets_checked));
  e.counter("coverage_rejected", static_cast<double>(r.coverage_rejected));
  e.counter("simplified_away", static_cast<double>(r.simplified_away));
  e.counter("fallback_checked", static_cast<double>(r.fallback_checked));
  e.counter("secure", r.verdict == Verdict::kSecure ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = convolve::par::init_threads_from_cli(argc, argv);
  convolve::bench::ReportOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!convolve::bench::consume_report_flag(arg, opts)) {
      std::fprintf(stderr, "usage: %s %s [--threads=N]\n", argv[0],
                   convolve::bench::report_flags_usage());
      return 2;
    }
  }

  convolve::bench::Report report;
  report.executable = argv[0];
  report.threads = threads;
  const bool text = !opts.json;

  if (text) std::printf("=== Symbolic probing verifier throughput ===\n");
  const auto chain = dom_and_chain();
  for (unsigned d = 1; d <= 3; ++d) {
    run(report, text, "dom-and-chain", chain, 4, d, d);
  }

  const auto sbox = aes_sbox_circuit();
  run(report, text, "aes-sbox", sbox, 8, 1, 1);
  run(report, text, "aes-sbox", sbox, 8, 2, 2);

  if (!convolve::bench::finish_report(report, opts)) {
    std::fprintf(stderr,
                 "bench_leakage_verify: failed to write report file(s)\n");
    return 2;
  }
  return 0;
}
