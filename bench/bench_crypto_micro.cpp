// google-benchmark microbenchmarks of the cryptographic substrate.
//
// These are the primitives the TEE's boot, attestation and sealing paths
// spend their time in; the relative costs (ML-DSA sign >> Ed25519 sign >>
// AES block) are what motivates the paper's hardware acceleration of
// Keccak/AES and its bootrom/stack findings.
#include <benchmark/benchmark.h>

#include "convolve/crypto/aead.hpp"
#include "convolve/crypto/aes.hpp"
#include "convolve/crypto/chacha20.hpp"
#include "convolve/crypto/dilithium.hpp"
#include "convolve/crypto/ed25519.hpp"
#include "convolve/crypto/keccak.hpp"
#include "convolve/crypto/kyber.hpp"
#include "convolve/crypto/sha512.hpp"

namespace {

using namespace convolve;
using namespace convolve::crypto;

void BM_Sha3_256_1KiB(benchmark::State& state) {
  const Bytes data(1024, 0x5a);
  for (auto _ : state) benchmark::DoNotOptimize(sha3_256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha3_256_1KiB);

void BM_Sha512_1KiB(benchmark::State& state) {
  const Bytes data(1024, 0x5a);
  for (auto _ : state) benchmark::DoNotOptimize(sha512(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha512_1KiB);

void BM_Aes256_Block(benchmark::State& state) {
  const Aes aes(Aes::KeySize::k256, Bytes(32, 1));
  std::uint8_t block[16] = {};
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_Aes256_Block);

void BM_ChaCha20_1KiB(benchmark::State& state) {
  const Bytes key(32, 2), nonce(12, 3), data(1024, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chacha20_xor(key, nonce, 0, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_ChaCha20_1KiB);

void BM_Ed25519_Sign(benchmark::State& state) {
  const auto kp = ed25519_keypair(Bytes(32, 4));
  const Bytes msg(64, 7);
  for (auto _ : state) benchmark::DoNotOptimize(ed25519_sign(kp, msg));
}
BENCHMARK(BM_Ed25519_Sign);

void BM_Ed25519_Verify(benchmark::State& state) {
  const auto kp = ed25519_keypair(Bytes(32, 4));
  const Bytes msg(64, 7);
  const auto sig = ed25519_sign(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ed25519_verify({kp.public_key.data(), 32}, msg, {sig.data(), 64}));
  }
}
BENCHMARK(BM_Ed25519_Verify);

void BM_MlDsa44_Sign(benchmark::State& state) {
  const auto kp = dilithium::keygen(Bytes(32, 5));
  const Bytes msg(64, 8);
  for (auto _ : state) benchmark::DoNotOptimize(dilithium::sign(kp.sk, msg));
}
BENCHMARK(BM_MlDsa44_Sign);

void BM_MlDsa44_Verify(benchmark::State& state) {
  const auto kp = dilithium::keygen(Bytes(32, 5));
  const Bytes msg(64, 8);
  const Bytes sig = dilithium::sign(kp.sk, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dilithium::verify(kp.pk, msg, sig));
  }
}
BENCHMARK(BM_MlDsa44_Verify);

void BM_MlKem512_EncapsDecaps(benchmark::State& state) {
  const auto kp = kyber::keygen(Bytes(64, 6));
  for (auto _ : state) {
    const auto enc = kyber::encaps(kp.ek, Bytes(32, 9));
    benchmark::DoNotOptimize(kyber::decaps(kp.dk, enc.ciphertext));
  }
}
BENCHMARK(BM_MlKem512_EncapsDecaps);

void BM_Seal_4KiB(benchmark::State& state) {
  const Bytes key(32, 10), nonce(12, 11), data(4096, 0x33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead_seal(key, nonce, data, {}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Seal_4KiB);

}  // namespace
