// Shared bench reporting: every hand-rolled bench (bench_rv32, bench_sca,
// bench_leakage_verify, bench_table1_dse) routes its --json output through
// this header so all of them emit the same google-benchmark-style schema as
// the real google-benchmark binaries (bench_crypto_micro
// --benchmark_format=json), extended with a top-level "telemetry" object
// holding the metric-registry snapshot. The shape is pinned by
// tools/check_bench_json.
//
// Also owns the common report flags:
//   --json            print the JSON report to stdout
//   --trace-out=FILE  write a chrome://tracing span file
//   --metrics-out=FILE  write the metric snapshot JSON
//   --events-out=FILE write the flight-recorder event log (JSONL)
// In CONVOLVE_TELEMETRY=OFF builds the flags stay accepted and the files
// are still written (as empty stubs), so scripts don't fork on build type.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "convolve/common/telemetry.hpp"

namespace convolve::bench {

struct Entry {
  std::string name;
  std::uint64_t iterations = 1;
  double real_time_ns = 0.0;
  double cpu_time_ns = 0.0;
  int threads = 1;
  // Bench-specific numeric extras (insns_per_second, traps, max_t, ...),
  // emitted as additional fields like google-benchmark UserCounters.
  std::vector<std::pair<std::string, double>> counters;

  Entry& counter(std::string key, double value) {
    counters.emplace_back(std::move(key), value);
    return *this;
  }
};

struct Report {
  std::string executable;
  int threads = 1;
  std::vector<Entry> entries;

  Entry& add(std::string name) {
    entries.push_back(Entry{});
    entries.back().name = std::move(name);
    entries.back().threads = threads;
    return entries.back();
  }

  std::string to_json() const {
    std::string out = "{\n  \"context\": {\n";
    out += "    \"executable\": \"" + executable + "\",\n";
    out += "    \"num_cpus\": " +
           std::to_string(std::thread::hardware_concurrency()) + ",\n";
    out += "    \"threads\": " + std::to_string(threads) + ",\n";
    out += "    \"library_build_type\": \"release\"\n";
    out += "  },\n  \"benchmarks\": [\n";
    char buf[64];
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      if (i) out += ",\n";
      out += "    {\n";
      out += "      \"name\": \"" + e.name + "\",\n";
      out += "      \"run_name\": \"" + e.name + "\",\n";
      out += "      \"run_type\": \"iteration\",\n";
      out += "      \"repetitions\": 1,\n";
      out += "      \"repetition_index\": 0,\n";
      out += "      \"threads\": " + std::to_string(e.threads) + ",\n";
      out += "      \"iterations\": " + std::to_string(e.iterations) + ",\n";
      std::snprintf(buf, sizeof(buf), "%.6f", e.real_time_ns);
      out += std::string("      \"real_time\": ") + buf + ",\n";
      std::snprintf(buf, sizeof(buf), "%.6f", e.cpu_time_ns);
      out += std::string("      \"cpu_time\": ") + buf + ",\n";
      out += "      \"time_unit\": \"ns\"";
      for (const auto& [key, value] : e.counters) {
        std::snprintf(buf, sizeof(buf), "%.6f", value);
        out += ",\n      \"" + key + "\": " + buf;
      }
      out += "\n    }";
    }
    out += "\n  ],\n  \"telemetry\": ";
#if CONVOLVE_TELEMETRY_ENABLED
    out += telemetry::snapshot().to_json();
#else
    out += "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}";
#endif
    out += ",\n  \"events\": ";
#if CONVOLVE_TELEMETRY_ENABLED
    out += telemetry::event_log_stats().to_json();
#else
    out += "{\"recorded\": 0, \"dropped\": 0, \"by_kind\": {}}";
#endif
    out += "\n}\n";
    return out;
  }
};

struct ReportOptions {
  bool json = false;
  std::string trace_out;
  std::string metrics_out;
  std::string events_out;
};

/// Claim `arg` if it is one of the shared report flags. Returns true when
/// consumed (the bench's own flag parsing should skip it).
inline bool consume_report_flag(const std::string& arg, ReportOptions& opts) {
  if (arg == "--json") {
    opts.json = true;
    return true;
  }
  if (arg.rfind("--trace-out=", 0) == 0) {
    opts.trace_out = arg.substr(12);
    return true;
  }
  if (arg.rfind("--metrics-out=", 0) == 0) {
    opts.metrics_out = arg.substr(14);
    return true;
  }
  if (arg.rfind("--events-out=", 0) == 0) {
    opts.events_out = arg.substr(13);
    return true;
  }
  return false;
}

inline const char* report_flags_usage() {
  return "[--json] [--trace-out=FILE] [--metrics-out=FILE] "
         "[--events-out=FILE]";
}

namespace detail {
inline bool write_stub(const std::string& path, const char* body) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << body;
  return f.good();
}
}  // namespace detail

/// Emit the report per `opts`: JSON to stdout when --json, plus the trace
/// and metrics files when requested. Returns false on I/O failure.
inline bool finish_report(const Report& report, const ReportOptions& opts) {
  if (opts.json) std::fputs(report.to_json().c_str(), stdout);
  bool ok = true;
  if (!opts.trace_out.empty()) {
#if CONVOLVE_TELEMETRY_ENABLED
    ok &= telemetry::write_chrome_trace(opts.trace_out);
#else
    ok &= detail::write_stub(opts.trace_out, "{\"traceEvents\": []}\n");
#endif
  }
  if (!opts.metrics_out.empty()) {
#if CONVOLVE_TELEMETRY_ENABLED
    ok &= telemetry::write_metrics_json(opts.metrics_out);
#else
    ok &= detail::write_stub(
        opts.metrics_out,
        "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}\n");
#endif
  }
  if (!opts.events_out.empty()) {
#if CONVOLVE_TELEMETRY_ENABLED
    ok &= telemetry::write_events_jsonl(opts.events_out);
#else
    // Empty stub: JSONL with zero lines (obs_report reports "no events").
    ok &= detail::write_stub(opts.events_out, "");
#endif
  }
  return ok;
}

}  // namespace convolve::bench
