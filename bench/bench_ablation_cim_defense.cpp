// Ablation for Section III-C's contribution statement: "side-channel
// attacks and counter-measures must be meticulously analyzed and integrated
// to enable adoption in industry."
//
// Sweeps the attack across measurement-noise levels (with and without trace
// averaging) and against the two modeled countermeasures (row shuffling and
// random dummy-row activation), reporting weight-recovery accuracy.
#include <cstdio>

#include "convolve/cim/attack.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve::cim;

namespace {

double attack_accuracy(const MacroConfig& config, int traces,
                       std::uint64_t weight_seed) {
  CimMacro macro = random_macro(config, weight_seed);
  AttackConfig attack;
  attack.traces_per_measurement = traces;
  auto result = run_attack(macro, attack);
  evaluate_against_ground_truth(result, macro.secret_weights());
  return result.accuracy;
}

double mean_accuracy(const MacroConfig& config, int traces) {
  double sum = 0.0;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    sum += attack_accuracy(config, traces, seed);
  }
  return sum / 3.0;
}

}  // namespace

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  std::printf("=== Ablation: CIM attack vs noise and countermeasures ===\n");

  std::printf("\n--- noise sweep (64 weights, accuracy averaged over 3 "
              "keys) ---\n");
  std::printf("%-10s %-14s %-14s\n", "sigma", "1 trace", "100 traces");
  for (double sigma : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    MacroConfig config;
    config.noise_sigma = sigma;
    std::printf("%-10.1f %-14.3f %-14.3f\n", sigma, mean_accuracy(config, 1),
                mean_accuracy(config, 100));
  }

  std::printf("\n--- countermeasures (noise-free) ---\n");
  std::printf("%-26s %-10s\n", "configuration", "accuracy");
  {
    MacroConfig base;
    std::printf("%-26s %-10.3f\n", "unprotected", mean_accuracy(base, 1));
  }
  {
    MacroConfig shuffled;
    shuffled.shuffle_rows = true;
    std::printf("%-26s %-10.3f\n", "row shuffling",
                mean_accuracy(shuffled, 4));
  }
  for (int dummies : {8, 32}) {
    MacroConfig dummy;
    dummy.dummy_rows = dummies;
    std::printf("dummy rows x%-13d %-10.3f\n", dummies,
                mean_accuracy(dummy, 1));
  }
  {
    MacroConfig both;
    both.shuffle_rows = true;
    both.dummy_rows = 32;
    std::printf("%-26s %-10.3f\n", "shuffling + dummies",
                mean_accuracy(both, 4));
  }
  std::printf("\nShape: noise-free unprotected recovery is total (paper's "
              "headline);\naveraging defeats moderate noise; shuffling "
              "destroys the position-based\nphase 2; dummies blind the "
              "power model.\n");
  return 0;
}
