// Modularity evaluation -- CONVOLVE objective 3: "a modular, long-term,
// and compositional hardware security framework" where "end-users ...
// shed any unnecessary overhead."
//
// Builds one edge device per use-case profile (Section I of the paper) and
// prints what each pays for the security it actually needs.
#include <cstdio>

#include "convolve/framework/device.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve;
using namespace convolve::framework;

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  std::printf("=== Security profiles per CONVOLVE use-case ===\n\n");
  std::printf("%-28s %4s %5s %5s %5s %5s | %12s %8s %10s %8s\n", "use-case",
              "PQC", "mask", "TEE", "CIM-d", "comp", "AES [kGE]", "xArea",
              "report[B]", "rom[KB]");

  const Bytes entropy(32, 0x61);
  for (const auto& profile :
       {speech_quality_enhancement(), acoustic_scene_analysis(),
        traffic_supervision(), satellite_imagery()}) {
    const EdgeDevice device(profile, entropy);
    const CostReport& cost = device.cost();
    std::printf("%-28s %4s %5u %5s %5s %5s | %12.1f %8.2f %10zu %8.1f\n",
                profile.name.c_str(),
                profile.post_quantum_crypto ? "yes" : "no",
                profile.masking_order, profile.tee_enclaves ? "yes" : "no",
                profile.cim_countermeasures ? "yes" : "no",
                profile.composable_execution ? "yes" : "no",
                cost.aes_area_ge / 1000.0, cost.area_multiplier,
                cost.attestation_report_bytes,
                cost.bootrom_bytes / 1000.0);
  }

  std::printf(
      "\nThe satellite sheds every side-channel defense (no physical access\n"
      "after launch -- the paper's own example) and keeps only the\n"
      "long-term-secure attestation chain; the certified roadside unit pays\n"
      "for order-2 masking. Same framework, per-use-case cost.\n");
  return 0;
}
