// Reproduces Table III: "A comparison of the Keystone defaults with our
// PQ-enabled modifications."
//
// Boots both TEE configurations on the machine model, creates an enclave,
// generates a signed attestation report, and prints the four rows of the
// paper's table: bootrom size, signature algorithms, attestation-report
// size, and SM stack size per core (with the measured signing watermark
// that explains why 8 KB fails and 128 KB suffices).
#include <cstdio>

#include "convolve/tee/rv32.hpp"
#include "convolve/tee/security_monitor.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve;
using namespace convolve::tee;

namespace {

struct ConfigResult {
  std::size_t bootrom_bytes = 0;
  std::size_t report_bytes = 0;
  std::size_t stack_bytes = 0;
  std::size_t stack_watermark = 0;
  bool attest_ok = false;
  bool overflowed_at_8k = false;
};

ConfigResult run_config(bool pq) {
  ConfigResult out;
  const Bootrom rom({pq}, DeviceKeys::from_entropy(Bytes(32, 0x42)));
  out.bootrom_bytes = rom.size_bytes();
  const Bytes sm_image(8192, 0xAB);
  const BootRecord boot = rom.boot(sm_image);

  // First: demonstrate the paper's stack finding with the 8 KB default.
  {
    Machine machine(1 << 20);
    SmConfig config;
    config.stack_bytes = 8 * 1024;
    SecurityMonitor sm(machine, boot, config);
    const int id = sm.create_enclave(Bytes(256, 0x3C), 8192);
    try {
      (void)sm.attest(id, as_bytes("probe"));
    } catch (const StackOverflow&) {
      out.overflowed_at_8k = true;
    }
  }

  // Then the configuration each column actually ships.
  Machine machine(1 << 20);
  SmConfig config;
  config.stack_bytes = pq ? 128 * 1024 : 8 * 1024;
  out.stack_bytes = config.stack_bytes;
  SecurityMonitor sm(machine, boot, config);
  const int id = sm.create_enclave(Bytes(256, 0x3C), 8192);
  const auto report = sm.attest(id, as_bytes("session binding data"));
  out.report_bytes = report.serialize().size();
  out.stack_watermark = sm.stack().high_watermark();
  out.attest_ok = verify_report(report, sm.trust_anchor());
  return out;
}

// Enclave code execution through the SM: a U-mode RV32 workload runs on
// the decode-cache engine inside the enclave's PMP window, exits with
// ecall; a second program that dereferences OS memory must fault instead.
struct EnclaveRunResult {
  std::uint64_t retired = 0;
  bool clean_exit = false;
  bool escape_faulted = false;
};

EnclaveRunResult run_enclave_workload() {
  namespace rv = rv32asm;
  EnclaveRunResult out;
  const Bootrom rom({false}, DeviceKeys::from_entropy(Bytes(32, 0x42)));
  const BootRecord boot = rom.boot(Bytes(8192, 0xAB));
  Machine machine(1 << 20);
  SecurityMonitor sm(machine, boot, SmConfig{});

  // 1000 iterations of a 4-instruction ALU loop, then ecall back to the SM.
  const Bytes compute = rv::assemble({
      rv::addi(1, 0, 1000),
      rv::addi(2, 0, 0),
      // loop:
      rv::add(2, 2, 1),
      rv::xori(2, 2, 0x15),
      rv::addi(1, 1, -1),
      rv::bne(1, 0, -12),
      rv::ecall(),
  });
  const int id = sm.create_enclave(compute, 8192);
  const auto r = sm.run_enclave_program(id, 100000);
  out.retired = r.steps;
  out.clean_exit =
      r.trap.has_value() && r.trap->cause == TrapCause::kEcall;

  // Escape attempt: load from address 0 (the SM region / OS world).
  const Bytes escape = rv::assemble({rv::lw(1, 0, 0), rv::ecall()});
  const int rogue = sm.create_enclave(escape, 8192);
  const auto e = sm.run_enclave_program(rogue, 100);
  out.escape_faulted =
      e.trap.has_value() && e.trap->cause == TrapCause::kLoadAccessFault;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  std::printf("=== Table III: Keystone default vs PQ-enabled ===\n");
  const ConfigResult classical = run_config(false);
  const ConfigResult pq = run_config(true);

  std::printf("%-28s %-22s %-24s\n", "Component", "Keystone default",
              "PQ-enabled Keystone");
  std::printf("%-28s %-22s %-24s\n", "Bootrom size",
              (std::to_string(classical.bootrom_bytes / 1000.0).substr(0, 4) +
               " KB").c_str(),
              (std::to_string(pq.bootrom_bytes / 1000.0).substr(0, 4) +
               " KB").c_str());
  std::printf("%-28s %-22s %-24s\n", "Signature algorithms", "Ed25519",
              "Ed25519 & ML-DSA-44");
  std::printf("%-28s %-22s %-24s\n", "Attestation report size",
              (std::to_string(classical.report_bytes) + " Byte").c_str(),
              (std::to_string(pq.report_bytes) + " Byte").c_str());
  std::printf("%-28s %-22s %-24s\n", "SM stack size per core",
              (std::to_string(classical.stack_bytes / 1024) + " KB").c_str(),
              (std::to_string(pq.stack_bytes / 1024) + " KB").c_str());

  std::printf("\nPaper values: 50.7 KB / 60.2 KB; Ed25519 / Ed25519 & "
              "ML-DSA-44; 1320 / 7472 Byte; 8 KB / 128 KB\n");
  std::printf("\nStack evidence: ML-DSA signing watermark %zu bytes; with "
              "the 8 KB default the PQ attestation %s.\n",
              pq.stack_watermark,
              pq.overflowed_at_8k ? "overflows (trapped by the stack guard)"
                                  : "unexpectedly fits");
  std::printf("Attestation verification: classical %s, PQ hybrid %s.\n",
              classical.attest_ok ? "ok" : "FAILED",
              pq.attest_ok ? "ok" : "FAILED");

  const EnclaveRunResult enclave_run = run_enclave_workload();
  std::printf("\nEnclave execution (U-mode RV32 under the enclave PMP "
              "view): %llu instructions retired, %s; OS-memory escape "
              "attempt %s.\n",
              static_cast<unsigned long long>(enclave_run.retired),
              enclave_run.clean_exit ? "clean ecall exit" : "DID NOT EXIT",
              enclave_run.escape_faulted ? "faulted as required"
                                         : "WAS NOT CAUGHT");
  return (classical.attest_ok && pq.attest_ok && pq.overflowed_at_8k &&
          classical.report_bytes == 1320 && pq.report_bytes == 7472 &&
          enclave_run.clean_exit && enclave_run.escape_faulted)
             ? 0
             : 1;
}
