// Reproduces Fig. 1: "First Phase: Clustering Results."
//
// One-hot activates each of the 64 secret 4-bit weights of the CIM macro,
// captures the averaged power trace, clusters the features with k-means
// (k = 5) and prints the per-cluster membership next to the ground-truth
// Hamming weight -- the paper's figure shows exactly this separation of
// power traces into HW classes 0..4.
#include <cstdio>
#include <map>

#include "convolve/cim/attack.hpp"
#include "convolve/common/bytes.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve::cim;

int main(int argc, char** argv) {
  convolve::par::init_threads_from_cli(argc, argv);
  MacroConfig config;
  config.n_rows = 64;
  config.noise_sigma = 0.0;  // the paper's noise-free gate-level setting
  CimMacro macro = random_macro(config, /*weight_seed=*/2024);

  AttackConfig attack;
  const Phase1Result phase1 = run_phase1(macro, attack);

  std::printf("=== Fig. 1: phase-1 k-means clustering of power traces ===\n");
  std::printf("cluster centroids (power, HD units): ");
  for (double c : phase1.clustering.centroids) std::printf("%7.2f ", c);
  std::printf("\n\n%-7s %-12s %-9s %-14s %-8s\n", "weight", "power", "cluster",
              "true-HW(value)", "match");

  int correct = 0;
  std::map<int, int> cluster_sizes;
  for (int i = 0; i < macro.n_rows(); ++i) {
    const int w = macro.secret_weights()[static_cast<std::size_t>(i)];
    const int true_hw =
        convolve::hamming_weight(static_cast<std::uint64_t>(w));
    const int cluster =
        phase1.clustering.assignment[static_cast<std::size_t>(i)];
    ++cluster_sizes[cluster];
    const bool match = (cluster == true_hw);
    correct += match;
    std::printf("%-7d %-12.2f %-9d HW%d (w=%2d)    %s\n", i,
                phase1.features[static_cast<std::size_t>(i)], cluster,
                true_hw, w, match ? "yes" : "NO");
  }
  std::printf("\ncluster sizes: ");
  for (const auto& [cluster, size] : cluster_sizes) {
    std::printf("HW%d:%d ", cluster, size);
  }
  std::printf("\nclustering agreement with ground-truth HW: %d/%d\n", correct,
              macro.n_rows());
  std::printf("(paper: k-means \"successfully grouped these power traces "
              "into distinct clusters\")\n");
  return correct == macro.n_rows() ? 0 : 1;
}
