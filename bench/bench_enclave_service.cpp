// Enclave-execution service benchmark: CoW fork vs cold enclave creation,
// and request-loop throughput across a thread sweep.
//
// Phase 1 (fork_vs_cold, gated): freeze a measured-boot world holding a
// 256 KB enclave image, then compare
//   cold  - fresh Machine + SecurityMonitor + create_enclave (re-measuring
//           the 256 KB binary with SHA3-512) per request, boot record cached
//   fork  - MachineSnapshot::fork: CoW page tables aliasing the frozen
//           image, SM state adopted without re-measurement
// The exit code gates --min-fork-speedup (default 10x): spawning a machine
// by fork must beat cold creation by an order of magnitude, or the CoW
// path has regressed into a copy.
//
// Phase 2 (requests, thread sweep): one batch of run-requests through
// EnclaveService::run_batch at each thread count in {1,2,4,8}, reporting
// requests/sec and p50/p99 latency from the service's log2 histograms.
// Every sweep point must produce bit-identical response payloads (the
// determinism contract); the --min-scale gate (default 4x at
// --scale-threads=8 over threads=1) auto-skips when the host offers fewer
// than --scale-threads hardware threads, since pool oversubscription on a
// small box measures scheduler noise, not scaling.
//
// Output: text table by default; --json emits the shared bench_report.hpp
// schema (validated by tools/check_bench_json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/tee/service/enclave_service.hpp"

using namespace convolve;
using namespace convolve::tee;
using namespace convolve::tee::service;
namespace rv = rv32asm;

namespace {

constexpr std::uint64_t kMachineBytes = 4 << 20;
constexpr std::uint64_t kImageBytes = 256 * 1024;
constexpr std::uint32_t kInputOffset = 0x600;
constexpr std::uint32_t kResultOffset = 0x700;
constexpr int kInputLen = 256;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Sum kInputLen input bytes at kInputOffset into a word at kResultOffset.
// Offsets stay below 0x800 so the I-type immediates don't sign-extend.
Bytes service_program() {
  Bytes code = rv::assemble({
      rv::auipc(6, 0),
      rv::addi(5, 0, 0),
      rv::addi(7, 0, 0),
      rv::addi(8, 0, kInputLen),
      // loop:
      rv::add(9, 6, 7),
      rv::lbu(10, 9, kInputOffset),
      rv::add(5, 5, 10),
      rv::addi(7, 7, 1),
      rv::bne(7, 8, -16),
      rv::sw(5, 6, kResultOffset),
      rv::ecall(),
  });
  // Pad the binary to a 256 KB image: cold creation must hash (and fork
  // must NOT copy) the full footprint, not an 11-instruction stub.
  code.resize(kImageBytes, 0x00);
  return code;
}

struct BenchWorld {
  Machine machine{kMachineBytes};
  BootRecord boot;
  std::unique_ptr<SecurityMonitor> sm;
  int enclave = -1;
  Bytes binary;

  BenchWorld() : binary(service_program()) {
    const Bootrom rom({false}, DeviceKeys::from_entropy(Bytes(32, 0xB3)));
    boot = rom.boot(Bytes(4096, 0x5C));
    sm = std::make_unique<SecurityMonitor>(machine, boot, SmConfig{});
    enclave = sm->create_enclave(binary, kImageBytes);
  }
};

Request run_request(int enclave) {
  Request r;
  r.kind = RequestKind::kRun;
  r.enclave = enclave;
  r.max_steps = 100000;
  r.input_offset = kInputOffset;
  r.input_len = kInputLen;
  r.result_offset = kResultOffset;
  r.result_len = 4;
  return r;
}

// Phase 1 measurements: mean ns per spawn over `reps` spawns (each rep is
// a full spawn so allocator warm-up amortizes the same way on both paths).
double time_cold_creates(const BenchWorld& world, int reps) {
  const double t0 = now_seconds();
  for (int i = 0; i < reps; ++i) {
    Machine machine(kMachineBytes);
    SecurityMonitor sm(machine, world.boot, SmConfig{});
    const int id = sm.create_enclave(world.binary, kImageBytes);
    if (id < 0) std::abort();
  }
  return (now_seconds() - t0) * 1e9 / reps;
}

double time_forks(const MachineSnapshot& snapshot, int reps) {
  const double t0 = now_seconds();
  for (int i = 0; i < reps; ++i) {
    EnclaveWorld fork = snapshot.fork(static_cast<std::uint32_t>(i + 1));
    if (!fork.machine || !fork.sm) std::abort();
  }
  return (now_seconds() - t0) * 1e9 / reps;
}

struct SweepPoint {
  int threads = 0;
  double seconds = 0;
  double requests_per_sec = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t ok = 0;
  std::vector<std::uint64_t> ok_by_tenant;
  std::vector<std::uint64_t> shed_by_tenant;
  Bytes payload_digest;  // concatenated response data, determinism check
};

SweepPoint run_sweep_point(const BenchWorld& world, int threads,
                           int requests, int tenants) {
  par::ScopedThreadCount guard(threads);
  ServiceConfig config;
  config.max_pending = static_cast<std::size_t>(requests);
  if (tenants > 1) {
    // Partition the wheel round-robin: tenant k owns slots {s : s % N == k}.
    // Every tenant owns a slot within the default max_wait window, so the
    // multi-tenant sweep admits everything (sheds would skew throughput).
    config.tenant_slots.assign(static_cast<std::size_t>(tenants), {});
    for (int s = 0; s < config.tdm_period; ++s) {
      config.tenant_slots[static_cast<std::size_t>(s % tenants)].push_back(s);
    }
  }
  EnclaveService service(MachineSnapshot::freeze(world.machine, *world.sm),
                         config);
  std::vector<Request> batch;
  batch.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    Request r = run_request(world.enclave);
    r.tenant = i % tenants;
    batch.push_back(std::move(r));
  }
  const double t0 = now_seconds();
  const auto responses = service.run_batch(batch);
  const double t1 = now_seconds();

  SweepPoint out;
  out.threads = threads;
  out.seconds = t1 - t0;
  const ServiceStats& stats = service.stats();
  out.requests_per_sec =
      out.seconds > 0 ? static_cast<double>(stats.completed) / out.seconds : 0;
  out.p50_ns = stats.latency_ns.percentile(50);
  out.p99_ns = stats.latency_ns.percentile(99);
  out.ok = stats.ok;
  out.ok_by_tenant.assign(static_cast<std::size_t>(tenants), 0);
  out.shed_by_tenant.assign(static_cast<std::size_t>(tenants), 0);
  for (const Response& r : responses) {
    // seq == batch index (fresh service), so the tenant round-robin maps
    // responses back without carrying tenant ids through Response.
    const auto tenant = static_cast<std::size_t>(r.seq) %
                        static_cast<std::size_t>(tenants);
    if (r.status == Status::kOk) {
      ++out.ok_by_tenant[tenant];
    } else if (r.status == Status::kRejected) {
      ++out.shed_by_tenant[tenant];
    }
    out.payload_digest.insert(out.payload_digest.end(), r.data.begin(),
                              r.data.end());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = convolve::par::init_threads_from_cli(argc, argv);
  (void)threads;
  convolve::bench::ReportOptions opts;
  double min_fork_speedup = 10.0;
  double min_scale = 4.0;
  int scale_threads = 8;
  int requests = 256;
  int spawn_reps = 64;
  int tenants = 4;
  std::vector<int> sweep_threads = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (convolve::bench::consume_report_flag(arg, opts)) {
      continue;
    } else if (arg.rfind("--min-fork-speedup=", 0) == 0) {
      min_fork_speedup = std::stod(arg.substr(19));
    } else if (arg.rfind("--min-scale=", 0) == 0) {
      min_scale = std::stod(arg.substr(12));
    } else if (arg.rfind("--scale-threads=", 0) == 0) {
      scale_threads = std::stoi(arg.substr(16));
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests = std::stoi(arg.substr(11));
    } else if (arg.rfind("--spawn-reps=", 0) == 0) {
      spawn_reps = std::stoi(arg.substr(13));
    } else if (arg.rfind("--tenants=", 0) == 0) {
      tenants = std::stoi(arg.substr(10));
    } else if (arg.rfind("--sweep=", 0) == 0) {
      sweep_threads.clear();
      std::string csv = arg.substr(8);
      for (std::size_t pos = 0; pos < csv.size();) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos) comma = csv.size();
        sweep_threads.push_back(std::stoi(csv.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s %s [--requests=N] [--spawn-reps=N] "
                   "[--tenants=N] [--sweep=T1,T2,...] "
                   "[--min-fork-speedup=X] [--min-scale=X] "
                   "[--scale-threads=N]\n",
                   argv[0], convolve::bench::report_flags_usage());
      return 2;
    }
  }
  if (tenants < 1 || tenants > 8 || sweep_threads.empty()) {
    std::fprintf(stderr,
                 "bench_enclave_service: --tenants must be 1..8 (wheel has "
                 "8 slots) and --sweep must be non-empty\n");
    return 2;
  }

  BenchWorld world;
  const MachineSnapshot snapshot =
      MachineSnapshot::freeze(world.machine, *world.sm);

  convolve::bench::Report report;
  report.executable = argv[0];
  report.threads = par::thread_count();

  // --- Phase 1: fork vs cold create -------------------------------------
  // Warm-up both paths once so first-touch faults don't skew either side.
  (void)time_cold_creates(world, 1);
  (void)time_forks(snapshot, 1);
  const double cold_ns = time_cold_creates(world, spawn_reps);
  const double fork_ns = time_forks(snapshot, spawn_reps);
  const double fork_speedup = fork_ns > 0 ? cold_ns / fork_ns : 0;
  const bool fork_gate_ok = fork_speedup >= min_fork_speedup;

  {
    auto& cold = report.add("enclave_service/spawn/cold_create");
    cold.iterations = static_cast<std::uint64_t>(spawn_reps);
    cold.real_time_ns = cold_ns;
    cold.cpu_time_ns = cold_ns;
    cold.counter("image_bytes", static_cast<double>(kImageBytes));
    auto& fork = report.add("enclave_service/spawn/cow_fork");
    fork.iterations = static_cast<std::uint64_t>(spawn_reps);
    fork.real_time_ns = fork_ns;
    fork.cpu_time_ns = fork_ns;
    fork.counter("image_bytes", static_cast<double>(kImageBytes));
    fork.counter("fork_speedup", fork_speedup);
  }

  if (!opts.json) {
    std::printf("=== Enclave service: CoW fork vs cold create (256 KB) ===\n");
    std::printf("cold create: %12.0f ns\n", cold_ns);
    std::printf("CoW fork:    %12.0f ns\n", fork_ns);
    std::printf("speedup:     %11.1fx (gate %.1fx: %s)\n\n", fork_speedup,
                min_fork_speedup, fork_gate_ok ? "ok" : "FAIL");
  }

  // --- Phase 2: request-loop thread sweep --------------------------------
  if (!opts.json) {
    std::printf("=== Request loop: %d run-requests per sweep point, "
                "%d tenant(s) ===\n",
                requests, tenants);
    std::printf("%8s %12s %12s %12s %10s\n", "threads", "req/s", "p50 us",
                "p99 us", "payloads");
  }
  std::vector<SweepPoint> sweep;
  bool deterministic = true;
  bool swept_1 = false, swept_scale = false;
  double rate_at_1 = 0, rate_at_scale = 0;
  for (int t : sweep_threads) {
    const SweepPoint point = run_sweep_point(world, t, requests, tenants);
    if (!sweep.empty() &&
        point.payload_digest != sweep.front().payload_digest) {
      deterministic = false;
    }
    if (t == 1) {
      rate_at_1 = point.requests_per_sec;
      swept_1 = true;
    }
    if (t == scale_threads) {
      rate_at_scale = point.requests_per_sec;
      swept_scale = true;
    }
    auto& e = report.add("enclave_service/requests/threads:" +
                         std::to_string(t));
    e.threads = t;
    e.iterations = static_cast<std::uint64_t>(requests);
    e.real_time_ns = point.seconds * 1e9 / requests;
    e.cpu_time_ns = point.seconds * 1e9 / requests;
    e.counter("requests_per_second", point.requests_per_sec);
    e.counter("p50_ns", static_cast<double>(point.p50_ns));
    e.counter("p99_ns", static_cast<double>(point.p99_ns));
    e.counter("ok", static_cast<double>(point.ok));
    e.counter("tenants", static_cast<double>(tenants));
    for (int k = 0; k < tenants; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      e.counter("tenant" + std::to_string(k) + "_ok",
                static_cast<double>(point.ok_by_tenant[ks]));
      e.counter("tenant" + std::to_string(k) + "_shed",
                static_cast<double>(point.shed_by_tenant[ks]));
    }
    if (!opts.json) {
      std::printf("%8d %12.0f %12.1f %12.1f %10s\n", t,
                  point.requests_per_sec,
                  static_cast<double>(point.p50_ns) / 1e3,
                  static_cast<double>(point.p99_ns) / 1e3,
                  deterministic ? "match" : "DIFF");
    }
    sweep.push_back(point);
  }

  // Scaling gate, skipped on hosts that cannot express it (or when the
  // sweep doesn't include both endpoints): with fewer hardware threads
  // than the sweep's top point, extra pool workers just time-slice one
  // core and the "scaling" measured is scheduler noise.
  const bool can_scale =
      par::hardware_threads() >= scale_threads && swept_1 && swept_scale;
  bool scale_gate_ok = true;
  if (can_scale) {
    scale_gate_ok = rate_at_1 > 0 && rate_at_scale / rate_at_1 >= min_scale;
  }
  if (!opts.json) {
    if (can_scale) {
      std::printf("\nscaling at %d threads: %.2fx over 1 thread "
                  "(gate %.1fx: %s)\n",
                  scale_threads, rate_at_1 > 0 ? rate_at_scale / rate_at_1 : 0,
                  min_scale, scale_gate_ok ? "ok" : "FAIL");
    } else {
      std::printf("\nscaling gate SKIPPED: host has %d hardware thread(s), "
                  "gate needs %d\n",
                  par::hardware_threads(), scale_threads);
    }
    std::printf("bit-identical payloads across the sweep: %s\n",
                deterministic ? "yes" : "NO");
  }

  if (!convolve::bench::finish_report(report, opts)) {
    std::fprintf(stderr, "bench_enclave_service: failed to write report\n");
    return 2;
  }
  return (fork_gate_ok && scale_gate_ok && deterministic) ? 0 : 1;
}
