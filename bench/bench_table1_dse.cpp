// Reproduces Table I: "Runtime of exhaustive DSE for different numbers of
// explored configurations in different algorithms."
//
// The configuration counts match the paper exactly (the template library's
// slot structure was chosen to do so); wall-clock times are measured on
// this machine with our analytic metric fold per design point, so they are
// orders of magnitude below the paper's synthesis-calibrated evaluation --
// the reproduced shape is the monotone growth of exhaustive-DSE runtime
// with the size of the design space, ending in the same Kyber-CPA <<
// Kyber-CCA blowup.
//
// --json emits the shared bench_report.hpp schema; --trace-out and
// --metrics-out write chrome://tracing and metric-snapshot files.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_report.hpp"
#include "convolve/hades/library.hpp"
#include "convolve/hades/search.hpp"
#include "convolve/common/parallel.hpp"

using namespace convolve::hades;

int main(int argc, char** argv) {
  const int threads = convolve::par::init_threads_from_cli(argc, argv);
  convolve::bench::ReportOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!convolve::bench::consume_report_flag(arg, opts)) {
      std::fprintf(stderr, "usage: %s %s [--threads=N]\n", argv[0],
                   convolve::bench::report_flags_usage());
      return 2;
    }
  }

  convolve::bench::Report report;
  report.executable = argv[0];
  report.threads = threads;
  const bool text = !opts.json;

  if (text) {
    std::printf("=== Table I: runtime of exhaustive DSE ===\n");
    std::printf("%-36s %14s %12s %12s\n", "Algorithm", "#Configurations",
                "Time [s]", "Paper");
  }
  const char* paper_times[] = {"0.5 s", "0.7 s", "1.2 s",  "3.2 s",
                               "5.4 s", "7.9 s", "196.5 s", "36 h"};
  int row = 0;
  for (const auto& entry : library::table1_suite()) {
    const auto component = entry.factory();
    const auto start = std::chrono::steady_clock::now();
    const auto result = exhaustive_search(*component, 1, Goal::kAreaLatencyProduct);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (text) {
      std::printf("%-36s %14llu %12.4f %12s\n", entry.name,
                  static_cast<unsigned long long>(result.evaluations), seconds,
                  paper_times[row]);
    }
    const double ns_per_config =
        result.evaluations > 0
            ? seconds * 1e9 / static_cast<double>(result.evaluations)
            : 0;
    auto& e = report.add(std::string("dse/") + entry.name);
    e.iterations = result.evaluations;
    e.real_time_ns = ns_per_config;
    e.cpu_time_ns = ns_per_config;
    e.counter("configurations", static_cast<double>(result.evaluations));
    e.counter("wall_seconds", seconds);
    ++row;
    if (result.evaluations != entry.expected_configs) {
      std::fprintf(stderr,
                   "%s: configuration count mismatch (got %llu expected "
                   "%llu)\n",
                   entry.name,
                   static_cast<unsigned long long>(result.evaluations),
                   static_cast<unsigned long long>(entry.expected_configs));
      return 1;
    }
  }
  if (text) {
    std::printf(
        "\nCounts are exact per the paper; times use our analytic cost fold\n"
        "per design point instead of the authors' synthesis-backed "
        "evaluation.\n");
  }
  if (!convolve::bench::finish_report(report, opts)) {
    std::fprintf(stderr, "bench_table1_dse: failed to write report file(s)\n");
    return 2;
  }
  return 0;
}
