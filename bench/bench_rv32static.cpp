// Throughput of the RV32 enclave-image static analyzer (DESIGN.md 5g):
// wall-clock from image bytes to a finding report on three synthetic
// workload shapes, with the CFG/fixpoint counters that explain the cost.
//
//   straightline  pure ALU, no control flow -- decoder + transfer-function
//                 floor (one visit per instruction, trivial fixpoint).
//   loopy         bounded counting loops + forward skips -- join/widening
//                 stress; fixpoint iterations dominate.
//   secret-table  secret-seeded table lookups -- taint propagation plus
//                 finding extraction on every block.
//
// --json emits the shared bench_report.hpp schema; --trace-out and
// --metrics-out write chrome://tracing and metric-snapshot files.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "convolve/analysis/rv32static/analyze.hpp"
#include "convolve/common/rng.hpp"
#include "convolve/tee/rv32.hpp"

using namespace convolve;
using namespace convolve::analysis::rv32static;
namespace rv = convolve::tee::rv32asm;

namespace {

constexpr std::uint32_t kSecretBase = 0x8000;
constexpr std::uint32_t kSecretSize = 0x40;

ImageSpec make_image(const std::vector<std::uint32_t>& words) {
  ImageSpec image;
  image.code = rv::assemble(words);
  image.memory_size = 1 << 16;
  image.secret.push_back({kSecretBase, kSecretBase + kSecretSize});
  return image;
}

// jal x0, 0 parks the program in a self-loop so the tail of each workload
// neither falls off the image nor adds control-flow findings.
ImageSpec straightline(std::size_t insns, Xoshiro256& rng) {
  std::vector<std::uint32_t> w;
  while (w.size() + 1 < insns) {
    const int rd = 5 + static_cast<int>(rng.next_u64() % 10);
    const int rs = 5 + static_cast<int>(rng.next_u64() % 10);
    switch (rng.next_u64() % 4) {
      case 0:
        w.push_back(rv::addi(rd, rs, static_cast<int>(rng.next_u64() % 256)));
        break;
      case 1:
        w.push_back(rv::xori(rd, rs, static_cast<int>(rng.next_u64() % 256)));
        break;
      case 2:
        w.push_back(rv::add(rd, rs, 5 + static_cast<int>(rng.next_u64() % 10)));
        break;
      default:
        w.push_back(
            rv::lui(rd, static_cast<std::uint32_t>(rng.next_u64() % 16)));
        break;
    }
  }
  w.push_back(rv::jal(0, 0));
  return make_image(w);
}

ImageSpec loopy(std::size_t insns, Xoshiro256& rng) {
  std::vector<std::uint32_t> w;
  while (w.size() + 8 < insns) {
    const int rd = 5 + static_cast<int>(rng.next_u64() % 8);
    w.push_back(rv::addi(rd, rd, static_cast<int>(rng.next_u64() % 64)));
    w.push_back(rv::bne(rd, 13, 12));  // forward skip over the xori
    w.push_back(rv::xori(rd, rd, 0x55));
    // Bounded counting loop: x14 = 0; do { ++x14; } while (x14 <u x15).
    w.push_back(rv::addi(14, 0, 0));
    w.push_back(rv::addi(15, 0, 8 + static_cast<int>(rng.next_u64() % 56)));
    w.push_back(rv::addi(14, 14, 1));
    w.push_back(rv::bltu(14, 15, -4));
  }
  w.push_back(rv::jal(0, 0));
  return make_image(w);
}

ImageSpec secret_table(std::size_t insns, Xoshiro256& rng) {
  std::vector<std::uint32_t> w;
  w.push_back(rv::lui(6, kSecretBase >> 12));  // x6 = secret base
  while (w.size() + 4 < insns) {
    w.push_back(
        rv::lbu(7, 6, static_cast<int>(rng.next_u64() % kSecretSize)));
    w.push_back(rv::addi(8, 0, 0x400 + static_cast<int>(rng.next_u64() % 64)));
    w.push_back(rv::add(9, 8, 7));
    w.push_back(rv::lbu(10, 9, 0));  // secret-indexed load
  }
  w.push_back(rv::jal(0, 0));
  return make_image(w);
}

void run(convolve::bench::Report& report, bool text, const char* label,
         const ImageSpec& image) {
  const auto start = std::chrono::steady_clock::now();
  const AnalysisResult r = analyze(image);
  const auto stop = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  const std::size_t insns = image.insn_count();
  if (text) {
    std::printf(
        "%-13s %6zu insns %8.2f ms  blocks=%zu edges=%zu iters=%llu "
        "findings=%zu%s\n",
        label, insns, ms, r.cfg.blocks.size(), r.cfg.edges.size(),
        static_cast<unsigned long long>(r.absint.iterations),
        r.report.findings.size(), r.absint.converged ? "" : "  DIVERGED");
  }
  auto& e = report.add(std::string("rv32static/") + label);
  e.iterations = insns;
  e.real_time_ns = insns > 0 ? ms * 1e6 / static_cast<double>(insns) : 0;
  e.cpu_time_ns = e.real_time_ns;
  e.counter("wall_ms", ms);
  e.counter("insns", static_cast<double>(insns));
  e.counter("blocks", static_cast<double>(r.cfg.blocks.size()));
  e.counter("edges", static_cast<double>(r.cfg.edges.size()));
  e.counter("fixpoint_iterations", static_cast<double>(r.absint.iterations));
  e.counter("findings", static_cast<double>(r.report.findings.size()));
  e.counter("converged", r.absint.converged ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  convolve::bench::ReportOptions opts;
  std::size_t insns = 4096;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--insns=", 0) == 0) {
      insns = static_cast<std::size_t>(std::stoul(arg.substr(8)));
    } else if (!convolve::bench::consume_report_flag(arg, opts)) {
      std::fprintf(stderr, "usage: %s [--insns=N] %s\n", argv[0],
                   convolve::bench::report_flags_usage());
      return 2;
    }
  }

  convolve::bench::Report report;
  report.executable = argv[0];
  const bool text = !opts.json;
  if (text) std::printf("=== RV32 static analyzer throughput ===\n");

  Xoshiro256 rng(0x5747a71cull);
  run(report, text, "straightline", straightline(insns, rng));
  run(report, text, "loopy", loopy(insns, rng));
  run(report, text, "secret-table", secret_table(insns, rng));

  if (!convolve::bench::finish_report(report, opts)) {
    std::fprintf(stderr, "bench_rv32static: failed to write report file(s)\n");
    return 2;
  }
  return 0;
}
