// RV32 execution-engine microbenchmark: legacy interpreter (fetch/decode
// every step, exception-based memory path) vs the decode-cache engine vs
// the threaded bytecode+fusion engine.
//
// Three workloads, each run for the same instruction budget on both engines:
//   alu    - Keccak-style rotate/xor/add mix, no memory traffic
//   memcpy - word-copy loop, load/store dominated
//   ecalls - ecall storm, one trap + resume per loop iteration
//
// The harness checks all three engines end in bit-identical architectural
// state (registers, pc, retired count) before reporting throughput, and the
// exit code gates the ISSUE acceptance criteria: on alu and memcpy the
// decode-cache engine must reach --min-speedup (default 3x) over the
// interpreter, and the bytecode engine must reach --min-bytecode-speedup
// (default 2x) over the decode-cache engine. The ecall storm is reported
// but not gated: its cost is the trap boundary itself, which all engines
// share.
//
// A fourth scenario, rv32_parallel, runs 64 unevenly-sized hart slices
// through the work-stealing pool (one Machine+Rv32Cpu per slice): with
// --threads >= 2 the uneven loads force steals, so a single --json run
// exercises every counter the acceptance gate asks for (decode-cache, PMP
// memo, pool.steals) and puts per-worker spans in the --trace-out file.
//
// Output: a text table by default; --json emits the shared
// bench_report.hpp schema (same shape as bench_crypto_micro
// --benchmark_format=json plus a "telemetry" snapshot), and
// --trace-out/--metrics-out write chrome://tracing and metric files.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.hpp"
#include "convolve/common/parallel.hpp"
#include "convolve/tee/rv32.hpp"

using namespace convolve;
using namespace convolve::tee;
namespace rv = rv32asm;

namespace {

constexpr std::uint64_t kMemBytes = 1 << 20;
constexpr std::uint32_t kCodeBase = 0x1000;
constexpr std::uint32_t kSrcBase = 0x8000;
constexpr std::uint32_t kDstBase = 0xC000;
constexpr int kCopyWords = 256;

struct Workload {
  const char* name;
  std::vector<std::uint32_t> program;
  bool gated;  // participates in the --min-speedup exit-code gate
};

// Keccak-style ALU mix: two 32-bit lanes, rotate-left via slli/srli/or,
// xor and add cross-mixing, looped forever.
Workload alu_workload() {
  std::vector<std::uint32_t> p = {
      rv::lui(1, 0x12345), rv::addi(1, 1, 0x678),
      rv::lui(2, 0x9abcd), rv::addi(2, 2, 0x1ef),
      // loop:
      rv::slli(4, 1, 7),  rv::srli(5, 1, 25), rv::or_(1, 4, 5),
      rv::xor_(1, 1, 2),
      rv::add(2, 2, 1),
      rv::slli(4, 2, 13), rv::srli(5, 2, 19), rv::or_(2, 4, 5),
      rv::xori(2, 2, 0x2a),
      rv::add(1, 1, 2),
  };
  const std::int32_t body = 10;  // instructions since "loop:"
  p.push_back(rv::jal(0, -4 * body));
  return {"rv32_alu", std::move(p), true};
}

// Word-granular memcpy of kCopyWords words, restarted forever.
Workload memcpy_workload() {
  std::vector<std::uint32_t> p = {
      rv::lui(1, kSrcBase >> 12), rv::lui(2, kDstBase >> 12),
      // outer:
      rv::addi(4, 0, kCopyWords),
      rv::addi(5, 1, 0),
      rv::addi(6, 2, 0),
      // inner:
      rv::lw(7, 5, 0),
      rv::sw(7, 6, 0),
      rv::addi(5, 5, 4),
      rv::addi(6, 6, 4),
      rv::addi(4, 4, -1),
      rv::bne(4, 0, -20),
      rv::jal(0, -4 * 9),  // back to outer
  };
  return {"rv32_memcpy", std::move(p), true};
}

// Trap boundary stress: every other instruction is an ecall.
Workload ecall_workload() {
  return {"rv32_ecalls", {rv::ecall(), rv::jal(0, -4)}, false};
}

struct EngineRun {
  double seconds = 0;
  std::uint64_t steps = 0;
  std::uint64_t retired = 0;
  std::uint64_t traps = 0;
  std::uint32_t pc = 0;
  std::uint32_t regs[32] = {};
  bool clean = true;  // no unexpected trap cause

  double insns_per_sec() const {
    return seconds > 0 ? static_cast<double>(steps) / seconds : 0;
  }
};

EngineRun run_engine_once(const Workload& w, Rv32Engine engine,
                          std::uint64_t budget);

// Best-of-`reps` timing: each rep rebuilds the machine and runs the full
// budget, so the architectural result is identical across reps and the
// fastest wall-clock is the least noise-polluted measurement (the CI
// hosts are shared single-core boxes where a single rep can be slowed
// 2x by a neighbour).
EngineRun run_engine(const Workload& w, Rv32Engine engine,
                     std::uint64_t budget, int reps = 3) {
  EngineRun best;
  for (int rep = 0; rep < reps; ++rep) {
    EngineRun out = run_engine_once(w, engine, budget);
    if (rep == 0 || out.seconds < best.seconds) best = out;
  }
  return best;
}

EngineRun run_engine_once(const Workload& w, Rv32Engine engine,
                          std::uint64_t budget) {
  Machine machine(kMemBytes);
  machine.store(kCodeBase, rv::assemble(w.program), PrivMode::kMachine);
  Bytes src(4 * kCopyWords);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  machine.store(kSrcBase, src, PrivMode::kMachine);
  Rv32Cpu cpu(machine, kCodeBase, PrivMode::kMachine);
  cpu.set_engine(engine);

  EngineRun out;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t left = budget;
  while (left > 0) {
    const auto r = cpu.run(left);
    left -= r.steps;
    if (r.trap.has_value()) {
      ++out.traps;
      if (r.trap->cause != TrapCause::kEcall &&
          r.trap->cause != TrapCause::kEbreak) {
        out.clean = false;  // workloads must only trap via ecall/ebreak
        break;
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.steps = budget - left;
  out.retired = cpu.instructions_retired();
  out.pc = cpu.pc();
  for (int i = 0; i < 32; ++i) out.regs[i] = cpu.reg(i);
  return out;
}

bool same_state(const EngineRun& a, const EngineRun& b) {
  return a.clean && b.clean && a.steps == b.steps && a.retired == b.retired &&
         a.pc == b.pc && a.traps == b.traps &&
         std::memcmp(a.regs, b.regs, sizeof(a.regs)) == 0;
}

void add_engine_entry(convolve::bench::Report& report, const char* name,
                      const char* engine, const EngineRun& r) {
  const double ns_per_insn =
      r.steps > 0 ? r.seconds * 1e9 / static_cast<double>(r.steps) : 0;
  auto& e = report.add(std::string(name) + "/" + engine);
  e.iterations = r.steps;
  e.real_time_ns = ns_per_insn;
  e.cpu_time_ns = ns_per_insn;
  e.counter("insns_per_second", r.insns_per_sec());
  e.counter("traps", static_cast<double>(r.traps));
}

// Scenario 4: 64 hart slices with quadratically uneven instruction budgets
// sharded through the pool (grain 1 => one chunk per slice). The uneven
// loads leave early-finishing participants idle, so they steal -- which is
// exactly what pool.steals and the per-worker spans in --trace-out need a
// run to contain. Aggregate fast-engine throughput is reported; the
// workload is not speedup-gated (slices are tiny by design).
struct ParallelRun {
  double seconds = 0;
  std::uint64_t steps = 0;
  bool clean = true;
};

ParallelRun run_parallel_slices(std::uint64_t budget) {
  constexpr std::uint64_t kSlices = 64;
  const Workload w = alu_workload();
  std::vector<std::uint64_t> slice_steps(kSlices, 0);
  std::vector<std::uint8_t> slice_clean(kSlices, 1);
  // Quadratic ramp: slice i gets ~3x the average at the top end, so chunk
  // runtimes differ enough to trigger stealing at any --threads >= 2.
  const std::uint64_t unit =
      budget / (kSlices * (kSlices + 1) * (2 * kSlices + 1) / 6 / kSlices + 1);
  const auto t0 = std::chrono::steady_clock::now();
  par::parallel_for(
      kSlices,
      [&](std::uint64_t i) {
        Machine machine(kMemBytes);
        machine.store(kCodeBase, rv32asm::assemble(w.program),
                      PrivMode::kMachine);
        Rv32Cpu cpu(machine, kCodeBase, PrivMode::kMachine);
        std::uint64_t left = unit * (i + 1) * (i + 1) / kSlices + 1024;
        while (left > 0) {
          const auto r = cpu.run(left);
          left -= r.steps;
          slice_steps[i] += r.steps;
          if (r.trap.has_value()) {
            slice_clean[i] = 0;  // the ALU loop never traps
            break;
          }
        }
      },
      /*grain=*/1);
  const auto t1 = std::chrono::steady_clock::now();
  ParallelRun out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (std::uint64_t i = 0; i < kSlices; ++i) {
    out.steps += slice_steps[i];
    out.clean &= slice_clean[i] != 0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // rv32_parallel only exercises work stealing with >= 2 workers, so when
  // the user didn't size the pool explicitly, don't let a single-core host
  // collapse the default to 1 (results are thread-count-invariant anyway).
  bool threads_explicit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads", 9) == 0) threads_explicit = true;
  }
  int threads = convolve::par::init_threads_from_cli(argc, argv);
  if (!threads_explicit && threads < 4) {
    convolve::par::set_thread_count(4);
    threads = 4;
  }
  convolve::bench::ReportOptions opts;
  double min_speedup = 3.0;           // decode-cache over interpreter
  double min_bytecode_speedup = 2.0;  // bytecode+fusion over decode-cache
  std::uint64_t steps = 4'000'000;
  std::string only;  // substring filter over scenario names; empty = all
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (convolve::bench::consume_report_flag(arg, opts)) {
      continue;
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::stod(arg.substr(14));
    } else if (arg.rfind("--min-bytecode-speedup=", 0) == 0) {
      min_bytecode_speedup = std::stod(arg.substr(23));
    } else if (arg.rfind("--steps=", 0) == 0) {
      steps = std::stoull(arg.substr(8));
    } else if (arg.rfind("--only=", 0) == 0) {
      only = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s %s [--steps=N] [--min-speedup=X] "
                   "[--min-bytecode-speedup=X] [--only=SUB]\n",
                   argv[0], convolve::bench::report_flags_usage());
      return 2;
    }
  }
  const auto selected = [&](const char* name) {
    return only.empty() || std::string(name).find(only) != std::string::npos;
  };

  const Workload workloads[] = {alu_workload(), memcpy_workload(),
                                ecall_workload()};
  bool all_match = true;
  bool gate_ok = true;

  convolve::bench::Report report;
  report.executable = argv[0];
  report.threads = threads;

  if (!opts.json) {
    std::printf(
        "=== RV32 engine: interpreter vs decode-cache vs bytecode ===\n");
    std::printf("%llu instructions per workload per engine\n\n",
                static_cast<unsigned long long>(steps));
    std::printf("%-14s %12s %12s %12s %8s %8s %6s\n", "workload",
                "legacy MIPS", "dcache MIPS", "bytecd MIPS", "dc x", "bc x",
                "state");
  }

  for (const Workload& w : workloads) {
    if (!selected(w.name)) continue;
    // Warm-up pass so first-touch page faults and cache fills don't skew
    // the shorter comparison runs.
    (void)run_engine(w, Rv32Engine::kBytecode, steps / 16 + 1, 1);
    const EngineRun legacy = run_engine(w, Rv32Engine::kInterpreted, steps);
    const EngineRun fast = run_engine(w, Rv32Engine::kDecodeCache, steps);
    const EngineRun bc = run_engine(w, Rv32Engine::kBytecode, steps);
    const bool match = same_state(legacy, fast) && same_state(fast, bc);
    all_match &= match;
    const double speedup =
        legacy.seconds > 0 ? fast.insns_per_sec() / legacy.insns_per_sec()
                           : 0;
    const double bc_speedup =
        fast.seconds > 0 ? bc.insns_per_sec() / fast.insns_per_sec() : 0;
    if (w.gated && speedup < min_speedup) gate_ok = false;
    if (w.gated && bc_speedup < min_bytecode_speedup) gate_ok = false;
    if (opts.json) {
      add_engine_entry(report, w.name, "legacy", legacy);
      add_engine_entry(report, w.name, "fast", fast);
      add_engine_entry(report, w.name, "bytecode", bc);
    } else {
      std::printf("%-14s %12.2f %12.2f %12.2f %7.2fx %7.2fx %6s\n", w.name,
                  legacy.insns_per_sec() / 1e6, fast.insns_per_sec() / 1e6,
                  bc.insns_per_sec() / 1e6, speedup, bc_speedup,
                  match ? "match" : "DIFF");
    }
  }

  // Pool-sharded slices: not engine-compared or gated, but this is the run
  // that makes pool.steals and the per-worker trace spans nonzero.
  if (selected("rv32_parallel")) {
    const ParallelRun par_run = run_parallel_slices(steps);
    all_match &= par_run.clean;
    const double ns_per_insn =
        par_run.steps > 0
            ? par_run.seconds * 1e9 / static_cast<double>(par_run.steps)
            : 0;
    auto& e = report.add("rv32_parallel/bytecode");
    e.iterations = par_run.steps;
    e.real_time_ns = ns_per_insn;
    e.cpu_time_ns = ns_per_insn;
    e.counter("insns_per_second",
              par_run.seconds > 0
                  ? static_cast<double>(par_run.steps) / par_run.seconds
                  : 0);
    if (!opts.json) {
      std::printf("%-14s %12s %12s %12.2f %8s %8s %6s\n", "rv32_parallel",
                  "-", "-",
                  static_cast<double>(par_run.steps) / par_run.seconds / 1e6,
                  "-", "-", par_run.clean ? "match" : "DIFF");
    }
  }

  if (!convolve::bench::finish_report(report, opts)) {
    std::fprintf(stderr, "bench_rv32: failed to write report file(s)\n");
    return 2;
  }
  if (!opts.json) {
    std::printf("\narchitectural state identical across engines: %s\n",
                all_match ? "yes" : "NO");
    std::printf(
        "gated workloads reached %.2fx (dcache) and %.2fx (bytecode): %s\n",
        min_speedup, min_bytecode_speedup, gate_ok ? "yes" : "NO");
  }
  return (all_match && gate_ok) ? 0 : 1;
}
